"""Tests for incremental HEP maintenance (insertions and deletions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HepPartitioner
from repro.core.incremental import IncrementalHep
from repro.errors import CapacityError, ConfigurationError
from repro.graph import Graph
from repro.graph.generators import chung_lu, erdos_renyi
from repro.metrics import assert_valid, replication_factor


@pytest.fixture(scope="module")
def base_graph():
    return chung_lu(400, mean_degree=10, exponent=2.2, seed=71, name="base")


@pytest.fixture()
def inc(base_graph):
    return IncrementalHep(base_graph, k=8, tau=2.0)


class TestConstruction:
    def test_initial_state_consistent(self, base_graph, inc):
        assert inc.num_edges == base_graph.num_edges
        assert inc.loads.sum() == base_graph.num_edges
        assert np.array_equal(inc.degrees, base_graph.degrees)
        # RF from incidence equals RF from the materialized assignment.
        assert inc.replication_factor() == pytest.approx(
            replication_factor(inc.current_assignment())
        )

    def test_matches_batch_hep_initially(self, base_graph, inc):
        batch = HepPartitioner(tau=2.0).partition(base_graph, 8)
        assert replication_factor(batch) == pytest.approx(
            inc.replication_factor()
        )

    def test_rejects_bad_slack(self, base_graph):
        with pytest.raises(ConfigurationError):
            IncrementalHep(base_graph, 4, slack=0.9)


class TestInsert:
    def test_insert_updates_state(self, inc):
        before = inc.num_edges
        p = inc.insert_edge(0, 1) if not _has_edge(inc, 0, 1) else None
        if p is None:
            return  # edge existed; covered by duplicate test
        assert 0 <= p < 8
        assert inc.num_edges == before + 1
        assert inc.incidence[p, 0] >= 1 and inc.incidence[p, 1] >= 1

    def test_insert_duplicate_rejected(self, base_graph, inc):
        u, v = base_graph.edges[0]
        with pytest.raises(ConfigurationError):
            inc.insert_edge(int(u), int(v))

    def test_insert_self_loop_rejected(self, inc):
        with pytest.raises(ConfigurationError):
            inc.insert_edge(3, 3)

    def test_insert_out_of_universe(self, inc):
        with pytest.raises(ConfigurationError):
            inc.insert_edge(0, 10**6)

    def test_inserts_always_find_room(self):
        """The moving capacity bound guarantees an open partition by
        pigeonhole (k * ceil((m+1)/k) >= m+1), so a long insertion burst
        never raises CapacityError and balance stays within the slack."""
        tiny = Graph.from_edges([(0, 1), (1, 2)], num_vertices=12)
        small = IncrementalHep(tiny, k=2, tau=10.0, slack=1.0)
        pairs = [(a, b) for a in range(12) for b in range(a + 1, 12)]
        inserted = 2
        for a, b in pairs:
            if (min(a, b), max(a, b)) in small._edge_index:
                continue
            small.insert_edge(a, b)
            inserted += 1
        assert small.num_edges == inserted
        assert_valid(small.current_assignment(), alpha=1.1)

    def test_quality_stays_close_after_small_update(self, base_graph):
        """The incremental promise: after a 5% insertion burst the RF is
        within a modest factor of re-partitioning from scratch."""
        inc = IncrementalHep(base_graph, k=8, tau=2.0)
        rng = np.random.default_rng(5)
        added = 0
        existing = {(min(u, v), max(u, v)) for u, v in base_graph.edges.tolist()}
        target = base_graph.num_edges // 20
        while added < target:
            u, v = rng.integers(0, base_graph.num_vertices, size=2)
            key = (min(u, v), max(u, v))
            if u == v or key in existing:
                continue
            inc.insert_edge(int(u), int(v))
            existing.add(key)
            added += 1
        updated = inc.current_assignment()
        assert_valid(updated, alpha=1.2)
        scratch = HepPartitioner(tau=2.0).partition(updated.graph, 8)
        assert inc.replication_factor() <= replication_factor(scratch) * 1.25


class TestDelete:
    def test_delete_updates_state(self, base_graph, inc):
        u, v = (int(x) for x in base_graph.edges[0])
        before_rf = inc.replication_factor()
        inc.delete_edge(u, v)
        assert inc.num_edges == base_graph.num_edges - 1
        assert inc.replication_factor() <= before_rf + 1e-9

    def test_delete_retires_replicas(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        inc = IncrementalHep(g, k=2, tau=10.0)
        p = inc._parts[0]
        inc.delete_edge(0, 1)
        assert inc.incidence[p, 0] == 0  # vertex 0 had only that edge

    def test_delete_missing_rejected(self, inc):
        with pytest.raises(ConfigurationError):
            inc.delete_edge(0, 399)
        u, v = (int(x) for x in inc.current_assignment().graph.edges[0])
        inc.delete_edge(u, v)
        with pytest.raises(ConfigurationError):
            inc.delete_edge(u, v)

    def test_reinsert_after_delete(self, base_graph, inc):
        u, v = (int(x) for x in base_graph.edges[0])
        inc.delete_edge(u, v)
        p = inc.insert_edge(u, v)
        assert 0 <= p < 8
        assert inc.num_edges == base_graph.num_edges


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 5),
    ops=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40),
)
def test_incremental_consistency_property(seed, ops):
    """Property: after any insert/delete sequence, the materialized
    assignment is valid and the live counters match it exactly."""
    g = erdos_renyi(20, 40, seed=seed)
    if g.num_edges < 4:
        return
    inc = IncrementalHep(g, k=4, tau=2.0, slack=1.5)
    existing = {(min(u, v), max(u, v)) for u, v in g.edges.tolist()}
    for u, v in ops:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        try:
            if key in existing:
                inc.delete_edge(u, v)
                existing.discard(key)
            else:
                inc.insert_edge(u, v)
                existing.add(key)
        except CapacityError:
            pass
    assignment = inc.current_assignment()
    assert assignment.graph.num_edges == inc.num_edges
    assert (assignment.parts >= 0).all()
    assert np.array_equal(assignment.partition_sizes(), inc.loads)
    assert inc.replication_factor() == pytest.approx(
        replication_factor(assignment)
    )


def _has_edge(inc: IncrementalHep, u: int, v: int) -> bool:
    return (min(u, v), max(u, v)) in inc._edge_index

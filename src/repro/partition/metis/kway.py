"""Multilevel recursive-bisection driver and the vertex->edge conversion.

This is the METIS-family baseline of the paper's evaluation.  METIS is a
*vertex* partitioner, so Appendix A describes the comparison recipe we
follow exactly:

1. weight each vertex with its degree,
2. compute a k-way vertex partition (here: multilevel recursive
   bisection — coarsen by heavy-edge matching, grow an initial
   bisection, FM-refine while uncoarsening),
3. assign each edge ``(u, v)`` randomly to the partition of ``u`` or of
   ``v``.

Like METIS itself, the result optimizes communication volume rather than
the hard edge-balance constraint; the achieved ``alpha`` is whatever the
vertex balance implies (the paper annotates those alphas in Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner
from repro.partition.metis.coarsen import coarsen
from repro.partition.metis.initial import grow_bisection
from repro.partition.metis.level import LevelGraph
from repro.partition.metis.refine import fm_refine

__all__ = ["MetisPartitioner", "partition_vertices_kway"]

#: stop coarsening below this many vertices (coarsest graph size)
_COARSEN_STOP = 48
#: give up coarsening when a step shrinks the graph by less than this
_MIN_SHRINK = 0.95


def _multilevel_bisect(
    level: LevelGraph, target_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """V-cycle bisection of one level graph into sides {0, 1}."""
    if level.num_vertices <= _COARSEN_STOP:
        side = grow_bisection(level, target_fraction, rng)
        return fm_refine(level, side, target_fraction)
    coarse, cmap = coarsen(level, rng)
    if coarse.num_vertices > level.num_vertices * _MIN_SHRINK:
        side = grow_bisection(level, target_fraction, rng)
    else:
        coarse_side = _multilevel_bisect(coarse, target_fraction, rng)
        side = coarse_side[cmap]
    return fm_refine(level, side, target_fraction)


def _induced_subgraph(
    level: LevelGraph, members: np.ndarray
) -> tuple[LevelGraph, np.ndarray]:
    """Sub-level over ``members``; returns the subgraph and the id map."""
    remap = np.full(level.num_vertices, -1, dtype=np.int64)
    remap[members] = np.arange(members.size)
    adj: list[dict[int, float]] = [dict() for _ in range(members.size)]
    for new_u, u in enumerate(members.tolist()):
        row = adj[new_u]
        for v, w in level.adj[u].items():
            nv = remap[v]
            if nv >= 0:
                row[int(nv)] = w
    return (
        LevelGraph(members.size, level.vertex_weights[members].copy(), adj),
        members,
    )


def partition_vertices_kway(
    graph: Graph, k: int, seed: int = 0
) -> np.ndarray:
    """Multilevel recursive-bisection k-way vertex partition.

    Returns one partition id per vertex.  Handles any ``k >= 1`` by
    splitting weights proportionally (``k = 5`` -> 2/5 vs 3/5, etc.).
    """
    rng = np.random.default_rng(seed)
    level = LevelGraph.from_graph(graph)
    part = np.zeros(graph.num_vertices, dtype=np.int32)

    def recurse(sub: LevelGraph, ids: np.ndarray, k_local: int, base: int) -> None:
        """Bisect one vertex block and recurse on both halves."""
        if k_local <= 1 or sub.num_vertices == 0:
            part[ids] = base
            return
        k_left = k_local // 2
        target = k_left / k_local
        side = _multilevel_bisect(sub, target, rng)
        left_ids = ids[side == 0]
        right_ids = ids[side == 1]
        left_sub, _ = _induced_subgraph(sub, np.flatnonzero(side == 0))
        right_sub, _ = _induced_subgraph(sub, np.flatnonzero(side == 1))
        recurse(left_sub, left_ids, k_left, base)
        recurse(right_sub, right_ids, k_local - k_left, base + k_left)

    recurse(level, np.arange(graph.num_vertices), k, 0)
    return part


class MetisPartitioner(Partitioner):
    """Multilevel vertex partitioner + random edge-side conversion."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = "METIS"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """k-way vertex partition, then edges follow a random endpoint."""
        self._require_k(graph, k)
        vparts = partition_vertices_kway(graph, k, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        u, v = graph.edges[:, 0], graph.edges[:, 1]
        pick_u = rng.random(graph.num_edges) < 0.5
        parts = np.where(pick_u, vparts[u], vparts[v]).astype(np.int32)
        return PartitionAssignment(graph, k, parts)

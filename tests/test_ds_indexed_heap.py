"""Unit and property tests for repro._ds.indexed_heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._ds import IndexedMinHeap


class TestHeapBasics:
    def test_empty(self):
        h = IndexedMinHeap()
        assert len(h) == 0
        assert not h
        with pytest.raises(IndexError):
            h.pop_min()
        with pytest.raises(IndexError):
            h.peek_min()

    def test_push_pop_single(self):
        h = IndexedMinHeap()
        h.push(42, priority=7)
        assert 42 in h
        assert h.priority(42) == 7
        assert h.pop_min() == (42, 7)
        assert 42 not in h

    def test_pop_order(self):
        h = IndexedMinHeap()
        for item, prio in [(1, 5), (2, 1), (3, 3), (4, 2), (5, 4)]:
            h.push(item, prio)
        popped = [h.pop_min() for _ in range(5)]
        assert [p for _, p in popped] == [1, 2, 3, 4, 5]

    def test_push_duplicate_raises(self):
        h = IndexedMinHeap()
        h.push(1, priority=1)
        with pytest.raises(ValueError):
            h.push(1, priority=2)

    def test_update_decrease(self):
        h = IndexedMinHeap()
        h.push(1, priority=10)
        h.push(2, priority=5)
        h.update(1, priority=0)
        assert h.pop_min() == (1, 0)

    def test_update_increase(self):
        h = IndexedMinHeap()
        h.push(1, priority=1)
        h.push(2, priority=5)
        h.update(1, priority=9)
        assert h.pop_min() == (2, 5)

    def test_update_same_priority_noop(self):
        h = IndexedMinHeap()
        h.push(1, priority=3)
        h.update(1, priority=3)
        assert h.priority(1) == 3

    def test_update_absent_raises(self):
        h = IndexedMinHeap()
        with pytest.raises(KeyError):
            h.update(1, priority=1)

    def test_decrement_default(self):
        h = IndexedMinHeap()
        h.push(9, priority=4)
        h.decrement(9)
        assert h.priority(9) == 3
        h.decrement(9, by=2)
        assert h.priority(9) == 1

    def test_push_or_update(self):
        h = IndexedMinHeap()
        h.push_or_update(1, priority=5)
        h.push_or_update(1, priority=2)
        assert h.priority(1) == 2

    def test_remove_middle(self):
        h = IndexedMinHeap()
        for item, prio in [(1, 1), (2, 2), (3, 3), (4, 4)]:
            h.push(item, prio)
        h.remove(2)
        assert 2 not in h
        popped = [h.pop_min()[0] for _ in range(3)]
        assert popped == [1, 3, 4]

    def test_remove_last(self):
        h = IndexedMinHeap()
        h.push(1, priority=1)
        h.remove(1)
        assert len(h) == 0

    def test_remove_absent_raises(self):
        h = IndexedMinHeap()
        with pytest.raises(KeyError):
            h.remove(1)

    def test_discard_absent_noop(self):
        h = IndexedMinHeap()
        h.discard(1)
        assert len(h) == 0

    def test_clear(self):
        h = IndexedMinHeap()
        h.push(1, priority=1)
        h.clear()
        assert not h
        h.push(1, priority=1)  # reusable after clear
        assert h.pop_min() == (1, 1)

    def test_ties_all_returned(self):
        h = IndexedMinHeap()
        for item in range(10):
            h.push(item, priority=0)
        popped = sorted(h.pop_min()[0] for _ in range(10))
        assert popped == list(range(10))


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "update", "pop", "remove"]),
            st.integers(0, 20),
            st.integers(-50, 50),
        ),
        max_size=300,
    )
)
def test_heap_matches_reference_model(ops):
    """Property: heap agrees with a dict-based reference under random ops."""
    heap = IndexedMinHeap()
    model: dict[int, int] = {}
    for op, item, prio in ops:
        if op == "push":
            if item in model:
                with pytest.raises(ValueError):
                    heap.push(item, prio)
            else:
                heap.push(item, prio)
                model[item] = prio
        elif op == "update":
            if item in model:
                heap.update(item, prio)
                model[item] = prio
            else:
                with pytest.raises(KeyError):
                    heap.update(item, prio)
        elif op == "pop":
            if model:
                popped_item, popped_prio = heap.pop_min()
                assert popped_prio == min(model.values())
                assert model[popped_item] == popped_prio
                del model[popped_item]
            else:
                with pytest.raises(IndexError):
                    heap.pop_min()
        else:  # remove
            if item in model:
                heap.remove(item)
                del model[item]
            else:
                with pytest.raises(KeyError):
                    heap.remove(item)
        heap._check_invariants()
        assert len(heap) == len(model)
    # Drain: residual contents must match the model exactly.
    drained = {}
    while heap:
        item, prio = heap.pop_min()
        drained[item] = prio
    assert drained == model

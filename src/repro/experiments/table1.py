"""Table 1: time complexity of the partitioner families, verified
empirically.

The paper's Table 1 is analytic; this reproduction measures how run-time
scales with ``|E|`` (at fixed k) and with ``k`` (at fixed |E|) for one
representative of each family, confirming:

* stateless streaming (DBH): ~linear in |E|, flat in k,
* stateful streaming (HDRF): ~linear in |E| and in k,
* neighborhood expansion (NE++/HEP): near-linear in |E|, mildly
  k-dependent (heap log factor plus per-partition clean-up).
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentResult, make_partitioner
from repro.experiments.paper_reference import SHAPES
from repro.graph.generators import chung_lu

__all__ = ["run"]

_COMPLEXITY = {
    "HEP-10": "O(|E|(log|V|+k) + |V|)",
    "HDRF": "Theta(|E| * k)",
    "DBH": "Theta(|E|)",
    "NE++": "O(|E|(log|V|+k) + |V|)",
}


def _timed(name: str, graph, k: int, repeats: int = 3) -> float:
    """Best-of-N wall time (sub-millisecond runs are noise-dominated)."""
    partitioner = make_partitioner(name)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        partitioner.partition(graph, k)
        best = min(best, time.perf_counter() - start)
    return best


def run(
    partitioners: tuple[str, ...] = ("DBH", "HDRF", "NE++", "HEP-10"),
    sizes: tuple[int, ...] = (10_000, 20_000, 40_000),
    ks: tuple[int, ...] = (4, 16, 64),
) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    graphs = {
        m: chung_lu(max(m // 10, 64), mean_degree=20, exponent=2.2, seed=5)
        for m in sizes
    }
    for name in partitioners:
        # Scaling in |E| at fixed k.
        times_m = {m: _timed(name, g, 32) for m, g in graphs.items()}
        # Scaling in k at fixed |E| (largest graph).
        big = graphs[sizes[-1]]
        times_k = {k: _timed(name, big, k) for k in ks}
        edge_ratio = times_m[sizes[-1]] / max(times_m[sizes[0]], 1e-9)
        k_ratio = times_k[ks[-1]] / max(times_k[ks[0]], 1e-9)
        rows.append(
            {
                "partitioner": name,
                "complexity": _COMPLEXITY[name],
                **{f"t_m{m//1000}k": round(t, 3) for m, t in times_m.items()},
                "t(mx4)/t(mx1)": round(edge_ratio, 2),
                **{f"t_k{k}": round(t, 3) for k, t in times_k.items()},
                f"t(k{ks[-1]})/t(k{ks[0]})": round(k_ratio, 2),
            }
        )
    result = ExperimentResult(
        experiment_id="table1",
        title="Empirical scaling vs Table 1 complexities",
        rows=rows,
        paper_shape=SHAPES["table1"],
    )
    by_name = {str(r["partitioner"]): r for r in rows}
    big_k = f"t_k{ks[-1]}"
    result.notes.append(
        "stateful streaming pays per-partition scoring (Theta(|E|k)):"
        f" HDRF at k={ks[-1]} is "
        f"{float(by_name['HDRF'][big_k]) / max(float(by_name['DBH'][big_k]), 1e-9):.0f}x"
        " DBH — vectorized scoring flattens the k term at small k, the"
        " |E|*k score evaluations are structural"
    )
    grow_cols = [f"t_m{m//1000}k" for m in sizes]
    linear_ok = all(
        float(r[grow_cols[-1]]) <= float(r[grow_cols[0]]) * (sizes[-1] / sizes[0]) * 2.0
        for r in rows
    )
    result.notes.append(f"every family scales near-linearly in |E|: {linear_ok}")
    return result

"""Out-of-core HEP: chunked reading → NE++ with spill → buffered streaming.

This driver is the subsystem's reason to exist: it partitions a graph
that is *never fully resident in memory*.  The stages, all bounded by
the chunk size:

1. **Counting pass** — one chunked sweep accumulates exact degrees, the
   vertex-universe size and the edge count (HEP needs true degrees for
   the threshold and for informed streaming).
2. **Budgeting** — given ``memory_budget`` bytes, the Section 4.2 memory
   formula is evaluated per candidate ``tau`` from chunk-counted column
   entries (:func:`~repro.core.memory_model.hep_memory_bytes_from_entries`)
   and the largest fitting ``tau`` wins, mirroring
   :func:`~repro.core.tau.select_tau` without a Graph.
3. **Splitting pass** — each chunk is split against the high-degree
   mask: h2h edges are appended to a disk-backed
   :class:`~repro.stream.spill.SpillFile`, the rest accumulate into the
   pruned CSR's edge arrays.
4. **Phase one** — NE++ runs on the chunk-built CSR
   (:func:`~repro.core.ne_plus_plus.run_ne_plus_plus_on_csr`).
5. **Phase two** — the spill file is streamed back in chunks through
   informed HDRF, optionally behind a buffered scoring window
   (:mod:`repro.stream.buffered`).
6. **Metrics pass** — replication factor and balance are computed by
   chunked sweeps over the source.  The per-partition vertex covers are
   genuinely bit-packed (``k×n`` bits via
   :class:`~repro.stream.scan.PackedCover`); when even that exceeds the
   byte budget the sweep falls back to column blocks, and with
   ``metrics_workers > 1`` both this pass and the counting pass run on
   worker processes (:mod:`repro.stream.parallel_scan`) bit-identically.

With ``order="natural"`` and no buffering the result is bit-identical
to :class:`~repro.core.hep.HepPartitioner` on the same input — the
property the test suite pins for every chunk size ≥ 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.hep import HepPhaseBreakdown, phase_two_capacity
from repro.core.memory_model import hep_memory_bytes_from_entries
from repro.core.ne_plus_plus import run_ne_plus_plus_on_csr
from repro.core.tau import DEFAULT_TAU_GRID, select_from_footprints
from repro.errors import ConfigurationError, PartitioningError
from repro.graph.csr import CsrGraph
from repro.obs.tracer import get_tracer
from repro.partition.base import PartitionAssignment
from repro.partition.state import StreamingState
from repro.stream.buffered import stream_chunks_through_hdrf
from repro.stream.reader import (
    DEFAULT_CHUNK_SIZE,
    EdgeChunkSource,
    PrefetchingEdgeSource,
    open_edge_source,
)
from repro.stream.scan import SourceStats, scan_source
from repro.stream.spill import SpillFile

__all__ = ["OutOfCoreHep", "OutOfCoreResult", "SourceStats", "scan_source"]


@dataclass
class OutOfCoreResult:
    """Everything an out-of-core run can report without a Graph in RAM."""

    parts: np.ndarray          # (m,) int32 per-edge partition ids
    k: int
    tau: float
    num_vertices: int
    num_edges: int
    chunk_size: int
    buffer_size: int | None
    breakdown: HepPhaseBreakdown
    spill_bytes: int
    loads: np.ndarray          # (k,) final per-partition edge counts
    replication_factor: float
    edge_balance: float
    projected_memory_bytes: int | None
    runtime_s: float

    @property
    def num_unassigned(self) -> int:
        """Number of edges left without a partition (should be zero)."""
        return int((self.parts < 0).sum())

    def to_assignment(self, graph) -> PartitionAssignment:
        """Attach the parts to an in-memory Graph (tests/analysis only)."""
        return PartitionAssignment(graph, self.k, self.parts)


class OutOfCoreHep:
    """HEP under an explicit memory budget, fed by a chunked edge source.

    Parameters
    ----------
    tau:
        Degree threshold factor.  ``None`` (the default) means 10.0
        unless ``memory_budget`` is given, in which case the budget
        selects the largest fitting ``tau`` from the Section 4.4 grid.
    memory_budget:
        Byte budget for HEP's in-memory structures, evaluated with the
        Section 4.2 formula (:mod:`repro.core.memory_model`).
    chunk_size:
        Edges per I/O chunk for every pass and the spill read-back.
    buffer_size:
        Buffered-scoring window for phase two; ``None`` keeps the exact
        per-edge stream order (bit-identical to in-memory HEP).
    spill_dir:
        Directory for the h2h spill file (system temp dir by default).
    spill_compression:
        ``None`` for the raw spill format, ``"zlib"`` for compressed
        frames (see :mod:`repro.stream.spill`) — smaller disk footprint
        for CPU spent inflating on read-back.
    prefetch:
        When > 0, wrap the source in a
        :class:`~repro.stream.reader.PrefetchingEdgeSource` holding at
        most this many decoded chunks ahead of each pass's consumer.
    mmap:
        Serve chunks from a zero-copy
        :class:`~repro.stream.shard.MmapEdgeSource` when the source is
        a flat binary edge file (bit-identical results, fewer copies).
    order, seed:
        Chunk order for sources that support reordering.
    metrics_workers:
        When > 1 and the source is a shard manifest or flat binary edge
        file, the counting and metrics passes run on this many worker
        processes (:mod:`repro.stream.parallel_scan`), bit-identically
        to the sequential sweeps.  ``memory_budget`` additionally
        bounds the metrics cover itself (column-blocked sweeps when the
        ``k x n``-bit cover would not fit).
    """

    def __init__(
        self,
        tau: float | None = None,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        buffer_size: int | None = None,
        spill_dir: str | None = None,
        spill_compression: str | None = None,
        memory_budget: int | None = None,
        tau_grid: tuple[float, ...] = DEFAULT_TAU_GRID,
        id_bytes: int = 4,
        order: str = "natural",
        seed: int = 0,
        prefetch: int = 0,
        mmap: bool = False,
        metrics_workers: int = 0,
    ) -> None:
        if tau is not None and tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if memory_budget is not None and memory_budget < 1:
            raise ConfigurationError(
                f"memory_budget must be positive, got {memory_budget}"
            )
        if metrics_workers < 0:
            raise ConfigurationError(
                f"metrics_workers must be >= 0, got {metrics_workers}"
            )
        self.tau = tau
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.chunk_size = int(chunk_size)
        self.buffer_size = buffer_size
        self.spill_dir = spill_dir
        self.spill_compression = spill_compression
        self.prefetch = int(prefetch)
        self.mmap = bool(mmap)
        self.metrics_workers = int(metrics_workers)
        self.memory_budget = memory_budget
        self.tau_grid = tau_grid
        self.id_bytes = id_bytes
        self.order = order
        self.seed = seed
        self.last_result: OutOfCoreResult | None = None
        self._warm_pool = None
        self.name = "HEP-ooc"

    # -- driver ------------------------------------------------------------

    def _start_warm_pool(self, source):
        """Hook: start a warm worker pool for the run, or return ``None``.

        The base pipeline runs its sweeps sequentially or on cold pools,
        so it returns ``None``.  :class:`~repro.stream.workers.
        MultiWorkerHep` overrides this to return a started
        :class:`~repro.stream.workers.PersistentWorkerPool` that the
        counting pass, the phase-two stream, and the metrics pass all
        reuse; :meth:`partition` stashes it as ``_warm_pool`` and shuts
        it down when the run ends.
        """
        return None

    def partition(self, source, k: int) -> OutOfCoreResult:
        """Run the full pipeline; ``source`` is anything
        :func:`~repro.stream.reader.open_edge_source` accepts."""
        if k < 2:
            raise ConfigurationError(f"out-of-core HEP requires k >= 2, got {k}")
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "partition", algo=self.name, k=k, source=str(source),
        ):
            src = open_edge_source(
                source, self.chunk_size, order=self.order, seed=self.seed,
                mmap=self.mmap,
            )
            if self.prefetch > 0:
                src = PrefetchingEdgeSource(src, depth=self.prefetch)
            # MultiWorkerHep carries a start-method choice for its BSP pool;
            # the scan pools must honor the same one (fork-unsafe hosts).
            mp_context = getattr(self, "mp_context", None)
            warm = self._start_warm_pool(source)
            self._warm_pool = warm
            try:
                return self._partition_with_pool(
                    source, src, k, warm, mp_context, tracer, start,
                )
            finally:
                self._warm_pool = None
                if warm is not None:
                    warm.shutdown()

    def _partition_with_pool(
        self, source, src, k: int, warm, mp_context, tracer, start: float
    ) -> OutOfCoreResult:
        """Pipeline body once the source and (optional) warm pool exist."""
        # Deferred: parallel_scan -> workers -> this module (MultiWorkerHep
        # subclasses OutOfCoreHep), so a top-level import would cycle.
        from repro.stream.parallel_scan import scan_quality, scan_stats

        stats = scan_stats(
            source, src, self.metrics_workers, self.chunk_size,
            mp_context=mp_context, pool=warm,
        )
        if stats.num_edges == 0:
            raise PartitioningError(
                "out-of-core HEP: edge stream is empty"
            )

        projected: int | None = None
        if self.tau is not None:
            tau = self.tau
        elif self.memory_budget is not None:
            with tracer.span("select_tau", budget=self.memory_budget):
                tau, projected = self._select_tau(src, stats, k)
        else:
            tau = 10.0

        threshold = tau * stats.mean_degree
        high = stats.degrees > threshold

        with SpillFile(
            dir=self.spill_dir, compression=self.spill_compression
        ) as spill:
            with tracer.span("split_pass", tau=tau) as span:
                csr = self._split_and_build(src, stats, high, spill)
                span.add("edges_scanned", stats.num_edges)
                span.add("spill_bytes", spill.nbytes)
            with tracer.span("phase_one", k=k):
                phase_one = run_ne_plus_plus_on_csr(csr, k, tau=tau)
            parts = phase_one.parts
            loads = phase_one.loads.copy()
            if len(spill):
                with tracer.span(
                    "stream_pass", phase="spill"
                ) as span:
                    loads = self._stream_spill(
                        spill, stats, k, phase_one, parts
                    )
                    span.add("edges_scanned", len(spill))
                    span.add("spill_bytes", spill.nbytes)
            spill_bytes = spill.nbytes
            num_h2h = len(spill)

        breakdown = HepPhaseBreakdown(
            num_edges=stats.num_edges,
            num_h2h_edges=num_h2h,
            num_inmemory_edges=stats.num_edges - num_h2h,
            cleanup_removed_fraction=(
                phase_one.stats.cleanup_removed_fraction
            ),
            spilled_edges=phase_one.stats.spilled_edges,
        )
        rf, balance = scan_quality(
            source, src, stats, k, parts, self.metrics_workers,
            self.chunk_size, memory_budget=self.memory_budget,
            mp_context=mp_context, pool=warm,
        )
        source_stats = src.stats()
        if tracer.enabled and source_stats:
            tracer.event(
                "source_read", counters=source_stats,
                source=src.describe(),
            )
        result = OutOfCoreResult(
            parts=parts,
            k=k,
            tau=tau,
            num_vertices=stats.num_vertices,
            num_edges=stats.num_edges,
            chunk_size=self.chunk_size,
            buffer_size=self.buffer_size,
            breakdown=breakdown,
            spill_bytes=spill_bytes,
            loads=loads,
            replication_factor=rf,
            edge_balance=balance,
            projected_memory_bytes=projected,
            runtime_s=time.perf_counter() - start,
        )
        self.last_result = result
        return result

    # -- stages ------------------------------------------------------------

    def _select_tau(
        self, src: EdgeChunkSource, stats: SourceStats, k: int
    ) -> tuple[float, int]:
        """Largest grid ``tau`` whose projected footprint fits the budget.

        The per-tau column-entry counts (2 per low/low edge, 1 per mixed
        edge) are accumulated chunk by chunk — the streaming equivalent
        of :func:`~repro.core.memory_model.pruned_column_entries`.
        """
        taus = np.asarray(sorted(self.tau_grid), dtype=np.float64)
        thresholds = taus * stats.mean_degree
        # (t, n) high-degree masks: one row per candidate tau.
        high = stats.degrees[None, :] > thresholds[:, None]
        entries = np.zeros(taus.size, dtype=np.int64)
        for chunk in src:
            hu = high[:, chunk.pairs[:, 0]]
            hv = high[:, chunk.pairs[:, 1]]
            low_low = (~hu & ~hv).sum(axis=1)
            mixed = (hu ^ hv).sum(axis=1)
            entries += 2 * low_low + mixed
        footprints = [
            hep_memory_bytes_from_entries(
                count, stats.num_vertices, k, self.id_bytes
            )
            for count in entries.tolist()
        ]
        return select_from_footprints(
            taus.tolist(), footprints, self.memory_budget
        )

    def _split_and_build(
        self,
        src: EdgeChunkSource,
        stats: SourceStats,
        high: np.ndarray,
        spill: SpillFile,
    ) -> CsrGraph:
        """Splitting pass: h2h chunks to disk, kept chunks into the CSR."""
        kept_pairs: list[np.ndarray] = []
        kept_eids: list[np.ndarray] = []
        for chunk in src:
            hu = high[chunk.pairs[:, 0]]
            hv = high[chunk.pairs[:, 1]]
            h2h = hu & hv
            spill.append(chunk.pairs[h2h], chunk.eids[h2h])
            keep = ~h2h
            if keep.any():
                kept_pairs.append(chunk.pairs[keep])
                kept_eids.append(chunk.eids[keep])
        if kept_pairs:
            pairs = np.vstack(kept_pairs)
            eids = np.concatenate(kept_eids)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
            eids = np.empty(0, dtype=np.int64)
        return CsrGraph.from_arrays(
            num_vertices=stats.num_vertices,
            pairs=pairs,
            eids=eids,
            degrees=stats.degrees,
            high_mask=high,
            num_edges_total=stats.num_edges,
        )

    def _stream_spill(
        self,
        spill: SpillFile,
        stats: SourceStats,
        k: int,
        phase_one,
        parts: np.ndarray,
    ) -> np.ndarray:
        """Phase two: informed HDRF over the spilled h2h chunks."""
        capacity = phase_two_capacity(
            stats.num_edges, k, self.alpha, phase_one.loads
        )
        state = StreamingState.informed_arrays(
            stats.num_vertices,
            stats.degrees,
            k,
            capacity,
            replicas=phase_one.secondary,
            loads=phase_one.loads,
        )
        stream_chunks_through_hdrf(
            state,
            spill.chunks(self.chunk_size),
            parts,
            lam=self.lam,
            eps=self.eps,
            buffer_size=self.buffer_size,
        )
        return state.loads

"""Bench: regenerate Figure 1 (vertex cut vs edge cut)."""

from repro.experiments import figure1


def bench_figure1_cut_types(benchmark, record_experiment):
    result = benchmark.pedantic(figure1.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    for row in result.rows:
        assert int(row["vertex_cut(edge part.)"]) < int(
            row["edge_cut(vertex part.)"]
        ), row

"""DNE: Distributed Neighbor Expansion, simulated in process.

Hanai et al. (VLDB'19) run one neighborhood expansion *per partition in
parallel* across a cluster, with partitions racing to claim edges.  The
paper's evaluation observes two consequences of that concurrency, both of
which this in-process simulation retains:

* the replication factor degrades relative to sequential NE, because the
  k greedy frontiers compete for the same low-degree regions instead of
  carving them one at a time;
* edge balance can degrade (the paper reports ``alpha`` up to ~1.4),
  because frontiers grow at different speeds.

The simulation interleaves the k expansions round-robin; each round a
partition cores its best boundary vertex and claims every unclaimed
edge incident to the expansion region.  Actual message passing, which
does not change the assignment semantics, is not simulated — DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import numpy as np

from repro._ds import IndexedMinHeap
from repro.graph.csr import CsrGraph
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound

__all__ = ["DnePartitioner"]


class DnePartitioner(Partitioner):
    """Simulated distributed neighbor expansion.

    Parameters
    ----------
    alpha:
        Soft balance bound; expansion stops at ``alpha * |E| / k`` per
        partition (DNE's balance factor, default 1.05 per Appendix A).
    seed:
        Seed for the initial frontier placement.
    """

    def __init__(self, alpha: float = 1.05, seed: int = 0) -> None:
        self.alpha = alpha
        self.seed = seed
        self.name = "DNE"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Run the distributed-NE simulation and collect its assignment."""
        self._require_k(graph, k)
        run = _DneRun(graph, k, self.alpha, self.seed)
        return PartitionAssignment(graph, k, run.execute())


class _DneRun:
    def __init__(self, graph: Graph, k: int, alpha: float, seed: int) -> None:
        self.graph = graph
        self.k = k
        self.csr = CsrGraph.build(graph)
        self.n = graph.num_vertices
        self.m = graph.num_edges
        self.capacity = capacity_bound(self.m, k, alpha)
        self.parts = np.full(self.m, -1, dtype=np.int32)
        self.loads = np.zeros(k, dtype=np.int64)
        self.claimed = np.zeros(self.m, dtype=bool)
        #: vertex ownership: which partition cored it (-1 = none)
        self.core_owner = np.full(self.n, -1, dtype=np.int32)
        #: per-partition membership of the expansion region (core+boundary)
        self.region = np.zeros((k, self.n), dtype=bool)
        self.heaps = [IndexedMinHeap() for _ in range(k)]
        self.rng = np.random.default_rng(seed)
        self.seed_order = self.rng.permutation(self.n)
        self.seed_cursor = 0
        self.assigned_total = 0

    def execute(self) -> np.ndarray:
        active = list(range(self.k))
        while active and self.assigned_total < self.m:
            still_active = []
            for p in active:
                if self.loads[p] >= self.capacity:
                    continue
                if self._step(p):
                    still_active.append(p)
            active = still_active
        self._assign_leftovers()
        return self.parts

    # -- one expansion round for partition p --------------------------------------

    def _step(self, p: int) -> bool:
        heap = self.heaps[p]
        while heap:
            v, _ = heap.pop_min()
            if self.core_owner[v] >= 0:
                continue  # lost the race to another partition
            self._move_to_core(v, p)
            return True
        seed = self._next_seed()
        if seed is None:
            return False
        self._enter_region(seed, p)
        self._move_to_core(seed, p)
        return True

    def _next_seed(self) -> int | None:
        while self.seed_cursor < self.n:
            v = int(self.seed_order[self.seed_cursor])
            self.seed_cursor += 1
            if self.core_owner[v] >= 0:
                continue
            if self.csr.valid_degree(v) == 0:
                continue
            return v
        return None

    def _move_to_core(self, v: int, p: int) -> None:
        self.core_owner[v] = p
        region = self.region[p]
        nbrs, eids = self.csr.adjacency(v)
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if self.claimed[eid]:
                continue
            if not region[w]:
                self._enter_region(w, p)
        # region now covers all of v's unclaimed neighbors; claim the edges
        nbrs, eids = self.csr.adjacency(v)
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if not self.claimed[eid]:
                self._claim(eid, p)

    def _enter_region(self, v: int, p: int) -> None:
        region = self.region[p]
        region[v] = True
        # Claim edges from v into the existing region (both endpoints in).
        nbrs, eids = self.csr.adjacency(v)
        dext = 0
        heap = self.heaps[p]
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if self.claimed[eid]:
                continue
            if region[w]:
                self._claim(eid, p)
                if w in heap:
                    heap.decrement(w)
            else:
                dext += 1
        if self.core_owner[v] < 0:
            heap.push_or_update(v, dext)

    def _claim(self, eid: int, p: int) -> None:
        self.claimed[eid] = True
        self.parts[eid] = p
        self.loads[p] += 1
        self.assigned_total += 1

    def _assign_leftovers(self) -> None:
        """Edges no frontier reached: send each to the least-loaded
        partition covering one of its endpoints (or overall)."""
        edges = self.graph.edges
        for e in np.flatnonzero(self.parts < 0).tolist():
            u, v = int(edges[e, 0]), int(edges[e, 1])
            candidates = np.flatnonzero(self.region[:, u] | self.region[:, v])
            if candidates.size == 0:
                p = int(np.argmin(self.loads))
            else:
                p = int(candidates[np.argmin(self.loads[candidates])])
            self.parts[e] = p
            self.loads[p] += 1
            self.region[p, u] = True
            self.region[p, v] = True

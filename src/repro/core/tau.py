"""Choosing ``tau`` to satisfy a memory budget (paper Section 4.4).

The dominant data structure of HEP is the pruned column array, whose
size for a given ``tau`` is the cumulative adjacency size of the
low-degree vertices.  That quantity is a pure function of the degree
distribution, so it can be *pre-computed* for a grid of ``tau`` values
without building any CSR — the paper measures this precomputation at
seconds-to-minutes even on billion-edge graphs (Table 2) and recommends
picking the **maximum** ``tau`` whose projected footprint stays under
the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.memory_model import hep_memory_bytes
from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph

__all__ = [
    "TauProfile",
    "precompute_profile",
    "select_tau",
    "select_from_footprints",
    "DEFAULT_TAU_GRID",
]

#: log-spaced grid covering the paper's range (HEP-1 .. HEP-100) and beyond
DEFAULT_TAU_GRID: tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 7.5, 10.0,
    15.0, 25.0, 50.0, 75.0, 100.0, 250.0, 1000.0,
)


@dataclass(frozen=True)
class TauProfile:
    """Projected HEP memory footprint for each candidate ``tau``."""

    taus: tuple[float, ...]
    bytes_per_tau: tuple[int, ...]
    precompute_seconds: float

    def rows(self) -> list[dict[str, object]]:
        """Tabular per-tau footprints for the CLI/experiment tables."""
        return [
            {"tau": t, "bytes": b, "MiB": round(b / 2**20, 3)}
            for t, b in zip(self.taus, self.bytes_per_tau)
        ]


def precompute_profile(
    graph: Graph,
    k: int,
    taus: tuple[float, ...] = DEFAULT_TAU_GRID,
    id_bytes: int = 4,
) -> TauProfile:
    """Project HEP's memory footprint over a grid of ``tau`` values.

    This is the measured pre-computation of Table 2: one degree-array
    pass per candidate (vectorized here), no graph rebuilding.
    """
    if not taus:
        raise ConfigurationError("tau grid must not be empty")
    start = time.perf_counter()
    footprints = tuple(
        hep_memory_bytes(graph, tau, k, id_bytes=id_bytes) for tau in taus
    )
    elapsed = time.perf_counter() - start
    return TauProfile(tuple(taus), footprints, elapsed)


def select_tau(
    graph: Graph,
    memory_budget_bytes: int,
    k: int,
    taus: tuple[float, ...] = DEFAULT_TAU_GRID,
    id_bytes: int = 4,
) -> tuple[float, int]:
    """Largest grid ``tau`` whose projected footprint fits the budget.

    Returns ``(tau, projected_bytes)``.  Raises
    :class:`ConfigurationError` when even the smallest candidate exceeds
    the budget (the machine is too small for this graph at any setting —
    the paper's answer would be pure streaming).
    """
    profile = precompute_profile(graph, k, taus, id_bytes=id_bytes)
    return select_from_footprints(
        profile.taus, profile.bytes_per_tau, memory_budget_bytes
    )


def select_from_footprints(
    taus: tuple[float, ...] | list[float],
    footprints: tuple[int, ...] | list[int],
    memory_budget_bytes: int,
) -> tuple[float, int]:
    """The grid-selection rule shared with the out-of-core pipeline.

    :class:`~repro.stream.pipeline.OutOfCoreHep` computes footprints
    from chunk-counted column entries and must pick identically to
    :func:`select_tau` — both funnel through here.
    """
    best: tuple[float, int] | None = None
    for tau, footprint in zip(taus, footprints):
        if footprint <= memory_budget_bytes:
            if best is None or tau > best[0]:
                best = (tau, footprint)
    if best is None:
        smallest = min(footprints)
        raise ConfigurationError(
            f"no tau on the grid fits {memory_budget_bytes:,} bytes "
            f"(minimum projected footprint is {smallest:,} bytes)"
        )
    return best


def h2h_edge_fraction_curve(
    graph: Graph, taus: tuple[float, ...] = DEFAULT_TAU_GRID
) -> list[tuple[float, float]]:
    """``(tau, fraction of edges streamed)`` pairs — the knob's response
    curve (Figure 9's edge-type ratios, swept)."""
    from repro.graph.pruned import split_edges

    return [(tau, split_edges(graph, tau).h2h_fraction()) for tau in taus]

"""Dense bitset over vertex ids ``0 .. n-1``.

The paper (Section 4.2) tracks the core set ``C`` and each secondary set
``S_i`` as dense bitsets: one bit per vertex, ``|V| * (k+1) / 8`` bytes in
total.  This implementation is backed by a ``numpy`` boolean array, which
keeps single-bit operations O(1) and gives vectorized bulk queries for
free (``count``, ``to_indices``, boolean masking).

A boolean array spends one byte per vertex rather than one bit; the
analytic memory model in :mod:`repro.core.memory_model` reports the
*paper's* bit-level footprint, which is what the C++ system would use.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Bitset"]


class Bitset:
    """Fixed-universe set of integers in ``[0, size)``.

    >>> s = Bitset(8)
    >>> s.add(3); s.add(5)
    >>> 3 in s, 4 in s
    (True, False)
    >>> s.count()
    2
    """

    __slots__ = ("_bits", "_size")

    def __init__(self, size: int, init: Iterable[int] | None = None) -> None:
        if size < 0:
            raise ConfigurationError(f"bitset size must be >= 0, got {size}")
        self._size = size
        self._bits = np.zeros(size, dtype=bool)
        if init is not None:
            for item in init:
                self.add(item)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitset":
        """Wrap an existing boolean mask (no copy)."""
        if mask.dtype != bool or mask.ndim != 1:
            raise ConfigurationError("mask must be a 1-D boolean array")
        out = cls(0)
        out._size = int(mask.shape[0])
        out._bits = mask
        return out

    @property
    def size(self) -> int:
        """Universe size (number of addressable ids)."""
        return self._size

    @property
    def mask(self) -> np.ndarray:
        """The underlying boolean array (shared, not a copy)."""
        return self._bits

    def add(self, item: int) -> None:
        """Insert ``item``; raises ``IndexError`` if out of universe."""
        if not 0 <= item < self._size:
            raise IndexError(f"id {item} outside universe [0, {self._size})")
        self._bits[item] = True

    def discard(self, item: int) -> None:
        """Remove ``item`` if present; no-op otherwise."""
        if 0 <= item < self._size:
            self._bits[item] = False

    def add_many(self, items: Iterable[int] | np.ndarray) -> None:
        """Insert every id in ``items`` (vectorized for arrays)."""
        idx = np.asarray(items, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._size:
            raise IndexError("id outside universe")
        self._bits[idx] = True

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._size and bool(self._bits[item])

    def count(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def to_indices(self) -> np.ndarray:
        """Sorted array of all ids currently in the set."""
        return np.flatnonzero(self._bits)

    def clear(self) -> None:
        """Remove all elements."""
        self._bits[:] = False

    def nbytes_bitlevel(self) -> int:
        """Footprint the paper's C++ bitset would use (one bit per id)."""
        return (self._size + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitset(size={self._size}, count={self.count()})"

"""The three workloads of the paper's Table 4, executed exactly.

* **PageRank** (100 iterations): every vertex active in every superstep —
  the communication-heaviest workload.
* **BFS** (10 random seeds, run back to back): the frontier sweeps
  through the graph, so only part of the graph is active per superstep.
* **Connected Components** (label propagation to fixpoint): all vertices
  start active and progressively go quiet — the shortest job.

Values are computed exactly on the real graph (tests verify them against
networkx); the engine charges simulated time per superstep from the
active sets.
"""

from __future__ import annotations

import numpy as np

from repro.processing.engine import JobResult, VertexCutEngine

__all__ = ["pagerank", "bfs", "connected_components"]


def _undirected_neighbors_csr(engine: VertexCutEngine) -> tuple[np.ndarray, np.ndarray]:
    """Global adjacency (indptr, indices) treating edges as undirected."""
    graph = engine.graph
    n = graph.num_vertices
    edges = graph.edges
    endpoints = np.concatenate([edges[:, 0], edges[:, 1]])
    neighbors = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(endpoints, kind="stable")
    sorted_src = endpoints[order]
    sorted_dst = neighbors[order]
    counts = np.bincount(sorted_src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, sorted_dst


def pagerank(
    engine: VertexCutEngine,
    iterations: int = 100,
    damping: float = 0.85,
) -> JobResult:
    """Synchronous PageRank over the undirected graph (each edge acts in
    both directions, matching GraphX on a symmetrized graph)."""
    graph = engine.graph
    n = graph.num_vertices
    degrees = graph.degrees.astype(np.float64)
    safe_deg = np.maximum(degrees, 1.0)
    edges = graph.edges
    u, v = edges[:, 0], edges[:, 1]

    ranks = np.full(n, 1.0 / max(n, 1))
    active = degrees > 0
    isolated = ~active
    total_seconds = 0.0
    total_messages = 0
    for _ in range(iterations):
        contrib = ranks / safe_deg
        incoming = np.zeros(n)
        np.add.at(incoming, v, contrib[u])
        np.add.at(incoming, u, contrib[v])
        # Dangling (isolated) vertices spread their mass uniformly, the
        # standard correction (networkx does the same) — keeps the ranks
        # a probability distribution.
        dangling = float(ranks[isolated].sum()) / max(n, 1)
        ranks = (1.0 - damping) / max(n, 1) + damping * (incoming + dangling)
        seconds, messages = engine.superstep_cost(active)
        total_seconds += seconds
        total_messages += messages
    return JobResult("PageRank", iterations, total_seconds, total_messages, ranks)


def bfs(
    engine: VertexCutEngine,
    seeds: list[int] | None = None,
    num_seeds: int = 10,
    seed: int = 0,
) -> JobResult:
    """Level-synchronous BFS from ``num_seeds`` random start vertices,
    executed one after the other (the paper's Table 4 setup)."""
    graph = engine.graph
    n = graph.num_vertices
    indptr, indices = _undirected_neighbors_csr(engine)
    if seeds is None:
        rng = np.random.default_rng(seed)
        candidates = np.flatnonzero(graph.degrees > 0)
        take = min(num_seeds, candidates.size)
        seeds = rng.choice(candidates, size=take, replace=False).tolist()

    total_seconds = 0.0
    total_messages = 0
    total_steps = 0
    distances = np.full((len(seeds), n), -1, dtype=np.int64)
    for run, source in enumerate(seeds):
        dist = distances[run]
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            active = np.zeros(n, dtype=bool)
            active[frontier] = True
            seconds, messages = engine.superstep_cost(active)
            total_seconds += seconds
            total_messages += messages
            total_steps += 1
            # Expand the frontier.
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            chunks = [indices[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
            if chunks:
                reached = np.unique(np.concatenate(chunks))
                fresh = reached[dist[reached] < 0]
            else:
                fresh = np.empty(0, dtype=np.int64)
            level += 1
            dist[fresh] = level
            frontier = fresh
    return JobResult("BFS", total_steps, total_seconds, total_messages, distances)


def connected_components(engine: VertexCutEngine) -> JobResult:
    """Label propagation: every vertex adopts the minimum label in its
    neighborhood until a fixpoint; active = vertices whose label changed
    in the previous round (the workload that goes quiet fastest)."""
    graph = engine.graph
    n = graph.num_vertices
    edges = graph.edges
    u, v = edges[:, 0], edges[:, 1]

    labels = np.arange(n, dtype=np.int64)
    active = graph.degrees > 0
    total_seconds = 0.0
    total_messages = 0
    steps = 0
    while active.any():
        seconds, messages = engine.superstep_cost(active)
        total_seconds += seconds
        total_messages += messages
        steps += 1
        new_labels = labels.copy()
        np.minimum.at(new_labels, v, labels[u])
        np.minimum.at(new_labels, u, labels[v])
        active = new_labels != labels
        labels = new_labels
    return JobResult("ConnectedComponents", steps, total_seconds, total_messages, labels)

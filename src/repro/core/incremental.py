"""Incremental maintenance of a HEP partitioning under edge updates.

The paper's related work (Section 6) points at Fan et al.'s
incrementalization of iterative vertex-cut partitioners and notes it "is
also applicable to NE++".  This module implements that direction on top
of HEP's own machinery: the streaming phase *is already* an incremental
assimilator — its informed state (replica sets, degrees, loads) is
exactly what needs maintaining — so edge insertions stream through the
HDRF scorer against live state, and deletions retire replicas through
per-(partition, vertex) incidence counts.

Quality stays close to a from-scratch re-partitioning as long as updates
are a modest fraction of the graph (tests pin this), at a per-update
cost of one score evaluation instead of a full rerun.
"""

from __future__ import annotations

import numpy as np

from repro.core.hep import HepPartitioner
from repro.errors import CapacityError, ConfigurationError
from repro.graph.edgelist import Graph, canonical_edges
from repro.partition.base import PartitionAssignment, capacity_bound
from repro.partition.scoring import NEG_INF

__all__ = ["IncrementalHep"]


class IncrementalHep:
    """A HEP partitioning that absorbs edge insertions and deletions.

    Parameters mirror :class:`~repro.core.hep.HepPartitioner`; ``slack``
    is extra per-partition headroom reserved for future insertions
    (a hard bound would reject the very first insert on a perfectly
    balanced partitioning).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        tau: float = 10.0,
        lam: float = 1.1,
        eps: float = 1.0,
        slack: float = 1.05,
    ) -> None:
        if slack < 1.0:
            raise ConfigurationError(f"slack must be >= 1.0, got {slack}")
        self.k = k
        self.tau = tau
        self.lam = lam
        self.eps = eps
        self.slack = slack
        self.num_vertices = graph.num_vertices

        base = HepPartitioner(tau=tau, lam=lam, eps=eps)
        assignment = base.partition(graph, k)

        # Live state.  Incidence counts (not booleans) so deletions can
        # retire replicas exactly.
        self._edges: list[tuple[int, int]] = [tuple(e) for e in graph.edges.tolist()]
        self._parts: list[int] = assignment.parts.tolist()
        self._alive: list[bool] = [True] * len(self._edges)
        self._edge_index: dict[tuple[int, int], int] = {}
        for i, (u, v) in enumerate(self._edges):
            self._edge_index[(min(u, v), max(u, v))] = i
        self.incidence = np.zeros((k, graph.num_vertices), dtype=np.int32)
        u, v = graph.edges[:, 0], graph.edges[:, 1]
        np.add.at(self.incidence, (assignment.parts, u), 1)
        np.add.at(self.incidence, (assignment.parts, v), 1)
        self.loads = assignment.partition_sizes().copy()
        self.degrees = graph.degrees.copy()
        self._num_alive = len(self._edges)

    # -- updates -----------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> int:
        """Add edge ``(u, v)``; returns the chosen partition.

        Duplicate edges and self-loops are rejected — the maintained
        graph stays simple, like every input in the paper.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ConfigurationError(f"self-loop ({u}, {v})")
        key = (min(u, v), max(u, v))
        existing = self._edge_index.get(key)
        if existing is not None and self._alive[existing]:
            raise ConfigurationError(f"edge {key} already present")

        self.degrees[u] += 1
        self.degrees[v] += 1
        p = self._choose(u, v)
        if p < 0:
            raise CapacityError("no partition below the slack capacity")
        self._edges.append((u, v))
        self._parts.append(p)
        self._alive.append(True)
        self._edge_index[key] = len(self._edges) - 1
        self.incidence[p, u] += 1
        self.incidence[p, v] += 1
        self.loads[p] += 1
        self._num_alive += 1
        return p

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; retires replicas whose last incident
        edge leaves a partition."""
        key = (min(u, v), max(u, v))
        idx = self._edge_index.get(key)
        if idx is None or not self._alive[idx]:
            raise ConfigurationError(f"edge {key} not present")
        p = self._parts[idx]
        self._alive[idx] = False
        del self._edge_index[key]
        self.incidence[p, u] -= 1
        self.incidence[p, v] -= 1
        self.loads[p] -= 1
        self.degrees[u] -= 1
        self.degrees[v] -= 1
        self._num_alive -= 1

    # -- queries ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of currently alive (non-deleted) edges."""
        return self._num_alive

    def current_assignment(self) -> PartitionAssignment:
        """Materialize the maintained partitioning as a standard result."""
        alive = [i for i, ok in enumerate(self._alive) if ok]
        edges = np.asarray([self._edges[i] for i in alive], dtype=np.int64)
        edges = edges.reshape(-1, 2)
        parts = np.asarray([self._parts[i] for i in alive], dtype=np.int32)
        assert canonical_edges(edges).shape == edges.shape, "graph must stay simple"
        graph = Graph(edges, self.num_vertices, name="incremental")
        return PartitionAssignment(graph, self.k, parts)

    def replication_factor(self) -> float:
        """Replication factor of the maintained assignment."""
        replicas = (self.incidence > 0).sum(axis=0)
        covered = self.degrees > 0
        denom = max(int(covered.sum()), 1)
        return float(replicas[covered].sum() / denom)

    # -- internals ------------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ConfigurationError(
                f"vertex {v} outside universe [0, {self.num_vertices})"
            )

    def _capacity(self) -> int:
        return capacity_bound(max(self._num_alive + 1, 1), self.k, self.slack)

    def _choose(self, u: int, v: int) -> int:
        """Informed HDRF over the live incidence state."""
        du = self.degrees[u]
        dv = self.degrees[v]
        total = du + dv
        theta_u = du / total if total else 0.5
        theta_v = 1.0 - theta_u
        rep_u = self.incidence[:, u] > 0
        rep_v = self.incidence[:, v] > 0
        score = rep_u * (2.0 - theta_u) + rep_v * (2.0 - theta_v)
        loads = self.loads
        maxload = loads.max()
        minload = loads.min()
        score = score + self.lam * (maxload - loads) / (self.eps + maxload - minload)
        score = np.where(loads < self._capacity(), score, NEG_INF)
        p = int(np.argmax(score))
        return -1 if score[p] == NEG_INF else p

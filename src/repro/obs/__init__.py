"""Zero-dependency observability: structured tracing, counters, profiling.

The :mod:`repro.obs` package is the measurement substrate for the
streaming/worker stack.  It has two halves:

* :mod:`repro.obs.tracer` — a process-global :class:`Tracer` with
  nestable spans, typed counters, optional memory deltas, and a JSONL
  trace-file format.  Worker processes record spans into an in-memory
  collecting tracer and ship them to the coordinator over the existing
  pipe protocol, where :meth:`Tracer.adopt` re-parents them under the
  dispatching span — one coherent tree per run.
* :mod:`repro.obs.summary` — readers and aggregators for trace files:
  per-span-name rollups, total counters, and the phase attribution
  (spawn / pickle / pipe / compute / merge) behind
  ``benchmarks/bench_profile.py`` and ``repro trace summarize``.

The default process-global tracer is :data:`NULL_TRACER`, a no-op whose
spans are a single shared object, so instrumented hot paths cost almost
nothing when tracing is off.
"""

from __future__ import annotations

from repro.obs.bridge import SpanEventBridge, progress_event
from repro.obs.summary import (
    PROFILE_PHASES,
    aggregate_spans,
    format_summary,
    phase_breakdown,
    read_trace,
    total_counters,
    validate_profile_record,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_VERSION,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "NULL_TRACER",
    "PROFILE_PHASES",
    "TRACE_VERSION",
    "NullTracer",
    "Span",
    "SpanEventBridge",
    "Tracer",
    "aggregate_spans",
    "progress_event",
    "format_summary",
    "get_tracer",
    "phase_breakdown",
    "read_trace",
    "set_tracer",
    "total_counters",
    "tracing",
    "validate_profile_record",
]

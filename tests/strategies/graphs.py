"""Hypothesis strategies producing random edge lists and graphs.

Three layers:

* :func:`edge_lists` — raw ``(m, 2)`` integer arrays, possibly with
  self-loops and duplicates (for exercising canonicalization),
* :func:`graphs` — canonical :class:`~repro.graph.edgelist.Graph`
  objects with at least ``min_edges`` surviving edges,
* :func:`power_law_graphs` — seeded Chung-Lu graphs whose skew puts
  real edge mass on both sides of HEP's ``tau`` threshold.

Every strategy keeps the sizes small — these feed equivalence
properties that run two full partitioner pipelines per example.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.edgelist import Graph

__all__ = ["edge_lists", "graphs", "power_law_graphs", "bsp_schedules"]


@st.composite
def edge_lists(
    draw,
    min_edges: int = 0,
    max_edges: int = 60,
    max_vertices: int = 24,
) -> np.ndarray:
    """Raw oriented edge arrays — self-loops and duplicates allowed."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=min_edges, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


@st.composite
def graphs(
    draw,
    min_edges: int = 1,
    max_edges: int = 60,
    max_vertices: int = 24,
) -> Graph:
    """Canonical graphs with at least ``min_edges`` edges.

    Built through :meth:`Graph.from_edges`, so the result carries the
    same dedup/self-loop semantics every partitioner expects.  The
    vertex universe may exceed the highest endpoint (isolated trailing
    vertices are legal and exercise the mean-degree bookkeeping).
    """
    raw = draw(
        edge_lists(
            min_edges=min_edges, max_edges=max_edges, max_vertices=max_vertices
        )
    )
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    if raw.size:
        n = max(n, int(raw.max()) + 1)
    graph = Graph.from_edges(raw, num_vertices=n)
    if graph.num_edges < min_edges:
        # Canonicalization collapsed too much; top up with a simple path
        # over distinct vertices (always canonical, no duplicates).
        need = min_edges - graph.num_edges
        n = max(n, need + 1)
        path = np.column_stack(
            [np.arange(need, dtype=np.int64), np.arange(1, need + 1, dtype=np.int64)]
        )
        merged = np.vstack([graph.edges, path]) if graph.num_edges else path
        graph = Graph.from_edges(merged, num_vertices=n)
    return graph


@st.composite
def bsp_schedules(draw) -> tuple[int, int, int]:
    """``(workers, batch, num_shards)`` triples for BSP equivalence runs.

    Worker counts cover the 1/2/4 grid the multi-worker acceptance
    property pins; shard counts deliberately range below, at, and above
    the worker count so workers own zero, one, or several shards.
    """
    workers = draw(st.sampled_from([1, 2, 4]))
    batch = draw(st.sampled_from([1, 3, 8]))
    num_shards = draw(st.integers(min_value=1, max_value=6))
    return workers, batch, num_shards


@st.composite
def power_law_graphs(
    draw,
    max_vertices: int = 120,
) -> Graph:
    """Seeded Chung-Lu power-law graphs (HEP's home turf).

    Degree skew guarantees a non-trivial high/low split for small tau,
    so h2h spill paths actually execute.
    """
    n = draw(st.integers(min_value=20, max_value=max_vertices))
    mean_degree = draw(st.integers(min_value=2, max_value=8))
    exponent = draw(
        st.floats(min_value=1.8, max_value=2.8, allow_nan=False)
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return generators.chung_lu(
        n, mean_degree, exponent=exponent, seed=seed, name="hyp-cl"
    )

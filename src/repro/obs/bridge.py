"""Span → progress-event bridge: live trace records for subscribers.

The serve layer streams job progress to clients while a run executes.
Rather than inventing a second instrumentation surface, progress *is*
the trace: :class:`SpanEventBridge` is a collect-mode
:class:`~repro.obs.tracer.Tracer` that additionally hands every
finished span record to a caller-supplied callback the moment it is
emitted — including worker spans grafted in via
:meth:`~repro.obs.tracer.Tracer.adopt` at the end of a pool run.

The callback runs on whatever thread emitted the span (the job runner
thread, for the serve layer) and must be quick and exception-free;
anything it raises is swallowed so instrumentation can never fail a
run.  Subscribers that live on an event loop should hand off with
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.tracer import Tracer

__all__ = ["SpanEventBridge", "progress_event"]


#: span names worth forwarding as coarse progress (pipeline stages and
#: pool lifecycle); everything else is detail a live client rarely wants
PROGRESS_SPANS = frozenset({
    "partition", "cache_hit", "count_pass", "select_tau", "split_pass",
    "phase_one", "stream_pass", "finalize", "metrics_pass", "pool_spawn",
    "pool_run", "shm_attach", "split_spill", "source_read",
})


def progress_event(record: dict[str, Any]) -> dict[str, Any] | None:
    """Distill one trace record into a progress event, or ``None``.

    Keeps the span name, duration, and counters; drops ids/parents
    (meaningless outside the trace tree) and any span not in
    :data:`PROGRESS_SPANS`.
    """
    if record.get("type") != "span":
        return None
    name = record.get("name")
    if name not in PROGRESS_SPANS:
        return None
    event: dict[str, Any] = {"event": "span", "span": name}
    if record.get("dur_s") is not None:
        event["dur_s"] = record["dur_s"]
    attrs = record.get("attrs")
    if attrs:
        event["attrs"] = dict(attrs)
    counters = record.get("counters")
    if counters:
        event["counters"] = dict(counters)
    return event


class SpanEventBridge(Tracer):
    """A collecting tracer that forwards finished spans to a callback.

    Behaves exactly like ``Tracer(path=None)`` — spans buffer in memory,
    workers' records are adopted, ``drain()`` empties the buffer — with
    one addition: every emitted record is also passed (as a copy) to
    ``callback``.  Install it with
    :func:`~repro.obs.tracer.set_tracer` around a job to watch the run
    live.
    """

    def __init__(
        self,
        callback: Callable[[dict[str, Any]], None],
        memory: str | None = None,
    ) -> None:
        """Wrap a collect-mode tracer around ``callback``."""
        super().__init__(None, memory=memory)
        self._callback = callback

    def _emit(self, record: dict[str, Any]) -> None:
        """Buffer the record, then forward a copy to the callback."""
        super()._emit(record)
        try:
            self._callback(dict(record))
        except Exception:  # noqa: BLE001 — observers must never fail a run
            pass

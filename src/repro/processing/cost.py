"""Cost model for the simulated Spark/GraphX cluster (Section 5.3 setup).

The paper runs PageRank/BFS/CC on 32 machines (8 cores, 20 GiB each,
10-GBit Ethernet) over pre-partitioned graphs.  The simulator charges,
per superstep:

* ``max_m(edge work on machine m) * edge_cost``        — scatter/gather
* ``max_m(active covered vertices on m) * vertex_cost`` — apply phase
* ``max_m(replica messages touching m) * message_cost`` — synchronization
* ``barrier_cost``                                       — superstep barrier

Using the per-machine *maximum* (not the total) is what makes both
replication volume and balance matter, which is exactly the phenomenon
Table 4/5 of the paper discusses: once replication factors saturate, the
vertex-balance of the partitioning decides the processing time.

The default constants are calibrated so that the synthetic stand-in
graphs (10^5-edge scale) produce run-times of the same order as the
paper's (10^8-edge graphs on 32 real machines) — the absolute values are
"simulated seconds"; only ratios between partitioners are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs of the simulated cluster, in simulated seconds."""

    edge_cost: float = 2.0e-4      # one edge visited during gather/scatter
    vertex_cost: float = 1.0e-4    # one active vertex applying its update
    message_cost: float = 2.0e-4   # one replica-sync message on one machine
    barrier_cost: float = 0.05     # per-superstep synchronization barrier

    def superstep_seconds(
        self,
        max_edge_work: float,
        max_active_cover: float,
        max_messages: float,
    ) -> float:
        """Simulated wall time of one superstep."""
        return (
            max_edge_work * self.edge_cost
            + max_active_cover * self.vertex_cost
            + max_messages * self.message_cost
            + self.barrier_cost
        )

"""METIS-family multilevel vertex partitioner (baseline, see kway.py)."""

from repro.partition.metis.coarsen import coarsen
from repro.partition.metis.initial import grow_bisection
from repro.partition.metis.kway import MetisPartitioner, partition_vertices_kway
from repro.partition.metis.level import LevelGraph
from repro.partition.metis.refine import fm_refine

__all__ = [
    "MetisPartitioner",
    "partition_vertices_kway",
    "LevelGraph",
    "coarsen",
    "grow_bisection",
    "fm_refine",
]

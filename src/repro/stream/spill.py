"""Disk-backed spill file for h2h edges.

The paper's HEP writes the high/high edges to an *external memory edge
file* at graph-building time and streams them back in phase two.  The
seed implementation kept that buffer in RAM (:class:`ExternalEdges`);
:class:`SpillFile` is the honest version: NE++'s build pass *appends*
h2h chunks here, and the streaming phase reads them back in bounded
chunks — the full h2h edge set never resides in memory.

On-disk format: flat little-endian int64 triples ``(u, v, eid)``.  The
eid travels with the pair so the streamed assignments land in the same
canonical per-edge slots the in-memory path uses, which is what makes
out-of-core HEP bit-identical to in-memory HEP.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["SpillFile"]

_RECORD_DTYPE = np.dtype("<i8")
_RECORD_WIDTH = 3  # u, v, eid
_RECORD_BYTES = _RECORD_DTYPE.itemsize * _RECORD_WIDTH

#: default read-back chunk size (edges per block)
DEFAULT_SPILL_CHUNK = 1 << 16


class SpillFile:
    """Append-only on-disk edge buffer with chunked read-back.

    Parameters
    ----------
    dir:
        Directory for the backing file (a fresh temporary file is created
        there; defaults to the system temp dir).
    path:
        Explicit backing-file path.  When given, the file is created (or
        truncated) at that location instead of a temporary name.
    delete:
        Remove the backing file on :meth:`close` / context-manager exit.

    The object is a context manager: leaving the ``with`` block — also on
    an exception — closes and (by default) deletes the backing file.
    Iteration (:meth:`chunks`) may be repeated and interleaved with
    further :meth:`append` calls; each ``chunks()`` call re-reads from the
    start of the file.
    """

    def __init__(
        self,
        dir: str | os.PathLike | None = None,
        path: str | os.PathLike | None = None,
        delete: bool = True,
    ) -> None:
        if path is not None:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
        else:
            if dir is not None:
                Path(dir).mkdir(parents=True, exist_ok=True)
            fd, name = tempfile.mkstemp(
                prefix="h2h-spill-", suffix=".bin", dir=dir
            )
            self.path = Path(name)
            self._fh = os.fdopen(fd, "wb")
        self.delete = delete
        self._num_edges = 0
        self._closed = False

    # -- writing -----------------------------------------------------------

    def append(self, pairs: np.ndarray, eids: np.ndarray) -> int:
        """Append a block of ``(u, v)`` pairs with their canonical edge ids.

        Returns the number of edges appended (zero-size blocks are a
        no-op, so callers can feed every chunk unconditionally).
        """
        if self._closed:
            raise ValueError("append() on a closed SpillFile")
        pairs = np.ascontiguousarray(pairs, dtype=np.int64).reshape(-1, 2)
        eids = np.ascontiguousarray(eids, dtype=np.int64)
        if eids.shape != (pairs.shape[0],):
            raise GraphFormatError("eids must parallel pairs")
        if pairs.shape[0] == 0:
            return 0
        records = np.empty((pairs.shape[0], _RECORD_WIDTH), dtype=_RECORD_DTYPE)
        records[:, :2] = pairs
        records[:, 2] = eids
        records.tofile(self._fh)
        self._num_edges += pairs.shape[0]
        return pairs.shape[0]

    # -- reading -----------------------------------------------------------

    def chunks(
        self, chunk_size: int = DEFAULT_SPILL_CHUNK
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(pairs, eids)`` blocks of at most ``chunk_size`` edges.

        Appended data is flushed first, so everything written before the
        call is visible.  The write handle stays open — appending after
        (or between) iterations is allowed.
        """
        if self._closed:
            raise ValueError("chunks() on a closed SpillFile")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._fh.flush()
        total = self._num_edges
        with open(self.path, "rb") as reader:
            done = 0
            while done < total:
                count = min(chunk_size, total - done)
                flat = np.fromfile(
                    reader, dtype=_RECORD_DTYPE, count=count * _RECORD_WIDTH
                )
                if flat.size != count * _RECORD_WIDTH:
                    raise GraphFormatError(
                        f"{self.path}: spill file truncated "
                        f"({done + flat.size // _RECORD_WIDTH} of {total} edges)"
                    )
                records = flat.reshape(-1, _RECORD_WIDTH).astype(np.int64)
                yield records[:, :2], records[:, 2]
                done += count

    def __len__(self) -> int:
        """Number of edges spilled so far."""
        return self._num_edges

    @property
    def nbytes(self) -> int:
        """Bytes the spill occupies on disk (flushed + buffered)."""
        return self._num_edges * _RECORD_BYTES

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the write handle; remove the file when ``delete`` is set."""
        if self._closed:
            return
        self._closed = True
        self._fh.close()
        if self.delete:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SpillFile({str(self.path)!r}, edges={self._num_edges:,}, "
            f"bytes={self.nbytes:,}, {state})"
        )

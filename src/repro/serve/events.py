"""Per-job progress-event logs with async fan-out to subscribers.

Each job owns one :class:`EventLog`: an append-only, sequence-numbered
list of small JSON-able dicts.  The runner thread appends through
:meth:`EventLog.append_threadsafe` (a ``call_soon_threadsafe`` hop onto
the service's event loop); any number of streaming clients await
:meth:`EventLog.wait_beyond` concurrently and each sees every event
exactly once, in order.  Closing the log wakes all waiters a final
time, so streams terminate as soon as the job reaches a terminal
state.
"""

from __future__ import annotations

import asyncio
from typing import Any

__all__ = ["EventLog"]


class EventLog:
    """Append-only event list with sequence numbers and async waiting."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the log to the service's event loop."""
        self._loop = loop
        self._events: list[dict[str, Any]] = []
        self._closed = False
        self._waiters: list[asyncio.Future] = []

    def __len__(self) -> int:
        """Number of events appended so far."""
        return len(self._events)

    @property
    def closed(self) -> bool:
        """True once the job reached a terminal state."""
        return self._closed

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def append(self, event: dict[str, Any]) -> None:
        """Append one event (event-loop thread only) and wake waiters."""
        event = dict(event)
        event["seq"] = len(self._events)
        self._events.append(event)
        self._wake()

    def append_threadsafe(self, event: dict[str, Any]) -> None:
        """Append from any thread by hopping onto the event loop."""
        try:
            self._loop.call_soon_threadsafe(self.append, event)
        except RuntimeError:
            # Loop already closed (service shutting down): drop quietly.
            pass

    def close(self) -> None:
        """Mark the log complete and release every pending waiter."""
        self._closed = True
        self._wake()

    def close_threadsafe(self) -> None:
        """Close from any thread by hopping onto the event loop."""
        try:
            self._loop.call_soon_threadsafe(self.close)
        except RuntimeError:
            pass

    def snapshot(self, since: int = 0) -> list[dict[str, Any]]:
        """Events with ``seq >= since`` (no waiting)."""
        return list(self._events[since:])

    async def wait_beyond(self, since: int) -> list[dict[str, Any]]:
        """Await events past ``since``; empty list means the log closed.

        Returns as soon as at least one event with ``seq >= since``
        exists.  When the log closes with nothing further, the empty
        list tells streamers to finish.
        """
        while True:
            if len(self._events) > since:
                return list(self._events[since:])
            if self._closed:
                return []
            waiter: asyncio.Future = self._loop.create_future()
            self._waiters.append(waiter)
            await waiter

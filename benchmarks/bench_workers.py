"""Bench: multi-worker shard-parallel partitioning wall-clock.

Measures what ``partition --workers N`` actually buys over the
*single-worker* sequential out-of-core driver — the path a user without
``--workers`` runs today.  Two honest effects stack:

* **batching** — the BSP schedule scores ``batch`` edges per worker per
  superstep against a frozen snapshot, so scoring vectorizes; the
  sequential informed-HDRF semantics cannot batch (every edge's score
  depends on the previous placement).  This alone is a >= 1.3x
  wall-clock win on any hardware, bought with the (reported) small
  replication-factor cost of staleness.
* **process parallelism** — with ``N`` workers each streams its own
  shard assignment, so scoring and shard decode run concurrently on
  multi-core hosts.  The per-configuration rows record it; on a
  single-core container (``cpu_count`` is recorded in the JSON) worker
  scaling is bounded by barrier amortization alone.

The measured rows land in ``results/BENCH_workers.json`` with 1/2/4
worker wall-clock and replication factor, plus the sequential
single-worker baseline every speedup is computed against.

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_workers.py \
        -o python_functions=bench_
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.graph import datasets
from repro.stream import (
    MultiWorkerStreamingDriver,
    StreamingPartitionerDriver,
    write_sharded_edges,
)

_K = 8
_BATCH = 16
_SHARDS = 4
_WORKER_COUNTS = (1, 2, 4)
_REPEATS = 3
_RESULTS = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """The WI stand-in exported as a 4-shard manifest."""
    graph = datasets.load("WI")
    out = tmp_path_factory.mktemp("bench-workers") / "wi.manifest.json"
    return write_sharded_edges(graph, out, num_shards=_SHARDS)


def _best_of(fn, repeats: int = _REPEATS):
    """Best wall-clock of ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_multi_worker_scaling(manifest, capsys):
    """1/2/4 workers vs the sequential single-worker driver.

    Emits ``results/BENCH_workers.json``.  The 4-worker configuration
    must beat the single-worker sequential baseline by >= 1.3x — the
    batching win alone clears that bar on one core, and worker
    parallelism stacks on top wherever there is more than one.
    """
    seq_s, seq = _best_of(
        lambda: StreamingPartitionerDriver(
            "HDRF", exact_degrees=True
        ).partition(manifest.path, _K)
    )
    rows = [
        {
            "driver": "sequential single-worker (HDRF informed)",
            "workers": 1,
            "batch": 1,
            "seconds": seq_s,
            "rf": seq.replication_factor,
            "supersteps": seq.num_edges,
            "speedup_vs_single_worker": 1.0,
        }
    ]
    for workers in _WORKER_COUNTS:
        run_s, run = _best_of(
            lambda w=workers: MultiWorkerStreamingDriver(
                workers=w, batch=_BATCH
            ).partition(manifest.path, _K)
        )
        rows.append(
            {
                "driver": run.algorithm,
                "workers": workers,
                "batch": _BATCH,
                "seconds": run_s,
                "rf": run.replication_factor,
                "supersteps": run.report.supersteps,
                "speedup_vs_single_worker": seq_s / run_s,
            }
        )
    record = {
        "bench": "multi_worker_scaling",
        "graph": "WI",
        "edges": manifest.num_edges,
        "k": _K,
        "shards": _SHARDS,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    _RESULTS.mkdir(exist_ok=True)
    out = _RESULTS / "BENCH_workers.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n[bench_workers] -> {out}")
        for row in rows:
            print(
                f"  {row['driver']:<42} {row['seconds']:.3f}s  "
                f"rf={row['rf']:.4f}  "
                f"x{row['speedup_vs_single_worker']:.2f}"
            )
    multi = rows[-1]
    assert multi["speedup_vs_single_worker"] >= 1.3, (
        f"4-worker run only {multi['speedup_vs_single_worker']:.2f}x faster "
        f"than the sequential single-worker driver"
    )
    # Staleness must stay a modest quality cost (the BSP trade-off).
    assert multi["rf"] <= rows[0]["rf"] * 1.15

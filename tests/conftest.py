"""Shared test configuration.

Hypothesis is tuned for determinism in CI: fixed derandomization keeps
flaky shrink-search noise out of the suite while the explicit seeds in
the generators keep the workloads reproducible.

The session-scoped ``shm_leak_gate`` fixture is the local half of the CI
leak gate: every shared-memory segment the suite creates (``psm_*`` in
``/dev/shm``) must be unlinked by the time the session ends — a survivor
means some driver's ``finally`` failed to unlink, which on 3.10–3.12
nothing else would ever clean up (the resource tracker is deliberately
kept out of the loop; see :mod:`repro.parallel.shm`).
"""

from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")


def _psm_segments():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return {p.name for p in shm_dir.glob("psm_*")}


@pytest.fixture(scope="session", autouse=True)
def shm_leak_gate():
    """Fail the session if any shared-memory segment outlives the tests."""
    before = _psm_segments()
    yield
    if before is None:
        return
    leaked = _psm_segments() - before
    assert not leaked, (
        f"tests leaked shared-memory segments: {sorted(leaked)} — some "
        f"SharedState/SharedArray owner skipped its finally unlink"
    )

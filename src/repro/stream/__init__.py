"""Out-of-core streaming I/O: chunked edge pipelines for memory-bounded partitioning.

The seed reproduction simulated the paper's memory knob — every code
path still materialized the full edge list in RAM.  This package makes
the constraint real, for HEP *and* for every streaming baseline the
paper compares against:

* :mod:`repro.stream.reader` — chunked :class:`EdgeChunkSource` blocks
  from text/binary edge files, dataset names or in-memory graphs, with
  an optional background-thread :class:`PrefetchingEdgeSource` wrapper
  so decode overlaps scoring,
* :mod:`repro.stream.scan` — the shared counting and metrics passes
  (``O(n)`` state instead of the ``O(m)`` edge list; the metrics cover
  is bit-packed — ``k x n`` true bits — with a budget-aware
  column-blocked fallback),
* :mod:`repro.stream.parallel_scan` — the same two passes fanned out
  over worker processes (degrees summed, covers OR-ed), bit-identical
  to the sequential sweeps (``--metrics-workers N``),
* :mod:`repro.stream.spill` — the disk-backed h2h edge file NE++
  appends to instead of holding high/high edges in RAM (raw or
  zlib-framed on-disk format),
* :mod:`repro.stream.buffered` — a buffered scoring window for phase
  two (quality/throughput knob ``buffer_size``),
* :mod:`repro.stream.pipeline` — :class:`OutOfCoreHep`, chaining the
  pieces under an explicit byte budget from
  :mod:`repro.core.memory_model`,
* :mod:`repro.stream.driver` — :class:`StreamingPartitionerDriver`,
  running HDRF/Greedy/DBH/Grid/restreaming from chunked sources with
  bounded memory, bit-identical to their in-memory counterparts,
* :mod:`repro.stream.extsort` — an external merge sort producing
  degree-ordered edge *files* in bounded memory,
* :mod:`repro.stream.shard` — the sharded edge-file format (JSON
  manifest + N flat or zlib-framed shard files) with a concurrent
  :class:`ShardedEdgeSource` reader and a zero-copy
  :class:`MmapEdgeSource` for uncompressed single files,
* :mod:`repro.stream.workers` — multi-*worker* partitioning: ``N``
  OS processes each stream their shard assignment against a shared
  replica/load snapshot under the BSP schedule, bit-identical to the
  in-process :func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream`
  (``partition --workers N --out-of-core``).  By default the snapshot
  lives in one :mod:`multiprocessing.shared_memory` segment
  (:class:`~repro.parallel.shm.SharedState`) served to a warm
  :class:`PersistentWorkerPool`; ``--no-shared-memory`` restores the
  pickled-delta pipe protocol.
"""

from repro.stream.buffered import buffered_hdrf_stream, stream_chunks_through_hdrf
from repro.stream.driver import (
    STREAMING_ALGORITHMS,
    StreamedResult,
    StreamingAlgorithm,
    StreamingPartitionerDriver,
    make_streaming_algorithm,
)
from repro.stream.extsort import EXTSORT_ORDERS, ExtSortResult, external_sort_edges
from repro.stream.parallel_scan import (
    parallel_chunked_quality,
    parallel_scan_source,
    scan_quality,
    scan_stats,
    supports_parallel_scan,
)
from repro.stream.pipeline import OutOfCoreHep, OutOfCoreResult
from repro.stream.reader import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_PREFETCH_DEPTH,
    BinaryFileEdgeSource,
    EdgeChunk,
    EdgeChunkSource,
    InMemoryEdgeSource,
    PrefetchingEdgeSource,
    TextFileEdgeSource,
    open_edge_source,
    sniff_edge_format,
)
from repro.stream.scan import (
    PackedCover,
    SourceStats,
    chunked_quality,
    plan_cover_blocks,
    scan_source,
)
from repro.stream.shard import (
    MANIFEST_SUFFIX,
    MmapEdgeSource,
    ShardedEdgeSource,
    ShardManifest,
    ShardWriter,
    read_shard_manifest,
    write_sharded_edges,
)
from repro.stream.spill import SpillFile, read_spill_chunks, read_spill_header
from repro.stream.workers import (
    DEFAULT_WORKER_BATCH,
    EdgeSegment,
    MultiWorkerHep,
    MultiWorkerReport,
    MultiWorkerResult,
    MultiWorkerStreamingDriver,
    PersistentWorkerPool,
    StateService,
    WorkerPool,
    plan_worker_segments,
    run_bsp_shared,
    split_spill_round_robin,
)

__all__ = [
    "EdgeChunk",
    "EdgeChunkSource",
    "InMemoryEdgeSource",
    "BinaryFileEdgeSource",
    "TextFileEdgeSource",
    "PrefetchingEdgeSource",
    "open_edge_source",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_PREFETCH_DEPTH",
    "SourceStats",
    "scan_source",
    "chunked_quality",
    "PackedCover",
    "plan_cover_blocks",
    "parallel_scan_source",
    "parallel_chunked_quality",
    "scan_stats",
    "scan_quality",
    "supports_parallel_scan",
    "SpillFile",
    "read_spill_header",
    "read_spill_chunks",
    "EdgeSegment",
    "WorkerPool",
    "PersistentWorkerPool",
    "run_bsp_shared",
    "StateService",
    "MultiWorkerReport",
    "MultiWorkerResult",
    "MultiWorkerStreamingDriver",
    "MultiWorkerHep",
    "plan_worker_segments",
    "split_spill_round_robin",
    "DEFAULT_WORKER_BATCH",
    "buffered_hdrf_stream",
    "stream_chunks_through_hdrf",
    "OutOfCoreHep",
    "OutOfCoreResult",
    "StreamingAlgorithm",
    "StreamingPartitionerDriver",
    "StreamedResult",
    "STREAMING_ALGORITHMS",
    "make_streaming_algorithm",
    "EXTSORT_ORDERS",
    "ExtSortResult",
    "external_sort_edges",
    "sniff_edge_format",
    "ShardManifest",
    "ShardWriter",
    "ShardedEdgeSource",
    "MmapEdgeSource",
    "write_sharded_edges",
    "read_shard_manifest",
    "MANIFEST_SUFFIX",
]

"""Shared chunked passes: counting and quality metrics without a Graph.

Every out-of-core driver needs the same two sweeps over an
:class:`~repro.stream.reader.EdgeChunkSource`:

* a **counting pass** (:func:`scan_source`) establishing exact degrees,
  the vertex-universe size and the edge count — the ``O(n)`` state that
  replaces holding the ``O(m)`` edge list in memory, and
* a **metrics pass** (:func:`chunked_quality`) computing replication
  factor and edge balance from a finished per-edge assignment with one
  more chunked sweep (the cover matrix is ``k x n`` bits).

Both are used by HEP's pipeline (:mod:`repro.stream.pipeline`) and the
universal baseline driver (:mod:`repro.stream.driver`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stream.reader import EdgeChunkSource

__all__ = ["SourceStats", "scan_source", "chunked_quality"]


@dataclass(frozen=True)
class SourceStats:
    """What one counting pass over an edge source establishes."""

    num_vertices: int
    num_edges: int
    degrees: np.ndarray

    @property
    def mean_degree(self) -> float:
        """Mean degree ``2m / n`` (0.0 for an empty universe)."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices


def scan_source(source: EdgeChunkSource) -> SourceStats:
    """Counting pass: exact degrees, ``n`` and ``m`` in one chunked sweep."""
    degrees = np.zeros(0, dtype=np.int64)
    num_edges = 0
    for chunk in source:
        num_edges += chunk.num_edges
        if chunk.num_edges == 0:
            continue
        top = int(chunk.pairs.max()) + 1
        if top > degrees.size:
            grown = np.zeros(top, dtype=np.int64)
            grown[: degrees.size] = degrees
            degrees = grown
        degrees += np.bincount(
            chunk.pairs.ravel(), minlength=degrees.size
        ).astype(np.int64)
    n = degrees.size
    declared = source.num_vertices
    if declared is not None and declared > n:
        grown = np.zeros(declared, dtype=np.int64)
        grown[:n] = degrees
        degrees, n = grown, declared
    return SourceStats(num_vertices=n, num_edges=num_edges, degrees=degrees)


def chunked_quality(
    source: EdgeChunkSource,
    stats: SourceStats,
    k: int,
    parts: np.ndarray,
) -> tuple[float, float]:
    """Replication factor and edge balance from one more chunked sweep."""
    cover = np.zeros((k, stats.num_vertices), dtype=bool)
    for chunk in source:
        p = parts[chunk.eids]
        cover[p, chunk.pairs[:, 0]] = True
        cover[p, chunk.pairs[:, 1]] = True
    covered = int((stats.degrees > 0).sum())
    rf = float(cover.sum() / covered) if covered else 0.0
    sizes = np.bincount(parts[parts >= 0], minlength=k)
    balance = float(sizes.max() / (stats.num_edges / k))
    return rf, balance

"""Unit and property tests for repro._ds.bitset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._ds import Bitset
from repro.errors import ConfigurationError


class TestBitsetBasics:
    def test_empty_on_creation(self):
        s = Bitset(10)
        assert s.count() == 0
        assert len(s) == 0
        assert 0 not in s

    def test_add_and_contains(self):
        s = Bitset(10)
        s.add(3)
        assert 3 in s
        assert 2 not in s

    def test_add_idempotent(self):
        s = Bitset(10)
        s.add(3)
        s.add(3)
        assert s.count() == 1

    def test_discard(self):
        s = Bitset(10)
        s.add(4)
        s.discard(4)
        assert 4 not in s

    def test_discard_absent_is_noop(self):
        s = Bitset(10)
        s.discard(4)
        s.discard(-1)
        s.discard(99)
        assert s.count() == 0

    def test_add_out_of_range_raises(self):
        s = Bitset(10)
        with pytest.raises(IndexError):
            s.add(10)
        with pytest.raises(IndexError):
            s.add(-1)

    def test_negative_size_raises(self):
        with pytest.raises(ConfigurationError):
            Bitset(-1)

    def test_zero_size_universe(self):
        s = Bitset(0)
        assert s.count() == 0
        assert 0 not in s

    def test_init_iterable(self):
        s = Bitset(10, init=[1, 3, 5])
        assert sorted(s) == [1, 3, 5]

    def test_add_many(self):
        s = Bitset(10)
        s.add_many(np.array([2, 4, 6]))
        assert sorted(s) == [2, 4, 6]

    def test_add_many_empty(self):
        s = Bitset(10)
        s.add_many([])
        assert s.count() == 0

    def test_add_many_out_of_range(self):
        s = Bitset(10)
        with pytest.raises(IndexError):
            s.add_many([5, 11])

    def test_to_indices_sorted(self):
        s = Bitset(10, init=[7, 1, 4])
        assert s.to_indices().tolist() == [1, 4, 7]

    def test_iter(self):
        s = Bitset(5, init=[0, 2])
        assert list(s) == [0, 2]

    def test_clear(self):
        s = Bitset(5, init=[0, 2])
        s.clear()
        assert s.count() == 0

    def test_mask_is_shared(self):
        s = Bitset(5)
        s.mask[3] = True
        assert 3 in s

    def test_from_mask(self):
        mask = np.array([True, False, True])
        s = Bitset.from_mask(mask)
        assert s.size == 3
        assert sorted(s) == [0, 2]

    def test_from_mask_rejects_non_bool(self):
        with pytest.raises(ConfigurationError):
            Bitset.from_mask(np.array([1, 0, 1]))

    def test_nbytes_bitlevel(self):
        assert Bitset(0).nbytes_bitlevel() == 0
        assert Bitset(1).nbytes_bitlevel() == 1
        assert Bitset(8).nbytes_bitlevel() == 1
        assert Bitset(9).nbytes_bitlevel() == 2


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "discard"]), st.integers(0, 63)),
        max_size=200,
    )
)
def test_bitset_matches_python_set(ops):
    """Property: a Bitset behaves exactly like a built-in set."""
    bitset = Bitset(64)
    model = set()
    for op, value in ops:
        if op == "add":
            bitset.add(value)
            model.add(value)
        else:
            bitset.discard(value)
            model.discard(value)
        assert (value in bitset) == (value in model)
    assert bitset.count() == len(model)
    assert sorted(bitset) == sorted(model)


class TestPackedBitset:
    def test_empty_on_creation(self):
        from repro._ds import PackedBitset

        s = PackedBitset(12)
        assert s.count() == 0
        assert len(s) == 0
        assert 0 not in s
        assert s.nbytes == 2  # ceil(12 / 8)

    def test_add_and_contains(self):
        from repro._ds import PackedBitset

        s = PackedBitset(12)
        s.add(3)
        s.add(11)
        assert 3 in s and 11 in s
        assert 4 not in s
        assert -1 not in s and 12 not in s
        assert s.count() == 2

    def test_add_out_of_universe_raises(self):
        from repro._ds import PackedBitset

        s = PackedBitset(8)
        with pytest.raises(IndexError):
            s.add(8)
        with pytest.raises(IndexError):
            s.add_many([0, 9])

    def test_add_many_duplicates_and_shared_bytes(self):
        from repro._ds import PackedBitset

        # ids sharing a byte with different bit positions must all land.
        s = PackedBitset(32)
        s.add_many(np.array([0, 1, 2, 7, 7, 8, 15, 16, 31]))
        assert sorted(s) == [0, 1, 2, 7, 8, 15, 16, 31]

    def test_to_indices_and_bitset_round_trip(self):
        from repro._ds import Bitset, PackedBitset

        dense = Bitset(20, init=[1, 9, 19])
        packed = dense.to_packed()
        assert packed.nbytes == dense.nbytes_bitlevel()
        assert np.array_equal(packed.to_indices(), dense.to_indices())
        back = packed.to_bitset()
        assert sorted(back) == sorted(dense)

    def test_union_update(self):
        from repro._ds import PackedBitset

        a = PackedBitset(16)
        b = PackedBitset(16)
        a.add_many([0, 5])
        b.add_many([5, 13])
        a.union_update(b)
        assert sorted(a) == [0, 5, 13]
        with pytest.raises(ConfigurationError):
            a.union_update(PackedBitset(32))

    def test_words_validation(self):
        from repro._ds import PackedBitset

        with pytest.raises(ConfigurationError):
            PackedBitset(-1)
        with pytest.raises(ConfigurationError):
            PackedBitset(16, words=np.zeros(1, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            PackedBitset(16, words=np.zeros(2, dtype=np.int64))

    def test_words_are_views(self):
        from repro._ds import PackedBitset

        words = np.zeros(4, dtype=np.uint8)
        s = PackedBitset(32, words=words)
        s.add(9)
        assert words[1] == 2  # bit 1 of byte 1 (little bit order)

    def test_clear(self):
        from repro._ds import PackedBitset

        s = PackedBitset(10)
        s.add_many([1, 2, 3])
        s.clear()
        assert s.count() == 0


@given(
    ids=st.lists(st.integers(0, 63), max_size=200),
)
def test_packed_bitset_matches_bitset(ids):
    """Property: PackedBitset tracks Bitset exactly at 1/8th the bytes."""
    from repro._ds import Bitset, PackedBitset

    dense = Bitset(64)
    packed = PackedBitset(64)
    for value in ids:
        dense.add(value)
    packed.add_many(np.asarray(ids, dtype=np.int64))
    assert packed.count() == dense.count()
    assert np.array_equal(packed.to_indices(), dense.to_indices())
    assert packed.nbytes == 8

"""Partitioning as a service: asyncio job queue over the runtime layer.

``repro.serve`` turns :func:`~repro.runtime.api.run_job` into a
long-lived, multi-client service (``python -m repro serve``):

* **submit** — POST an edge-file/manifest path + algo + ``k`` (+ any
  spec knob) and get a job id derived from the spec's content hash and
  the input digest; identical in-flight submits deduplicate onto one
  execution, and completed results are served from the content-
  addressed :class:`~repro.runtime.store.ArtifactStore` without
  re-partitioning,
* **watch** — progress events derived live from :mod:`repro.obs` trace
  spans stream over NDJSON while the job runs,
* **read** — ``edge → part`` / ``vertex → parts`` lookups and quality
  summaries answer at interactive latency from an LRU of attached
  artifacts.

The package is stdlib-only: :mod:`repro.serve.app` carries a minimal
ASGI-style application plus an :mod:`asyncio` HTTP server, so no web
framework is required (but the app object speaks ASGI 3 if one is
around).  See ``docs/serve.md`` for the walkthrough.
"""

from __future__ import annotations

from repro.serve.app import App, Request, Response, create_app, run_app
from repro.serve.artifacts import ArtifactCache, AttachedArtifact
from repro.serve.events import EventLog
from repro.serve.queue import (
    Job,
    JobManager,
    JobState,
    QueueFullError,
    SubmitError,
)

__all__ = [
    "App",
    "ArtifactCache",
    "AttachedArtifact",
    "EventLog",
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "Request",
    "Response",
    "SubmitError",
    "create_app",
    "run_app",
]

"""Shared chunked passes: counting and quality metrics without a Graph.

Every out-of-core driver needs the same two sweeps over an
:class:`~repro.stream.reader.EdgeChunkSource`:

* a **counting pass** (:func:`scan_source`) establishing exact degrees,
  the vertex-universe size and the edge count — the ``O(n)`` state that
  replaces holding the ``O(m)`` edge list in memory, and
* a **metrics pass** (:func:`chunked_quality`) computing replication
  factor and edge balance from a finished per-edge assignment with one
  more chunked sweep.

The metrics pass tracks one vertex cover per partition as a genuine
bit-packed set (:class:`~repro._ds.bitset.PackedBitset` rows inside
:class:`PackedCover`) — ``k x n`` *bits*, ``k * ceil(n / 8)`` bytes,
8x smaller than the boolean matrix it replaced.  When even that exceeds
a byte budget, :func:`plan_cover_blocks` falls back to column-blocked
sweeps: the vertex universe is cut into ranges whose per-range cover
fits the budget and the source is re-read once per range (set-bit
totals are exact either way, so the reported metrics are bit-identical).

Both passes are pure order-independent reductions (degree counts are
summed, cover bits are OR-ed), which is what makes the worker-parallel
siblings in :mod:`repro.stream.parallel_scan` bit-identical to these
sequential references.

Used by HEP's pipeline (:mod:`repro.stream.pipeline`), the universal
baseline driver (:mod:`repro.stream.driver`), the multi-worker drivers
(:mod:`repro.stream.workers`) and the external sort
(:mod:`repro.stream.extsort`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._ds.bitset import PackedBitset
from repro.errors import ConfigurationError, GraphFormatError
from repro.stream.reader import EdgeChunkSource

__all__ = [
    "SourceStats",
    "scan_source",
    "chunked_quality",
    "accumulate_degrees",
    "finalize_source_stats",
    "PackedCover",
    "plan_cover_blocks",
    "cover_nbytes",
    "MAX_COVER_SWEEPS",
]


@dataclass(frozen=True)
class SourceStats:
    """What one counting pass over an edge source establishes."""

    num_vertices: int
    num_edges: int
    degrees: np.ndarray

    @property
    def mean_degree(self) -> float:
        """Mean degree ``2m / n`` (0.0 for an empty universe)."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices


def accumulate_degrees(degrees: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Add one chunk's endpoint counts into a growable degree array.

    Returns the (possibly reallocated) int64 degree array — the one
    chunk-step of the counting pass, shared verbatim by the sequential
    sweep and each parallel scan worker so their partial sums merge
    bit-identically.
    """
    if pairs.shape[0] == 0:
        return degrees
    top = int(pairs.max()) + 1
    if top > degrees.size:
        grown = np.zeros(top, dtype=np.int64)
        grown[: degrees.size] = degrees
        degrees = grown
    degrees += np.bincount(
        pairs.ravel(), minlength=degrees.size
    ).astype(np.int64)
    return degrees


def finalize_source_stats(
    degrees: np.ndarray, num_edges: int, declared: int | None, what: str
) -> SourceStats:
    """Reconcile observed degrees with a source's declared universe.

    A declared ``num_vertices`` larger than the observed ``max id + 1``
    grows the degree array (trailing isolated vertices are legal and
    keep the in-memory mean degree).  A declared universe *smaller* than
    an observed id is a corrupt source — some edge references a vertex
    the source claims not to have — and raises
    :class:`~repro.errors.GraphFormatError` instead of being silently
    ignored.
    """
    n = degrees.size
    if declared is not None and declared < n:
        raise GraphFormatError(
            f"{what}: source declares num_vertices={declared} but the "
            f"edge stream references vertex id {n - 1}; the declared "
            f"universe is too small for its own edges"
        )
    if declared is not None and declared > n:
        grown = np.zeros(declared, dtype=np.int64)
        grown[:n] = degrees
        degrees, n = grown, declared
    return SourceStats(num_vertices=n, num_edges=num_edges, degrees=degrees)


def scan_source(source: EdgeChunkSource) -> SourceStats:
    """Counting pass: exact degrees, ``n`` and ``m`` in one chunked sweep."""
    degrees = np.zeros(0, dtype=np.int64)
    num_edges = 0
    for chunk in source:
        num_edges += chunk.num_edges
        degrees = accumulate_degrees(degrees, chunk.pairs)
    return finalize_source_stats(
        degrees, num_edges, source.num_vertices, source.describe()
    )


def cover_nbytes(num_vertices: int, k: int) -> int:
    """Bytes one full bit-packed ``k x n`` cover occupies."""
    return k * ((num_vertices + 7) // 8)


#: most column blocks (= extra metrics sweeps) a budget may schedule; a
#: budget so small it would plan more is honored best-effort instead of
#: silently turning the metrics pass into thousands of re-reads
MAX_COVER_SWEEPS = 256


def plan_cover_blocks(
    num_vertices: int, k: int, memory_budget: int | None = None
) -> list[tuple[int, int]]:
    """Vertex column blocks ``[lo, hi)`` whose packed cover fits a budget.

    With no budget — or when the full ``k * ceil(n / 8)``-byte cover
    already fits — the plan is one block spanning the whole universe
    (one metrics sweep).  Otherwise the universe is cut into equal
    byte-aligned ranges of at most ``(budget // k) * 8`` vertices, each
    costing one extra sweep over the source; per-block set-bit counts
    sum to exactly the full cover's, so the metrics stay bit-identical.

    The plan never exceeds :data:`MAX_COVER_SWEEPS` blocks: every extra
    block is a full re-read of the edge source, so a budget pathological
    enough to ask for more (e.g. a few KiB against a 10M-vertex, k=128
    cover) gets the smallest block size that stays within the sweep cap
    — bounded I/O at a documented, slight budget overshoot — rather
    than an unannounced multi-hour re-read schedule.
    """
    if k < 1:
        raise ConfigurationError(f"cover needs k >= 1, got {k}")
    if num_vertices == 0:
        return []
    if memory_budget is None or cover_nbytes(num_vertices, k) <= memory_budget:
        return [(0, num_vertices)]
    block = max(8, (memory_budget // k) * 8)
    min_block = -(-num_vertices // MAX_COVER_SWEEPS)
    min_block = ((min_block + 7) // 8) * 8  # byte-aligned columns
    block = max(block, min_block)
    return [
        (lo, min(lo + block, num_vertices))
        for lo in range(0, num_vertices, block)
    ]


class PackedCover:
    """Per-partition vertex covers over one vertex range, as true bits.

    One :class:`~repro._ds.bitset.PackedBitset` row per partition over
    the universe ``[lo, hi)`` — ``k * ceil((hi - lo) / 8)`` bytes, the
    structure both the sequential metrics pass and each parallel scan
    worker accumulate into.  Merging partial covers is a plain word-wise
    OR (:meth:`union_update`), so the merge order never matters.
    """

    __slots__ = ("k", "lo", "hi", "words")

    def __init__(self, k: int, lo: int, hi: int) -> None:
        if k < 1:
            raise ConfigurationError(f"cover needs k >= 1, got {k}")
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"bad vertex range [{lo}, {hi})")
        self.k = k
        self.lo = lo
        self.hi = hi
        self.words = np.zeros((k, (hi - lo + 7) // 8), dtype=np.uint8)

    @property
    def nbytes(self) -> int:
        """Actual packed footprint of all ``k`` covers."""
        return self.words.nbytes

    def part(self, p: int) -> PackedBitset:
        """Partition ``p``'s cover as a PackedBitset *view* (no copy)."""
        if not 0 <= p < self.k:
            raise IndexError(f"partition {p} outside [0, {self.k})")
        return PackedBitset(self.hi - self.lo, words=self.words[p])

    def mark_assignment(
        self, parts: np.ndarray, pairs: np.ndarray, eids: np.ndarray
    ) -> None:
        """OR one chunk's endpoint coverage into the per-part covers.

        ``UNASSIGNED`` (negative) edges are masked out — a partial
        assignment must not wrap to partition ``k - 1`` through negative
        indexing.  Endpoints outside ``[lo, hi)`` are ignored (they
        belong to another column block).
        """
        ps = np.asarray(parts[eids], dtype=np.int64)
        assigned = ps >= 0
        nbytes = self.words.shape[1]
        flat = self.words.reshape(-1)
        for col in (0, 1):
            vs = np.asarray(pairs[:, col], dtype=np.int64)
            sel = assigned & (vs >= self.lo) & (vs < self.hi)
            if not sel.any():
                continue
            rel = vs[sel] - self.lo
            lin = ps[sel] * nbytes + (rel >> 3)
            bits = rel & 7
            # Group by bit position: every scatter in one group ORs the
            # same mask, so duplicate byte indices are safe under
            # buffered fancy-index assignment (no slow np.bitwise_or.at).
            for b in range(8):
                hit = lin[bits == b]
                if hit.size:
                    flat[hit] |= np.uint8(1 << b)

    def union_update(self, words: "np.ndarray | bytes | memoryview") -> None:
        """OR another cover's packed words (same ``k`` and range) in."""
        other = np.frombuffer(words, dtype=np.uint8).reshape(self.words.shape)
        np.bitwise_or(self.words, other, out=self.words)

    def count(self) -> int:
        """Total set bits — the replica count this cover witnesses."""
        return sum(self.part(p).count() for p in range(self.k))


def chunked_quality(
    source: EdgeChunkSource,
    stats: SourceStats,
    k: int,
    parts: np.ndarray,
    memory_budget: int | None = None,
) -> tuple[float, float]:
    """Replication factor and edge balance from chunked metrics sweeps.

    The vertex covers are bit-packed (``k x n`` bits via
    :class:`PackedCover`); ``memory_budget`` bounds their bytes by
    falling back to column-blocked sweeps (:func:`plan_cover_blocks`).
    Unassigned edges (``parts`` entry < 0) contribute to neither metric;
    an empty source reports ``(0.0, 1.0)`` — nothing is replicated and
    zero edges are perfectly balanced.
    """
    sizes = np.bincount(parts[parts >= 0], minlength=k)
    if stats.num_edges == 0:
        return 0.0, 1.0
    replicas = 0
    for lo, hi in plan_cover_blocks(stats.num_vertices, k, memory_budget):
        cover = PackedCover(k, lo, hi)
        for chunk in source:
            cover.mark_assignment(parts, chunk.pairs, chunk.eids)
        replicas += cover.count()
    covered = int((stats.degrees > 0).sum())
    rf = float(replicas / covered) if covered else 0.0
    balance = float(sizes.max() / (stats.num_edges / k))
    return rf, balance

"""Shared state of stateful streaming partitioning (Algorithm 4's inputs).

The scoring functions of HDRF/Greedy/ADWISE need three pieces of state:

* which partitions each vertex is currently replicated on,
* the load (edge count) of every partition,
* vertex degrees — either *exact* (known upfront) or *partial* (counted
  while streaming, as in the original HDRF paper).

HEP's key trick (Section 3.3, "informed streaming") is to pre-populate
this state from the NE++ phase: the secondary-set bitsets become the
replica matrix, the partition loads carry over, and exact degrees are
available from graph building.  :meth:`StreamingState.informed` is that
hand-over point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph

__all__ = ["StreamingState"]


class StreamingState:
    """Mutable replica/load/degree state shared by scoring functions."""

    def __init__(
        self,
        num_vertices: int,
        k: int,
        capacity: int,
        exact_degrees: np.ndarray | None = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.num_vertices = num_vertices
        self.k = k
        self.capacity = capacity
        #: replicas[p, v] — vertex v is replicated on partition p
        self.replicas = np.zeros((k, num_vertices), dtype=bool)
        #: loads[p] — number of edges currently assigned to p
        self.loads = np.zeros(k, dtype=np.int64)
        if exact_degrees is not None:
            self.degrees = np.asarray(exact_degrees, dtype=np.int64).copy()
            self._partial = False
        else:
            self.degrees = np.zeros(num_vertices, dtype=np.int64)
            self._partial = True

    # -- constructors ----------------------------------------------------------

    @classmethod
    def fresh(
        cls,
        graph: Graph,
        k: int,
        capacity: int,
        use_exact_degrees: bool = False,
    ) -> "StreamingState":
        """Empty state for standalone streaming over ``graph``.

        With ``use_exact_degrees=False`` (the HDRF paper's setting) degrees
        are *partial*: they count only the edges seen so far in the stream.
        """
        return cls(
            graph.num_vertices,
            k,
            capacity,
            exact_degrees=graph.degrees if use_exact_degrees else None,
        )

    @classmethod
    def informed(
        cls,
        graph: Graph,
        k: int,
        capacity: int,
        replicas: np.ndarray,
        loads: np.ndarray,
    ) -> "StreamingState":
        """State seeded from an in-memory phase (HEP Section 3.3).

        ``replicas`` is the ``(k, n)`` secondary-set matrix produced by
        NE++ ("a vertex is replicated in partition p_i exactly if it is in
        S_i"); ``loads`` are the per-partition edge counts after phase one.
        """
        return cls.informed_arrays(
            graph.num_vertices, graph.degrees, k, capacity, replicas, loads
        )

    @classmethod
    def informed_arrays(
        cls,
        num_vertices: int,
        degrees: np.ndarray,
        k: int,
        capacity: int,
        replicas: np.ndarray,
        loads: np.ndarray,
    ) -> "StreamingState":
        """:meth:`informed` from bare arrays — no :class:`Graph` required.

        The out-of-core pipeline (:mod:`repro.stream`) knows the exact
        degrees from its counting pass but never holds the full edge list,
        so the hand-over is expressed in terms of arrays alone.
        """
        state = cls(num_vertices, k, capacity, exact_degrees=degrees)
        replicas = np.asarray(replicas, dtype=bool)
        if replicas.shape != (k, num_vertices):
            raise ConfigurationError("replica matrix must be (k, n)")
        state.replicas = replicas.copy()
        loads = np.asarray(loads, dtype=np.int64)
        if loads.shape != (k,):
            raise ConfigurationError("loads must be (k,)")
        state.loads = loads.copy()
        return state

    # -- stream operations -------------------------------------------------------

    def observe_edge(self, u: int, v: int) -> None:
        """Account for an arriving edge in partial-degree mode (HDRF
        increments partial degrees *before* scoring the edge)."""
        if self._partial:
            self.degrees[u] += 1
            self.degrees[v] += 1

    def open_mask(self) -> np.ndarray:
        """Boolean mask of partitions that still have room."""
        return self.loads < self.capacity

    def place(self, u: int, v: int, p: int) -> None:
        """Record the assignment of edge ``(u, v)`` to partition ``p``."""
        self.replicas[p, u] = True
        self.replicas[p, v] = True
        self.loads[p] += 1

    # -- queries -------------------------------------------------------------------

    def replica_counts(self) -> np.ndarray:
        """Number of partitions each vertex is replicated on."""
        return self.replicas.sum(axis=0)

    def total_replicas(self) -> int:
        """Total replica count over all partitions (rf numerator)."""
        return int(self.replicas.sum())

    def min_max_load(self) -> tuple[int, int]:
        """Smallest and largest current partition load."""
        return int(self.loads.min()), int(self.loads.max())

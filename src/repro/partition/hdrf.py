"""HDRF: High-Degree Replicated First streaming partitioning.

Petroni et al. (CIKM'15); the strongest stateful streaming baseline in
the paper and the scoring function HEP uses for its streaming phase.
The partitioner passes once over the edge stream and sends each edge to
the partition with the highest :func:`~repro.partition.scoring.hdrf_scores`
value — replicating high-degree vertices first, since they are likely to
be replicated anyway.

Two degree modes:

* ``exact_degrees=False`` — the original setting: degrees are *partial*
  counts accumulated while streaming.
* ``exact_degrees=True`` — degrees known upfront (HEP's streaming phase
  has them from graph building).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.scoring import hdrf_scores
from repro.partition.state import StreamingState

__all__ = ["HdrfPartitioner", "hdrf_stream"]


def hdrf_stream(
    state: StreamingState,
    edges: np.ndarray,
    eids: np.ndarray,
    parts_out: np.ndarray,
    lam: float = 1.1,
    eps: float = 1.0,
) -> None:
    """Stream ``edges`` through HDRF scoring, writing assignments in place.

    This is Algorithm 4 of the paper.  It mutates ``state`` and fills
    ``parts_out[eids[i]]`` for every streamed edge, which lets HEP run it
    over just the h2h edge file with pre-seeded (informed) state.
    """
    observe = state.observe_edge
    place = state.place
    for i in range(edges.shape[0]):
        u = int(edges[i, 0])
        v = int(edges[i, 1])
        observe(u, v)
        scores = hdrf_scores(state, u, v, lam=lam, eps=eps)
        p = int(np.argmax(scores))
        if scores[p] == -np.inf:
            raise CapacityError(
                "HDRF: all partitions at capacity "
                f"(capacity={state.capacity}, loads={state.loads.tolist()})"
            )
        place(u, v, p)
        parts_out[eids[i]] = p


class HdrfPartitioner(Partitioner):
    """Standalone HDRF baseline (paper Appendix A: ``lambda = 1.1``)."""

    def __init__(
        self,
        lam: float = 1.1,
        eps: float = 1.0,
        alpha: float = 1.0,
        exact_degrees: bool = False,
        shuffle: bool = False,
        seed: int = 0,
    ) -> None:
        self.lam = lam
        self.eps = eps
        self.alpha = alpha
        self.exact_degrees = exact_degrees
        self.shuffle = shuffle
        self.seed = seed
        self.name = "HDRF"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Stream every edge through HDRF scoring (Algorithm 4)."""
        self._require_k(graph, k)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        state = StreamingState.fresh(
            graph, k, capacity, use_exact_degrees=self.exact_degrees
        )
        assignment = PartitionAssignment.empty(graph, k)
        order = np.arange(graph.num_edges)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(order)
            edges = graph.edges[order]
        else:
            edges = graph.edges  # natural order: no O(m) copy
        hdrf_stream(
            state,
            edges,
            order,
            assignment.parts,
            lam=self.lam,
            eps=self.eps,
        )
        return assignment

"""Analytic memory models (paper Section 4.2 and Figure 8/9 memory panels).

The paper reports maximum resident set size of C++ processes.  A pure
Python reproduction cannot measure that meaningfully (interpreter object
overhead would dominate), but Section 4.2 *derives* HEP's footprint as a
closed formula over the degree distribution — so we evaluate that
formula, and analogous formulas for every baseline, at the paper's id
width (4-byte vertex ids).  These are the numbers the memory-overhead
panels compare; ``tracemalloc`` peaks are available separately through
the experiment harness as a secondary sanity signal.

HEP (Section 4.2, verbatim):

    sum_{v in V_l} d_csr(v) * b          -- pruned column array
    + 2 |V| b                            -- out/in index arrays
    + 2 |V| b                            -- out/in size fields
    + |V| (k+1) / 8                      -- k secondary bitsets + core bitset
    + 2 |V| b                            -- min-heap + position lookup
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph
from repro.graph.pruned import high_degree_mask

__all__ = [
    "pruned_column_entries",
    "hep_memory_bytes",
    "hep_memory_bytes_from_entries",
    "ne_memory_bytes",
    "ne_plus_plus_memory_bytes",
    "sne_memory_bytes",
    "dne_memory_bytes",
    "metis_memory_bytes",
    "streaming_memory_bytes",
    "stateless_memory_bytes",
    "memory_model_for",
]


def pruned_column_entries(graph: Graph, tau: float) -> int:
    """Number of column-array entries after pruning at ``tau``.

    Each low/low edge contributes two entries, each low/high edge one,
    each high/high edge zero — computed from the degree distribution
    without building the CSR (this is the cheap pass Section 4.4's
    precomputation relies on).
    """
    high = high_degree_mask(graph, tau)
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    hu, hv = high[u], high[v]
    low_low = int((~hu & ~hv).sum())
    mixed = int((hu ^ hv).sum())
    return 2 * low_low + mixed


def hep_memory_bytes(graph: Graph, tau: float, k: int, id_bytes: int = 4) -> int:
    """Section 4.2's total for HEP at threshold ``tau``."""
    return hep_memory_bytes_from_entries(
        pruned_column_entries(graph, tau), graph.num_vertices, k, id_bytes
    )


def hep_memory_bytes_from_entries(
    column_entries: int, num_vertices: int, k: int, id_bytes: int = 4
) -> int:
    """Section 4.2's total given a precomputed column-entry count.

    The out-of-core pipeline counts column entries chunk by chunk (it
    never holds the edge array needed by :func:`pruned_column_entries`)
    and evaluates the same closed formula through this entry point.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    n = num_vertices
    column = column_entries * id_bytes
    vertex_arrays = 6 * n * id_bytes          # index x2, size x2, heap x2
    bitsets = n * (k + 1) // 8 + 1
    return column + vertex_arrays + bitsets


def ne_plus_plus_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """NE++ without pruning: full column array, same vertex structures."""
    n = graph.num_vertices
    column = 2 * graph.num_edges * id_bytes
    return column + 6 * n * id_bytes + n * (k + 1) // 8 + 1


def ne_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """Reference NE: full CSR **plus** the eager auxiliary edge list.

    The reference implementation keeps an unsorted edge list to track
    which edges are still valid (Section 3.2.2 calls this out as the
    memory NE++'s lazy removal saves), roughly one ``(u, v)`` pair plus a
    validity flag per edge.
    """
    m = graph.num_edges
    aux_edge_list = 2 * m * id_bytes + m  # pairs + 1-byte flags
    return ne_plus_plus_memory_bytes(graph, k, id_bytes) + aux_edge_list


def sne_memory_bytes(
    graph: Graph, k: int, sample_factor: float = 2.0, id_bytes: int = 4
) -> int:
    """SNE: bounded in-memory sample of ``sample_factor * |E| / k`` edges
    (adjacency form) plus per-vertex bookkeeping."""
    n = graph.num_vertices
    sample_edges = int(sample_factor * graph.num_edges / k)
    return 2 * sample_edges * id_bytes + 4 * n * id_bytes + n * (k + 1) // 8 + 1


def dne_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """DNE: one process per partition, each holding graph shards plus
    exchange buffers — measured at roughly an order of magnitude above
    HEP in the paper.  Modeled as two full graph copies (CSR + edge
    exchange buffers) plus per-process frontier state."""
    n = graph.num_vertices
    m = graph.num_edges
    per_process_state = 2 * n * id_bytes  # frontier + ownership per process
    return 4 * m * id_bytes + k * per_process_state + 2 * n * id_bytes


def metis_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """METIS-family multilevel: the coarsening hierarchy retains the
    finest graph plus a geometric series of coarser ones (~2x finest in
    total) and per-level matching/weight/partition workspace."""
    n = graph.num_vertices
    m = graph.num_edges
    hierarchy = 3 * (2 * m * id_bytes)       # finest + coarser levels
    per_level_arrays = 8 * n * id_bytes      # match/map/weights/boundary
    return hierarchy + per_level_arrays


def streaming_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """Stateful streaming (HDRF/Greedy/ADWISE): replica bitsets, partial
    degrees and loads — no graph storage at all."""
    n = graph.num_vertices
    return n * k // 8 + 1 + n * id_bytes + k * 8


def stateless_memory_bytes(graph: Graph, k: int, id_bytes: int = 4) -> int:
    """Stateless streaming (DBH/Grid): degree array plus loads."""
    return graph.num_vertices * id_bytes + k * 8


def memory_model_for(
    partitioner_name: str, graph: Graph, k: int, id_bytes: int = 4
) -> int:
    """Dispatch a partitioner's table name to its memory model.

    HEP entries encode their threshold: ``HEP-10`` -> ``tau = 10``.
    """
    name = partitioner_name.upper()
    if name.startswith("HEP"):
        tau = float("inf")
        if "-" in name:
            suffix = name.split("-", 1)[1]
            tau = float("inf") if suffix == "INF" else float(suffix)
        if np.isinf(tau):
            return ne_plus_plus_memory_bytes(graph, k, id_bytes)
        return hep_memory_bytes(graph, tau, k, id_bytes)
    dispatch = {
        "NE": ne_memory_bytes,
        "NE++": ne_plus_plus_memory_bytes,
        "SNE": sne_memory_bytes,
        "DNE": dne_memory_bytes,
        "METIS": metis_memory_bytes,
        "HDRF": streaming_memory_bytes,
        "GREEDY": streaming_memory_bytes,
        "ADWISE": streaming_memory_bytes,
        "DBH": stateless_memory_bytes,
        "GRID": stateless_memory_bytes,
        "RANDOM": stateless_memory_bytes,
    }
    if name not in dispatch:
        raise ConfigurationError(f"no memory model for partitioner {partitioner_name!r}")
    return dispatch[name](graph, k, id_bytes)

"""HEP: the Hybrid Edge Partitioner (the paper's system, Section 3).

HEP chains the two phases this library implements:

1. **NE++** partitions every edge incident to at least one low-degree
   vertex in memory, on the pruned CSR (:mod:`repro.core.ne_plus_plus`).
2. **Informed stateful streaming** partitions the high/high edge file
   with HDRF scoring (Algorithm 4), with its state — replica sets,
   exact degrees, partition loads — seeded from phase one
   (:meth:`repro.partition.state.StreamingState.informed`).  This is what
   overcomes the "uninformed assignment problem" of pure streaming.

The degree threshold factor ``tau`` is the memory knob: the paper's
configurations HEP-100, HEP-10 and HEP-1 are ``HepPartitioner(tau=...)``
with 100, 10 and 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ne_plus_plus import NePlusPlusResult, run_ne_plus_plus
from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.hdrf import hdrf_stream
from repro.partition.random_stream import random_stream
from repro.partition.state import StreamingState

__all__ = ["HepPartitioner", "HepPhaseBreakdown"]


@dataclass(frozen=True)
class HepPhaseBreakdown:
    """Where the edges went: diagnostics for Figure 9's ratio panels."""

    num_edges: int
    num_h2h_edges: int
    num_inmemory_edges: int
    cleanup_removed_fraction: float
    spilled_edges: int

    @property
    def h2h_fraction(self) -> float:
        return self.num_h2h_edges / self.num_edges if self.num_edges else 0.0

    @property
    def rest_fraction(self) -> float:
        return 1.0 - self.h2h_fraction


class HepPartitioner(Partitioner):
    """Hybrid Edge Partitioner.

    Parameters
    ----------
    tau:
        Degree threshold factor separating ``V_h`` from ``V_l``.  Smaller
        means more streaming and less memory.  ``inf`` degenerates to
        pure NE++.
    alpha:
        Balance slack for the *streaming* phase (the in-memory phase uses
        the paper's adapted bound ``|E \\ E_h2h| / k``).
    lam, eps:
        HDRF scoring parameters for phase two.
    streaming:
        ``"hdrf"`` (the paper's choice), ``"greedy"`` (the alternative
        Section 3.3 mentions: "the streaming phase of HEP could also
        employ other stateful streaming edge partitioning algorithms,
        such as Greedy"), or ``"random"`` — the latter turns HEP into
        the NE++-side half of Section 5.4's ablation.
    informed:
        With ``False``, phase two starts from *empty* streaming state
        instead of the NE++ hand-over — the ablation isolating the value
        of Section 3.3's informed streaming (loads still carry over so
        the balance constraint stays sound).
    """

    def __init__(
        self,
        tau: float = 10.0,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
        streaming: str = "hdrf",
        informed: bool = True,
        seed: int = 0,
    ) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if streaming not in ("hdrf", "greedy", "random"):
            raise ConfigurationError(f"unknown streaming strategy {streaming!r}")
        self.tau = tau
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.streaming = streaming
        self.informed = informed
        self.seed = seed
        self.last_breakdown: HepPhaseBreakdown | None = None
        label = "inf" if np.isinf(tau) else f"{tau:g}"
        self.name = f"HEP-{label}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        self._require_k(graph, k)
        phase_one = run_ne_plus_plus(graph, k, tau=self.tau)
        parts = self._stream_h2h(graph, k, phase_one)
        self.last_breakdown = HepPhaseBreakdown(
            num_edges=graph.num_edges,
            num_h2h_edges=phase_one.h2h.num_edges,
            num_inmemory_edges=phase_one.num_inmemory_edges,
            cleanup_removed_fraction=phase_one.stats.cleanup_removed_fraction,
            spilled_edges=phase_one.stats.spilled_edges,
        )
        return PartitionAssignment(graph, k, parts)

    def _stream_h2h(
        self, graph: Graph, k: int, phase_one: NePlusPlusResult
    ) -> np.ndarray:
        """Phase two: stream the h2h edge file through informed scoring."""
        parts = phase_one.parts
        h2h = phase_one.h2h
        if h2h.num_edges == 0:
            return parts
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        # Loads carried over from phase one may already be at the overall
        # bound on pathological inputs; grow the bound just enough to keep
        # the stream feasible (reported alpha will expose it).
        headroom = int(phase_one.loads.max())
        capacity = max(capacity, headroom + 1)
        if self.streaming == "hdrf":
            if self.informed:
                state = StreamingState.informed(
                    graph,
                    k,
                    capacity,
                    replicas=phase_one.secondary,
                    loads=phase_one.loads,
                )
            else:
                # Uninformed ablation: forget the replica state but keep
                # the loads (the capacity constraint must see them).
                state = StreamingState.informed(
                    graph,
                    k,
                    capacity,
                    replicas=np.zeros_like(phase_one.secondary),
                    loads=phase_one.loads,
                )
            hdrf_stream(
                state, h2h.pairs, h2h.eids, parts, lam=self.lam, eps=self.eps
            )
        elif self.streaming == "greedy":
            state = StreamingState.informed(
                graph, k, capacity,
                replicas=phase_one.secondary,
                loads=phase_one.loads,
            )
            self._greedy_stream(graph, state, h2h, parts)
        else:
            random_stream(
                h2h.num_edges,
                h2h.eids,
                parts,
                k,
                capacity,
                loads=phase_one.loads.copy(),
                seed=self.seed,
            )
        return parts

    @staticmethod
    def _greedy_stream(graph, state: StreamingState, h2h, parts: np.ndarray) -> None:
        """PowerGraph-greedy placement over the h2h stream (informed)."""
        from repro.errors import CapacityError
        from repro.partition.scoring import greedy_choose

        remaining = graph.degrees.copy()
        for i in range(h2h.num_edges):
            u = int(h2h.pairs[i, 0])
            v = int(h2h.pairs[i, 1])
            p = greedy_choose(state, u, v, int(remaining[u]), int(remaining[v]))
            if p < 0:
                raise CapacityError("HEP/greedy: all partitions at capacity")
            state.place(u, v, p)
            remaining[u] -= 1
            remaining[v] -= 1
            parts[h2h.eids[i]] = p

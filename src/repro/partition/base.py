"""Partitioner framework: configuration, result container, base class.

Every partitioner in this library — streaming, in-memory, or hybrid —
consumes a :class:`~repro.graph.edgelist.Graph` and produces a
:class:`PartitionAssignment`: one partition id per canonical edge.  All
quality metrics (replication factor, balance) are derived from that
single array, so results from very different algorithms are directly
comparable and checkable.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.graph.edgelist import Graph

__all__ = ["PartitionAssignment", "Partitioner", "capacity_bound", "TimedResult"]

UNASSIGNED = -1


def capacity_bound(num_edges: int, k: int, alpha: float = 1.0) -> int:
    """Per-partition edge capacity ``ceil(alpha * |E| / k)``.

    This is the paper's balancing constraint ``|p_i| <= alpha * |E| / k``
    rounded up so that a perfectly balanced assignment is always feasible.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if alpha < 1.0:
        raise ConfigurationError(f"alpha must be >= 1.0, got {alpha}")
    return max(1, int(np.ceil(alpha * num_edges / k)))


class PartitionAssignment:
    """Edge partitioning result: ``parts[e]`` is the partition of edge ``e``.

    The heavy metrics live in :mod:`repro.metrics`; the methods here are
    thin conveniences that delegate to them.
    """

    def __init__(self, graph: Graph, k: int, parts: np.ndarray) -> None:
        parts = np.asarray(parts, dtype=np.int32)
        if parts.shape != (graph.num_edges,):
            raise ConfigurationError(
                f"parts must have one entry per edge "
                f"({graph.num_edges}), got shape {parts.shape}"
            )
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = int(k)
        self.parts = parts

    @classmethod
    def empty(cls, graph: Graph, k: int) -> "PartitionAssignment":
        """All-unassigned result to be filled in by a partitioner."""
        return cls(graph, k, np.full(graph.num_edges, UNASSIGNED, dtype=np.int32))

    # -- bookkeeping -----------------------------------------------------------

    @property
    def num_unassigned(self) -> int:
        """Number of edges still carrying the UNASSIGNED marker."""
        return int((self.parts == UNASSIGNED).sum())

    def partition_sizes(self) -> np.ndarray:
        """Number of edges in each partition (ignores unassigned)."""
        assigned = self.parts[self.parts >= 0]
        return np.bincount(assigned, minlength=self.k).astype(np.int64)

    def partition_edges(self, p: int) -> np.ndarray:
        """Edge ids assigned to partition ``p``."""
        return np.flatnonzero(self.parts == p)

    def cover_matrix(self) -> np.ndarray:
        """Boolean ``(k, n)`` matrix: partition ``p`` covers vertex ``v``."""
        cover = np.zeros((self.k, self.graph.num_vertices), dtype=bool)
        mask = self.parts >= 0
        p = self.parts[mask]
        cover[p, self.graph.edges[mask, 0]] = True
        cover[p, self.graph.edges[mask, 1]] = True
        return cover

    # -- metric conveniences ---------------------------------------------------

    def replication_factor(self) -> float:
        """Mean number of partitions each covered vertex appears in."""
        from repro.metrics.replication import replication_factor

        return replication_factor(self)

    def balance(self) -> float:
        """Edge balance alpha: largest partition over the perfect share."""
        from repro.metrics.balance import edge_balance

        return edge_balance(self)

    def __repr__(self) -> str:
        return (
            f"PartitionAssignment(k={self.k}, m={self.graph.num_edges:,}, "
            f"unassigned={self.num_unassigned})"
        )


@dataclass
class TimedResult:
    """A partitioning run together with its measured cost."""

    assignment: PartitionAssignment
    runtime_s: float
    partitioner: str
    memory_bytes: int | None = None
    extra: dict = field(default_factory=dict)


class Partitioner(abc.ABC):
    """Base class: a named algorithm mapping ``(graph, k)`` to an assignment.

    Subclasses implement :meth:`partition`.  Configuration (``alpha``,
    ``tau``, seeds, ...) belongs in the constructor so one configured
    instance can be applied to many graphs — the way the experiment
    harness sweeps them.
    """

    #: short identifier used in tables ("HDRF", "NE", "HEP-10", ...)
    name: str = "base"

    @abc.abstractmethod
    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Partition the edges of ``graph`` into ``k`` parts."""

    def partition_timed(self, graph: Graph, k: int) -> TimedResult:
        """Run :meth:`partition` under a wall-clock timer."""
        start = time.perf_counter()
        assignment = self.partition(graph, k)
        elapsed = time.perf_counter() - start
        return TimedResult(assignment, elapsed, self.name)

    def _require_k(self, graph: Graph, k: int) -> None:
        if k < 2:
            raise ConfigurationError(f"{self.name}: k must be >= 2, got {k}")
        if graph.num_edges == 0:
            raise PartitioningError(f"{self.name}: graph has no edges")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""Bench: worker-parallel counting & metrics passes vs the sequential sweep.

Measures what ``--metrics-workers N`` buys for the two remaining
``O(m)`` sweeps — the counting pass (``scan_source``) and the quality
pass (``chunked_quality``) — and what the bit-packed cover saves:

* **throughput** — sequential sweep vs 1/2/4 scan workers over the same
  sharded export, best-of-``_REPEATS`` wall-clock, with cold one-shot
  pools and with a warm :class:`~repro.stream.PersistentWorkerPool`
  (PR 7's default, where the spawn tax is paid once).  Worker scaling
  is real process parallelism, so on a single-core container
  (cpu_count is recorded in the JSON, as in ``bench_workers``) the
  measured speedup is bounded by ~1x and the *modeled* speedup — total
  edges over the largest per-worker share, the same ideal-network model
  ``MultiWorkerReport.modeled_speedup`` reports — records the scaling
  the shard split exposes to a multi-core host.
* **cover memory** — the metrics cover is ``k * ceil(n / 8)`` bytes
  (true ``k x n`` bits), asserted ``<= n * k / 8 + O(k)`` and reported
  next to the ``k x n``-byte dense matrix it replaced; the traced-heap
  peak of one sequential metrics pass is recorded too.

The measured rows land in ``results/BENCH_scan.json`` (validated by
``tools/check_bench_schema.py``).

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scan.py \
        -o python_functions=bench_
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.graph.generators import chung_lu
from repro.stream import (
    PersistentWorkerPool,
    chunked_quality,
    open_edge_source,
    parallel_chunked_quality,
    parallel_scan_source,
    plan_worker_segments,
    scan_quality,
    scan_source,
    scan_stats,
    write_sharded_edges,
)
from repro.stream.scan import cover_nbytes

_N = 400_000
_MEAN_DEGREE = 12
_K = 32
_SHARDS = 4
_CHUNK = 1 << 15
_WORKER_COUNTS = (1, 2, 4)
_REPEATS = 3
_RESULTS = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """A ~2.4M-edge power-law graph exported as a 4-shard manifest."""
    graph = chung_lu(
        _N, mean_degree=_MEAN_DEGREE, exponent=2.2, seed=41, name="bench-scan"
    )
    out = tmp_path_factory.mktemp("bench-scan") / "g.manifest.json"
    return write_sharded_edges(graph, out, num_shards=_SHARDS)


def _best_of(fn, repeats: int = _REPEATS):
    """Best wall-clock of ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_parallel_scan_throughput(manifest, capsys):
    """Sequential vs 1/2/4-worker counting + metrics sweeps.

    Emits ``results/BENCH_scan.json``.  Asserts the packed cover stays
    within ``n * k / 8 + O(k)`` bytes, the parallel metrics are
    bit-identical to the sequential pass, and the 4-worker
    configuration clears 1.5x — measured wall-clock where the host has
    the cores, the work-split model where it does not.
    """
    rng = np.random.default_rng(7)
    parts = rng.integers(0, _K, size=manifest.num_edges).astype(np.int32)

    def sequential():
        stats = scan_source(open_edge_source(manifest.path, _CHUNK))
        quality = chunked_quality(
            open_edge_source(manifest.path, _CHUNK), stats, _K, parts
        )
        return stats, quality

    seq_s, (stats, seq_quality) = _best_of(sequential)

    tracemalloc.start()
    chunked_quality(
        open_edge_source(manifest.path, _CHUNK), stats, _K, parts
    )
    _, metrics_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    cover_bytes = cover_nbytes(stats.num_vertices, _K)
    dense_bytes = _K * stats.num_vertices
    assert cover_bytes <= stats.num_vertices * _K / 8 + _K, (
        f"packed cover is {cover_bytes} bytes, over the n*k/8 + O(k) bound"
    )

    rows = [
        {
            "driver": "sequential scan + metrics",
            "workers": 0,
            "pool": "none",
            "seconds": seq_s,
            "speedup_vs_sequential": 1.0,
            "modeled_speedup": 1.0,
        }
    ]
    for workers in _WORKER_COUNTS:
        _, streams, _, _ = plan_worker_segments(manifest.path, workers)
        modeled = manifest.num_edges / max(s.size for s in streams)

        def parallel(w=workers):
            pstats = parallel_scan_source(manifest.path, w, _CHUNK)
            pquality = parallel_chunked_quality(
                manifest.path, pstats, _K, parts, w, _CHUNK
            )
            return pstats, pquality

        par_s, (pstats, par_quality) = _best_of(parallel)
        assert par_quality == seq_quality  # bit-identical floats
        assert np.array_equal(pstats.degrees, stats.degrees)
        rows.append(
            {
                "driver": f"parallel scan + metrics ({workers}w, cold pools)",
                "workers": workers,
                "pool": "cold",
                "seconds": par_s,
                "speedup_vs_sequential": seq_s / par_s,
                "modeled_speedup": modeled,
            }
        )

        # The same sweeps on a warm shared-memory pool (PR 7's default
        # path): the spawn tax is paid once, outside the timed region.
        pool = PersistentWorkerPool(workers)
        pool.start()
        try:
            def warm(w=workers):
                wstats = scan_stats(
                    manifest.path,
                    open_edge_source(manifest.path, _CHUNK),
                    w, _CHUNK, pool=pool,
                )
                wquality = scan_quality(
                    manifest.path,
                    open_edge_source(manifest.path, _CHUNK),
                    wstats, _K, parts, w, _CHUNK, pool=pool,
                )
                return wstats, wquality

            warm_s, (wstats, warm_quality) = _best_of(warm)
        finally:
            pool.shutdown()
        assert warm_quality == seq_quality  # bit-identical floats
        assert np.array_equal(wstats.degrees, stats.degrees)
        rows.append(
            {
                "driver": f"parallel scan + metrics ({workers}w, warm pool)",
                "workers": workers,
                "pool": "warm",
                "seconds": warm_s,
                "speedup_vs_sequential": seq_s / warm_s,
                "modeled_speedup": modeled,
            }
        )

    record = {
        "bench": "parallel_scan_throughput",
        "graph": f"chung_lu(n={_N}, mean_degree={_MEAN_DEGREE})",
        "edges": manifest.num_edges,
        "vertices": stats.num_vertices,
        "k": _K,
        "shards": _SHARDS,
        "chunk_size": _CHUNK,
        "cpu_count": os.cpu_count(),
        "cover_bytes": cover_bytes,
        "cover_bound_bytes": int(stats.num_vertices * _K / 8 + _K),
        "dense_cover_bytes_replaced": dense_bytes,
        "cover_reduction_x": dense_bytes / cover_bytes,
        "metrics_pass_peak_heap_bytes": metrics_peak,
        "rows": rows,
    }
    _RESULTS.mkdir(exist_ok=True)
    out = _RESULTS / "BENCH_scan.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n[bench_scan] -> {out}")
        print(
            f"  cover: {cover_bytes:,} B packed vs {dense_bytes:,} B dense "
            f"({record['cover_reduction_x']:.1f}x smaller), "
            f"metrics-pass peak heap {metrics_peak:,} B"
        )
        for row in rows:
            print(
                f"  {row['driver']:<44} {row['seconds']:.3f}s  "
                f"x{row['speedup_vs_sequential']:.2f} measured, "
                f"x{row['modeled_speedup']:.2f} modeled"
            )
    four = rows[-1]
    assert four["workers"] == 4 and four["pool"] == "warm"
    if (os.cpu_count() or 1) >= 4:
        assert four["speedup_vs_sequential"] >= 1.5, (
            f"4-worker warm scan only x{four['speedup_vs_sequential']:.2f} "
            f"on a {os.cpu_count()}-core host"
        )
    else:
        # Single/dual-core container: process parallelism cannot beat the
        # clock, so pin the work-split the schedule exposes instead.
        assert four["modeled_speedup"] >= 1.5, (
            f"4-worker shard split only models "
            f"x{four['modeled_speedup']:.2f}"
        )

"""Disk-backed spill file for h2h edges.

The paper's HEP writes the high/high edges to an *external memory edge
file* at graph-building time and streams them back in phase two.  The
seed implementation kept that buffer in RAM (:class:`ExternalEdges`);
:class:`SpillFile` is the honest version: NE++'s build pass *appends*
h2h chunks here, and the streaming phase reads them back in bounded
chunks — the full h2h edge set never resides in memory.

Two on-disk formats, selected by the ``compression`` parameter:

* **raw** (``compression=None``) — flat little-endian int64 triples
  ``(u, v, eid)``, no header; the PR-1 format, byte-for-byte.
* **zlib frames** (``compression="zlib"``) — an 8-byte header (magic
  ``b"RSPL"``, format version, codec id, 2 reserved bytes) followed by
  frames of ``<u4 payload_bytes, <u4 record_count`` and a
  zlib-compressed block of the same int64 triples.  Each
  :meth:`SpillFile.append` call emits one frame, so the inflate working
  set on read-back stays bounded by the append block size.

The eid travels with the pair so the streamed assignments land in the
same canonical per-edge slots the in-memory path uses, which is what
makes out-of-core HEP bit-identical to in-memory HEP — under either
spill format, since compression only changes the encoding, never the
record sequence.  :func:`read_spill_header` sniffs which format a file
on disk carries.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, GraphFormatError

__all__ = [
    "SpillFile",
    "read_spill_header",
    "read_spill_chunks",
    "SPILL_MAGIC",
    "SPILL_VERSION",
]

_RECORD_DTYPE = np.dtype("<i8")
_RECORD_WIDTH = 3  # u, v, eid
_RECORD_BYTES = _RECORD_DTYPE.itemsize * _RECORD_WIDTH

#: default read-back chunk size (edges per block)
DEFAULT_SPILL_CHUNK = 1 << 16

#: magic bytes opening a framed (compressed) spill file
SPILL_MAGIC = b"RSPL"
#: framed-format version written into the header
SPILL_VERSION = 1

_CODECS = {"zlib": 1}
_CODEC_NAMES = {v: k for k, v in _CODECS.items()}
_HEADER = struct.Struct("<4sBBH")   # magic, version, codec, reserved
_FRAME = struct.Struct("<II")       # payload bytes, record count


def read_spill_header(path: str | os.PathLike) -> str | None:
    """Sniff the spill format of ``path``.

    Returns the codec name (``"zlib"``) for a framed file, ``None`` for
    the raw headerless format.  The raw format has no header, so a raw
    record could begin with the magic bytes by coincidence; the sniff is
    therefore *structural*: it only reports a framed file when the
    magic, version and codec all validate **and** the frame chain walks
    exactly to end-of-file.  Anything else — including a corrupt or
    future-version header — is reported as raw (``None``) rather than
    raised, since it cannot be told apart from raw record bytes.
    """
    size = os.stat(path).st_size
    with open(path, "rb") as fh:
        head = fh.read(_HEADER.size)
        if len(head) < _HEADER.size:
            return None
        magic, version, codec, reserved = _HEADER.unpack(head)
        if (
            magic != SPILL_MAGIC
            or version != SPILL_VERSION
            or codec not in _CODEC_NAMES
            or reserved != 0
        ):
            return None
        # Walk the frame chain; only a genuine framed file lands on EOF.
        offset = _HEADER.size
        while offset < size:
            frame = fh.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return None
            payload_bytes, _count = _FRAME.unpack(frame)
            offset += _FRAME.size + payload_bytes
            if offset > size:
                return None
            fh.seek(offset)
        return _CODEC_NAMES[codec]


def read_spill_chunks(
    path: str | os.PathLike,
    num_edges: int,
    compression: str | None = None,
    chunk_size: int = DEFAULT_SPILL_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Chunked ``(pairs, eids)`` sweep over an on-disk spill file.

    The standalone counterpart of :meth:`SpillFile.chunks` for a file
    *handed over* to an independent reader — e.g. a worker process
    streaming a per-worker spill segment
    (:mod:`repro.stream.workers`).  The writer must have synced
    (:meth:`SpillFile.sync`) or closed first.  Truncation or a header
    mismatch raises :class:`~repro.errors.GraphFormatError` naming the
    file.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    path = Path(path)
    if compression is None:
        yield from _read_raw_records(path, num_edges, chunk_size)
    else:
        yield from _read_framed_records(
            path, num_edges, compression, chunk_size
        )


def _read_raw_records(
    path: Path, total: int, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Chunked sweep over the raw flat-record spill format."""
    with open(path, "rb") as reader:
        done = 0
        while done < total:
            count = min(chunk_size, total - done)
            flat = np.fromfile(
                reader, dtype=_RECORD_DTYPE, count=count * _RECORD_WIDTH
            )
            if flat.size != count * _RECORD_WIDTH:
                raise GraphFormatError(
                    f"{path}: spill file truncated "
                    f"({done + flat.size // _RECORD_WIDTH} of {total} edges)"
                )
            records = flat.reshape(-1, _RECORD_WIDTH).astype(np.int64)
            yield records[:, :2], records[:, 2]
            done += count


def _read_framed_records(
    path: Path, total: int, compression: str, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Inflate spill frames one at a time, re-chunking to ``chunk_size``."""
    done = 0
    with open(path, "rb") as reader:
        head = reader.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise GraphFormatError(f"{path}: spill header truncated")
        magic, version, codec, _ = _HEADER.unpack(head)
        if (
            magic != SPILL_MAGIC
            or version != SPILL_VERSION
            or _CODEC_NAMES.get(codec) != compression
        ):
            raise GraphFormatError(
                f"{path}: spill header does not match "
                f"compression={compression!r}"
            )
        while done < total:
            frame = reader.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                raise GraphFormatError(
                    f"{path}: spill file truncated "
                    f"({done} of {total} edges)"
                )
            payload_bytes, count = _FRAME.unpack(frame)
            if done + count > total:
                # Frames align with append blocks, so a frame spilling
                # past the declared total means the file and the caller's
                # record count disagree — fail like the shard readers do
                # rather than hand extra records downstream.
                raise GraphFormatError(
                    f"{path}: spill frame delivers {done + count} records, "
                    f"expected {total}"
                )
            payload = reader.read(payload_bytes)
            if len(payload) < payload_bytes:
                raise GraphFormatError(
                    f"{path}: spill frame truncated "
                    f"({done} of {total} edges)"
                )
            flat = np.frombuffer(
                zlib.decompress(payload), dtype=_RECORD_DTYPE
            )
            if flat.size != count * _RECORD_WIDTH:
                raise GraphFormatError(
                    f"{path}: spill frame decodes to {flat.size} "
                    f"values, expected {count * _RECORD_WIDTH}"
                )
            records = flat.reshape(-1, _RECORD_WIDTH).astype(np.int64)
            for start in range(0, count, chunk_size):
                block = records[start : start + chunk_size]
                yield block[:, :2], block[:, 2]
            done += count


class SpillFile:
    """Append-only on-disk edge buffer with chunked read-back.

    Parameters
    ----------
    dir:
        Directory for the backing file (a fresh temporary file is created
        there; defaults to the system temp dir).
    path:
        Explicit backing-file path.  When given, the file is created (or
        truncated) at that location instead of a temporary name.
    delete:
        Remove the backing file on :meth:`close` / context-manager exit.
    compression:
        ``None`` for raw records (the default), ``"zlib"`` for
        compressed frames with a format header.

    The object is a context manager: leaving the ``with`` block — also on
    an exception — closes and (by default) deletes the backing file.
    Iteration (:meth:`chunks`) may be repeated and interleaved with
    further :meth:`append` calls; each ``chunks()`` call syncs the write
    handle to disk (flush + fsync) and re-reads from the start of the
    file, so a reader opening the path mid-write sees every record
    appended so far.
    """

    def __init__(
        self,
        dir: str | os.PathLike | None = None,
        path: str | os.PathLike | None = None,
        delete: bool = True,
        compression: str | None = None,
    ) -> None:
        if compression is not None and compression not in _CODECS:
            raise ConfigurationError(
                f"unknown spill compression {compression!r}; "
                f"available: {', '.join(_CODECS)} (or None)"
            )
        if path is not None:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
        else:
            if dir is not None:
                Path(dir).mkdir(parents=True, exist_ok=True)
            fd, name = tempfile.mkstemp(
                prefix="h2h-spill-", suffix=".bin", dir=dir
            )
            self.path = Path(name)
            self._fh = os.fdopen(fd, "wb")
        self.compression = compression
        self.delete = delete
        self._num_edges = 0
        self._bytes_written = 0
        self._closed = False
        if compression is not None:
            header = _HEADER.pack(
                SPILL_MAGIC, SPILL_VERSION, _CODECS[compression], 0
            )
            self._fh.write(header)
            self._bytes_written += len(header)

    # -- writing -----------------------------------------------------------

    def append(self, pairs: np.ndarray, eids: np.ndarray) -> int:
        """Append a block of ``(u, v)`` pairs with their canonical edge ids.

        Returns the number of edges appended (zero-size blocks are a
        no-op, so callers can feed every chunk unconditionally).  In
        compressed mode each call emits one frame.
        """
        if self._closed:
            raise ValueError("append() on a closed SpillFile")
        pairs = np.ascontiguousarray(pairs, dtype=np.int64).reshape(-1, 2)
        eids = np.ascontiguousarray(eids, dtype=np.int64)
        if eids.shape != (pairs.shape[0],):
            raise GraphFormatError("eids must parallel pairs")
        if pairs.shape[0] == 0:
            return 0
        records = np.empty((pairs.shape[0], _RECORD_WIDTH), dtype=_RECORD_DTYPE)
        records[:, :2] = pairs
        records[:, 2] = eids
        if self.compression is None:
            records.tofile(self._fh)
            self._bytes_written += records.nbytes
        else:
            payload = zlib.compress(records.tobytes())
            frame = _FRAME.pack(len(payload), pairs.shape[0])
            self._fh.write(frame)
            self._fh.write(payload)
            self._bytes_written += len(frame) + len(payload)
        self._num_edges += pairs.shape[0]
        return pairs.shape[0]

    def sync(self) -> None:
        """Flush buffered appends and fsync them to disk.

        Called automatically at the start of :meth:`chunks`; exposed so
        a phase handing the path to an *independent* reader can force
        visibility first.
        """
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- reading -----------------------------------------------------------

    def chunks(
        self, chunk_size: int = DEFAULT_SPILL_CHUNK
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(pairs, eids)`` blocks of at most ``chunk_size`` edges.

        Appended data is synced to disk first (flush + fsync), so
        everything written before the call is visible.  The write handle
        stays open — appending after (or between) iterations is allowed.
        """
        if self._closed:
            raise ValueError("chunks() on a closed SpillFile")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.sync()
        yield from read_spill_chunks(
            self.path, self._num_edges, self.compression, chunk_size
        )

    def __len__(self) -> int:
        """Number of edges spilled so far."""
        return self._num_edges

    @property
    def nbytes(self) -> int:
        """Bytes the spill occupies on disk (flushed + buffered)."""
        return self._bytes_written

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Close the write handle; remove the file when ``delete`` is set."""
        if self._closed:
            return
        self._closed = True
        self._fh.close()
        if self.delete:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        codec = self.compression or "raw"
        state = "closed" if self._closed else "open"
        return (
            f"SpillFile({str(self.path)!r}, edges={self._num_edges:,}, "
            f"bytes={self.nbytes:,}, {codec}, {state})"
        )

"""Balance metrics: edge balance (the paper's ``alpha``) and vertex balance.

Edge balance is the classic balancing-constraint slack::

    alpha = max_i |p_i| / (|E| / k)

Vertex balance (Table 5) is the normalized spread of per-partition
replica counts — ``std / mean`` of ``|V(p_i)|`` — which the paper shows
matters for processing performance once replication factors saturate.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import PartitionAssignment

__all__ = ["edge_balance", "vertex_balance", "load_distribution"]


def edge_balance(assignment: PartitionAssignment) -> float:
    """``alpha`` achieved by the assignment (1.0 = perfectly balanced)."""
    m = assignment.graph.num_edges
    if m == 0:
        return 1.0
    sizes = assignment.partition_sizes()
    return float(sizes.max() / (m / assignment.k))


def vertex_balance(assignment: PartitionAssignment) -> float:
    """Std-deviation / mean of vertex replicas per partition (Table 5)."""
    cover = assignment.cover_matrix().sum(axis=1).astype(np.float64)
    mean = cover.mean()
    if mean == 0:
        return 0.0
    return float(cover.std() / mean)


def load_distribution(assignment: PartitionAssignment) -> dict[str, float]:
    """Summary of the edge-load distribution across partitions."""
    sizes = assignment.partition_sizes().astype(np.float64)
    return {
        "min": float(sizes.min()),
        "max": float(sizes.max()),
        "mean": float(sizes.mean()),
        "std": float(sizes.std()),
        "alpha": edge_balance(assignment),
    }

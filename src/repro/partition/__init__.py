"""Edge partitioners: framework plus all baseline algorithms.

The hybrid system itself (HEP / NE++) lives in :mod:`repro.core`; this
package provides the common framework and the seven baseline families the
paper compares against.
"""

from repro.partition.adwise import AdwisePartitioner
from repro.partition.base import (
    PartitionAssignment,
    Partitioner,
    TimedResult,
    capacity_bound,
)
from repro.partition.dbh import DbhPartitioner
from repro.partition.dne import DnePartitioner
from repro.partition.greedy import GreedyPartitioner
from repro.partition.grid import GridPartitioner
from repro.partition.hdrf import HdrfPartitioner, hdrf_stream
from repro.partition.metis import MetisPartitioner
from repro.partition.ne import NePartitioner
from repro.partition.random_stream import RandomStreamPartitioner, random_stream
from repro.partition.restreaming import RestreamingHdrfPartitioner
from repro.partition.simple_hybrid import SimpleHybridPartitioner
from repro.partition.sne import SnePartitioner
from repro.partition.state import StreamingState

__all__ = [
    "Partitioner",
    "PartitionAssignment",
    "TimedResult",
    "capacity_bound",
    "StreamingState",
    "HdrfPartitioner",
    "hdrf_stream",
    "GreedyPartitioner",
    "DbhPartitioner",
    "GridPartitioner",
    "RandomStreamPartitioner",
    "random_stream",
    "AdwisePartitioner",
    "NePartitioner",
    "SnePartitioner",
    "DnePartitioner",
    "MetisPartitioner",
    "SimpleHybridPartitioner",
    "RestreamingHdrfPartitioner",
]

"""Parallel HEP — the paper's future-work direction on parallelism.

See :mod:`repro.parallel.bsp_streaming` for the bulk-synchronous
parallel streaming phase and :class:`ParallelHepPartitioner`.
"""

from repro.parallel.bsp_streaming import (
    BspStreamReport,
    ParallelHepPartitioner,
    bsp_hdrf_stream,
)

__all__ = ["ParallelHepPartitioner", "bsp_hdrf_stream", "BspStreamReport"]

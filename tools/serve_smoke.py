#!/usr/bin/env python3
"""Black-box smoke test of ``python -m repro serve`` over a real socket.

CI runs this (job ``serve-smoke``) against a real server subprocess —
no in-process shortcuts, so it exercises exactly what an operator gets:

1. start ``python -m repro serve`` on an ephemeral port and wait for
   the "listening on" line,
2. submit the same 2-worker job twice; the second submit must dedup
   onto the first (one execution, visible in the progress events),
3. poll to completion and read the ``edge → part`` / ``healthz``
   endpoints,
4. SIGTERM the server and require a clean exit: status 0, the
   "shutdown complete" line, no process that inherited the server's
   environment still alive, and no ``psm_*`` shared-memory segment
   left in ``/dev/shm``.

Usage: python tools/serve_smoke.py <edge-file-or-manifest> [options]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_MARKER = "REPRO_SERVE_SMOKE"


def _fail(message: str) -> None:
    """Abort the smoke run with a named violated expectation."""
    raise SystemExit(f"serve smoke failed: {message}")


def _request(base: str, method: str, path: str, body=None):
    """One JSON request; returns ``(status, parsed-or-raw body)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            blob = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        blob = exc.read()
        status = exc.code
    try:
        return status, json.loads(blob)
    except ValueError:
        return status, blob


def _psm_segments() -> set:
    """Names of live ``psm_*`` shared-memory segments."""
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("psm_*")}


def _marker_pids(marker: bytes) -> list:
    """PIDs of processes whose environment carries the smoke marker."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            env = (entry / "environ").read_bytes()
        except OSError:
            continue
        if marker in env:
            pids.append(int(entry.name))
    return pids


def _start_server(source: Path, cache: Path, env: dict) -> tuple:
    """Spawn the server; returns ``(process, base_url)``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--cache", str(cache),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(cache.parent),
    )
    deadline = time.monotonic() + 60
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            _fail("server never printed its listening line")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            _fail(f"server exited early with status {proc.returncode}")
        print(f"[server] {line}", end="", flush=True)
        if "listening on http://" in line:
            url = line.split("listening on ", 1)[1].split(" ", 1)[0]
            return proc, url.rstrip("/")


def main(argv) -> int:
    """Run the scripted client against a fresh server subprocess."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", type=Path)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--algo", default="HDRF")
    args = parser.parse_args(argv)

    marker_value = f"smoke-{os.getpid()}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env[_MARKER] = marker_value
    marker = f"{_MARKER}={marker_value}".encode("utf-8")
    shm_before = _psm_segments()

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
        proc, base = _start_server(
            args.source, Path(scratch) / "cache", env
        )
        try:
            payload = {
                "source": str(args.source.resolve()),
                "algo": args.algo, "k": args.k, "workers": args.workers,
            }
            status, first = _request(base, "POST", "/jobs", payload)
            if status != 201:
                _fail(f"first submit returned {status}: {first}")
            job_id = first["id"]
            status, second = _request(base, "POST", "/jobs", payload)
            if status != 200 or not second.get("deduped"):
                _fail(f"second submit did not dedup: {status} {second}")
            if second["id"] != job_id:
                _fail("dedup returned a different job id")

            deadline = time.monotonic() + 300
            while True:
                status, doc = _request(base, "GET", f"/jobs/{job_id}")
                if status != 200:
                    _fail(f"poll returned {status}")
                if doc["state"] in ("succeeded", "failed", "cancelled"):
                    break
                if time.monotonic() > deadline:
                    _fail("job did not finish within 300s")
                time.sleep(0.2)
            if doc["state"] != "succeeded":
                _fail(f"job finished {doc['state']}: {doc.get('error')}")

            status, blob = _request(
                base, "GET", f"/jobs/{job_id}/events?wait=0"
            )
            events = [
                json.loads(line)
                for line in blob.decode("utf-8").splitlines() if line
            ]
            partitions = [
                e for e in events
                if e.get("event") == "span" and e.get("span") == "partition"
            ]
            dedups = [e for e in events if e.get("event") == "dedup"]
            if len(partitions) != 1:
                _fail(f"{len(partitions)} partition spans for 2 submits")
            if not dedups:
                _fail("no dedup progress event recorded")

            status, edge = _request(base, "GET", f"/jobs/{job_id}/edge/0")
            if status != 200 or not 0 <= edge["part"] < args.k:
                _fail(f"edge lookup answered {status} {edge}")
            status, health = _request(base, "GET", "/healthz")
            if status != 200 or health["executions"] != 1:
                _fail(f"healthz answered {status} {health}")

            proc.send_signal(signal.SIGTERM)
            try:
                tail = proc.communicate(timeout=60)[0]
            except subprocess.TimeoutExpired:
                proc.kill()
                _fail("server did not exit within 60s of SIGTERM")
            for line in tail.splitlines():
                print(f"[server] {line}", flush=True)
            if proc.returncode != 0:
                _fail(f"server exited {proc.returncode} after SIGTERM")
            if "shutdown complete" not in tail:
                _fail("server never printed 'shutdown complete'")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    deadline = time.monotonic() + 10
    while _marker_pids(marker) and time.monotonic() < deadline:
        time.sleep(0.1)
    orphans = _marker_pids(marker)
    if orphans:
        _fail(f"processes outlived the server: {orphans}")
    leaked = _psm_segments() - shm_before
    if leaked:
        _fail(f"leaked shared-memory segments: {sorted(leaked)}")

    print(
        f"serve smoke: ok (1 execution, {len(dedups)} dedup hit(s), "
        "clean SIGTERM shutdown, no orphans, no shm leaks)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

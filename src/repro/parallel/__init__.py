"""Parallel HEP — the paper's future-work direction on parallelism.

See :mod:`repro.parallel.bsp_streaming` for the bulk-synchronous
parallel streaming phase and :class:`ParallelHepPartitioner`;
:mod:`repro.parallel.kernel` holds the snapshot-scoring / delta-merge
kernels shared with the multi-process driver
(:mod:`repro.stream.workers`); :mod:`repro.parallel.shm` holds the
shared-memory state the warm worker pools snapshot and commit against.
"""

from repro.parallel.bsp_streaming import (
    BspStreamReport,
    ParallelHepPartitioner,
    bsp_hdrf_stream,
)
from repro.parallel.kernel import (
    FusedBatchScorer,
    apply_batch,
    apply_delta,
    contiguous_streams,
    place_batch_serialized,
    round_robin_streams,
    score_batch_on_snapshot,
    shard_round_robin_streams,
    superstep_is_safe,
)
from repro.parallel.shm import SharedArray, SharedState

__all__ = [
    "ParallelHepPartitioner",
    "bsp_hdrf_stream",
    "BspStreamReport",
    "SharedArray",
    "SharedState",
    "FusedBatchScorer",
    "score_batch_on_snapshot",
    "superstep_is_safe",
    "place_batch_serialized",
    "apply_batch",
    "apply_delta",
    "round_robin_streams",
    "contiguous_streams",
    "shard_round_robin_streams",
]

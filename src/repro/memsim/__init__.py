"""Paging simulator: NE++ under memory limits (Table 6 substitute)."""

from repro.memsim.lru import PAGE_BYTES, LruPageCache
from repro.memsim.paging import (
    DEFAULT_FAULT_PENALTY_S,
    PagingResult,
    replay_trace,
    run_paged_ne_plus_plus,
)
from repro.memsim.trace import PageTrace, build_page_trace

__all__ = [
    "LruPageCache",
    "PAGE_BYTES",
    "PageTrace",
    "build_page_trace",
    "PagingResult",
    "replay_trace",
    "run_paged_ne_plus_plus",
    "DEFAULT_FAULT_PENALTY_S",
]

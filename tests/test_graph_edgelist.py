"""Tests for the Graph container and edge-list IO."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    canonical_edges,
    read_binary_edgelist,
    read_text_edgelist,
    write_binary_edgelist,
    write_text_edgelist,
)


class TestCanonicalEdges:
    def test_removes_self_loops(self):
        out = canonical_edges(np.array([[0, 0], [0, 1], [2, 2]]))
        assert out.tolist() == [[0, 1]]

    def test_removes_duplicates_keeps_first_orientation(self):
        out = canonical_edges(np.array([[1, 0], [0, 1], [1, 0]]))
        assert out.tolist() == [[1, 0]]

    def test_preserves_stream_order(self):
        out = canonical_edges(np.array([[5, 2], [1, 3], [2, 5], [0, 4]]))
        assert out.tolist() == [[5, 2], [1, 3], [0, 4]]

    def test_empty(self):
        out = canonical_edges(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)

    def test_all_self_loops(self):
        out = canonical_edges(np.array([[1, 1], [2, 2]]))
        assert out.shape == (0, 2)


class TestGraph:
    def test_basic_properties(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.degrees.tolist() == [2, 2, 2, 0]
        assert g.mean_degree == pytest.approx(6 / 4)
        assert g.num_covered_vertices == 3

    def test_infers_num_vertices(self):
        g = Graph.from_edges([(0, 7)])
        assert g.num_vertices == 8

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(np.zeros((3, 3)))

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(0, -1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0, 5]]), num_vertices=3)

    def test_edges_read_only(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            g.edges[0, 0] = 5

    def test_empty_graph(self):
        g = Graph.from_edges(np.empty((0, 2)), num_vertices=0)
        assert g.num_edges == 0
        assert g.mean_degree == 0.0

    def test_subgraph_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        sub = g.subgraph_edges(np.array([True, False, True]))
        assert sub.edges.tolist() == [[0, 1], [2, 3]]
        assert sub.num_vertices == 4

    def test_binary_size(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.binary_size_bytes() == 16

    def test_degrees_cached_and_frozen(self):
        g = Graph.from_edges([(0, 1)])
        d1 = g.degrees
        assert d1 is g.degrees
        with pytest.raises(ValueError):
            d1[0] = 99


class TestBinaryIO:
    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges([(0, 1), (3, 2), (1, 2)], num_vertices=5)
        path = tmp_path / "g.bin"
        nbytes = write_binary_edgelist(g, path)
        assert nbytes == 3 * 8
        back = read_binary_edgelist(path, num_vertices=5)
        assert back.edges.tolist() == g.edges.tolist()

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 7)
        with pytest.raises(GraphFormatError):
            read_binary_edgelist(path)

    def test_little_endian_layout(self, tmp_path):
        g = Graph.from_edges([(1, 258)])
        path = tmp_path / "g.bin"
        write_binary_edgelist(g, path)
        raw = path.read_bytes()
        assert raw == (1).to_bytes(4, "little") + (258).to_bytes(4, "little")


class TestTextIO:
    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges([(0, 1), (2, 1)], num_vertices=3)
        path = tmp_path / "g.txt"
        write_text_edgelist(g, path)
        back = read_text_edgelist(path, num_vertices=3)
        assert back.edges.tolist() == g.edges.tolist()

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        g = read_text_edgelist(path)
        assert g.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphFormatError):
            read_text_edgelist(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_text_edgelist(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        g = read_text_edgelist(path, num_vertices=3)
        assert g.num_edges == 0


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=150
    )
)
def test_canonicalization_properties(edges):
    """Property: canonical edges are loop-free, unique, and a subset."""
    raw = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    out = canonical_edges(raw)
    # No self-loops.
    assert (out[:, 0] != out[:, 1]).all()
    # No duplicate undirected edges.
    keys = {(min(u, v), max(u, v)) for u, v in out.tolist()}
    assert len(keys) == out.shape[0]
    # Every output edge occurs in the input.
    raw_set = {(u, v) for u, v in raw.tolist()}
    assert all((u, v) in raw_set for u, v in out.tolist())
    # Every non-loop input edge is represented.
    input_keys = {(min(u, v), max(u, v)) for u, v in raw.tolist() if u != v}
    assert keys == input_keys


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 40)),
        min_size=1,
        max_size=80,
    ).filter(lambda es: any(u != v for u, v in es))
)
def test_binary_roundtrip_property(edges, tmp_path_factory):
    g = Graph.from_edges(np.asarray(edges))
    path = tmp_path_factory.mktemp("bin") / "g.bin"
    write_binary_edgelist(g, path)
    back = read_binary_edgelist(path, num_vertices=g.num_vertices)
    assert np.array_equal(back.edges, g.edges)

"""Declarative, frozen job specifications with stable content hashes.

A :class:`JobSpec` is the runtime's single description of "one
partitioning job": what to read (:class:`InputSpec`), which algorithm
with which parameters, ``k``, the memory budget, and the execution
shape (workers/batch/shared-memory).  Two properties make it the
substrate for the content-addressed artifact store
(:mod:`repro.runtime.store`) and the future ``repro.serve`` job queue:

* **canonical serialization** — :meth:`JobSpec.to_dict` /
  :meth:`JobSpec.canonical_json` emit one sorted-key JSON form per
  spec; ``algo_params`` are sorted and merged over the registered
  defaults at construction, so keyword order and elided defaults never
  produce distinct spellings of the same job, and
* **a stable content hash** — :meth:`JobSpec.content_hash` digests only
  the *semantic* fields (those that can change the assignment).  Pure
  I/O knobs (``prefetch``, ``mmap``), scan parallelism
  (``metrics_workers``, ``shared_memory`` — bit-identical by the
  equivalence suites), spill placement, and pool plumbing
  (``mp_context``, ``timeout``) are excluded, so equivalent runs share
  a cache entry.  ``workers``/``batch`` *are* semantic: the BSP
  schedule's staleness window changes assignments.

The input *path* is deliberately not hashed — the artifact store keys
on ``content_hash + input digest``, so renaming a file never splits
the cache while changing its bytes always does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.core.tau import DEFAULT_TAU_GRID
from repro.runtime.registry import algorithm_info
from repro.stream.reader import DEFAULT_CHUNK_SIZE
from repro.stream.workers import DEFAULT_WORKER_BATCH, DEFAULT_WORKER_TIMEOUT

__all__ = ["InputSpec", "JobSpec", "SPEC_VERSION", "make_job"]

#: bumped whenever the canonical form changes meaning (invalidates caches)
SPEC_VERSION = 1

#: phase-two HDRF defaults shared by every HEP driver signature
_HEP_PARAM_DEFAULTS = (("eps", 1.0), ("lam", 1.1))


@dataclass(frozen=True)
class InputSpec:
    """Where the edges come from and how they are chunked.

    ``kind`` is one of ``"path"`` (edge file or shard manifest on
    disk), ``"dataset"`` (a named Table 3 stand-in, regenerated
    deterministically), ``"graph"`` (an in-memory
    :class:`~repro.graph.edgelist.Graph` passed out-of-band), or
    ``"opaque"`` (an already-open edge source; not content-addressable).
    """

    kind: str
    path: str | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    order: str = "natural"
    seed: int = 0
    prefetch: int = 0
    mmap: bool = False

    @classmethod
    def from_source(
        cls,
        source,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        order: str = "natural",
        seed: int = 0,
        prefetch: int = 0,
        mmap: bool = False,
    ) -> "InputSpec":
        """Classify anything ``open_edge_source`` accepts into a spec."""
        common = dict(
            chunk_size=int(chunk_size), order=order, seed=int(seed),
            prefetch=int(prefetch), mmap=bool(mmap),
        )
        if isinstance(source, (str, Path)):
            text = str(source)
            from repro.graph import datasets

            if text.upper() in datasets.available() and not Path(text).exists():
                return cls(kind="dataset", path=text.upper(), **common)
            return cls(kind="path", path=text, **common)
        from repro.graph.edgelist import Graph

        if isinstance(source, Graph):
            return cls(kind="graph", path=None, **common)
        return cls(kind="opaque", path=None, **common)

    def to_dict(self) -> dict:
        """Canonical plain-dict form (JSON-ready, no numpy types)."""
        return {
            "kind": self.kind,
            "path": self.path,
            "chunk_size": int(self.chunk_size),
            "order": self.order,
            "seed": int(self.seed),
            "prefetch": int(self.prefetch),
            "mmap": bool(self.mmap),
        }

    def semantic_dict(self) -> dict:
        """The result-determining subset (no path, no I/O-only knobs)."""
        return {
            "kind": self.kind,
            "chunk_size": int(self.chunk_size),
            "order": self.order,
            "seed": int(self.seed),
        }


def _plain(value):
    """Coerce a parameter value to a stable JSON-serializable form."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (tuple, list)):
        return [_plain(item) for item in value]
    return repr(value)


@dataclass(frozen=True)
class JobSpec:
    """One partitioning job, declaratively: input + algorithm + shape.

    ``algo`` is ``"HEP"`` or a registered streaming-algorithm name
    (:mod:`repro.runtime.registry`); the planner lowers HEP specs to
    the six-stage pipeline and everything else to the three-stage
    streaming pipeline.  ``workers >= 1`` selects the
    :class:`~repro.runtime.executor.PoolExecutor` (BSP worker
    processes); ``workers == 0`` runs in process.
    """

    algo: str
    k: int
    input: InputSpec
    algo_params: tuple[tuple[str, object], ...] = ()
    alpha: float = 1.0
    seed: int = 0
    # HEP knobs (ignored by the streaming pipeline)
    tau: float | None = None
    memory_budget: int | None = None
    tau_grid: tuple[float, ...] = DEFAULT_TAU_GRID
    id_bytes: int = 4
    buffer_size: int | None = None
    spill_dir: str | None = None
    spill_compression: str | None = None
    # execution shape
    workers: int = 0
    batch: int = DEFAULT_WORKER_BATCH
    metrics_workers: int = 0
    shared_memory: bool = True
    mp_context: str | None = None
    timeout: float = DEFAULT_WORKER_TIMEOUT
    # trace options (observational only, never hashed)
    trace_path: str | None = None
    trace_memory: str | None = None

    def __post_init__(self) -> None:
        """Normalize to the canonical form (sorted, default-merged params)."""
        object.__setattr__(self, "tau_grid", tuple(self.tau_grid))
        given = {str(name): value for name, value in self.algo_params}
        defaults: dict[str, object] = {}
        if self.algo.upper() == "HEP":
            defaults = dict(_HEP_PARAM_DEFAULTS)
        else:
            try:
                info = algorithm_info(self.algo)
            except Exception:
                info = None  # unregistered custom adapter: keep as given
            if info is not None:
                defaults = dict(info.params)
        merged = {**defaults, **given}
        object.__setattr__(
            self,
            "algo_params",
            tuple(sorted((name, value) for name, value in merged.items())),
        )

    # -- canonical forms ---------------------------------------------------

    @property
    def chunk_size(self) -> int:
        """Convenience mirror of ``input.chunk_size``."""
        return self.input.chunk_size

    @property
    def params(self) -> dict:
        """``algo_params`` as a plain dict (stage/executor convenience)."""
        return dict(self.algo_params)

    def to_dict(self) -> dict:
        """Full canonical plain-dict form, every field included."""
        return {
            "version": SPEC_VERSION,
            "algo": self.algo,
            "k": int(self.k),
            "input": self.input.to_dict(),
            "algo_params": {
                name: _plain(value) for name, value in self.algo_params
            },
            "alpha": float(self.alpha),
            "seed": int(self.seed),
            "tau": None if self.tau is None else float(self.tau),
            "memory_budget": (
                None if self.memory_budget is None else int(self.memory_budget)
            ),
            "tau_grid": [float(tau) for tau in self.tau_grid],
            "id_bytes": int(self.id_bytes),
            "buffer_size": (
                None if self.buffer_size is None else int(self.buffer_size)
            ),
            "spill_dir": self.spill_dir,
            "spill_compression": self.spill_compression,
            "workers": int(self.workers),
            "batch": int(self.batch),
            "metrics_workers": int(self.metrics_workers),
            "shared_memory": bool(self.shared_memory),
            "mp_context": self.mp_context,
            "timeout": float(self.timeout),
            "trace_path": self.trace_path,
            "trace_memory": self.trace_memory,
        }

    def canonical_json(self) -> str:
        """One JSON spelling per spec: sorted keys, no whitespace."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def semantic_dict(self) -> dict:
        """The subset of fields that can change the assignment.

        Everything excluded here is pinned bit-identical by the
        equivalence suites (scan parallelism, shared-memory protocol,
        prefetch/mmap I/O, spill placement, pool plumbing, tracing).
        """
        return {
            "version": SPEC_VERSION,
            "algo": self.algo.upper(),
            "algo_params": {
                name: _plain(value) for name, value in self.algo_params
            },
            "k": int(self.k),
            "alpha": float(self.alpha),
            "seed": int(self.seed),
            "input": self.input.semantic_dict(),
            "tau": None if self.tau is None else float(self.tau),
            "memory_budget": (
                None if self.memory_budget is None else int(self.memory_budget)
            ),
            "tau_grid": [float(tau) for tau in self.tau_grid],
            "id_bytes": int(self.id_bytes),
            "buffer_size": (
                None if self.buffer_size is None else int(self.buffer_size)
            ),
            "workers": int(self.workers),
            "batch": int(self.batch),
        }

    def content_hash(self) -> str:
        """Stable sha256 over the canonical JSON of the semantic fields."""
        payload = json.dumps(
            self.semantic_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256()
        digest.update(f"repro-jobspec-v{SPEC_VERSION}:".encode("utf-8"))
        digest.update(payload.encode("utf-8"))
        return digest.hexdigest()

    def cacheable(self) -> bool:
        """Whether the input is content-addressable (opaque sources aren't)."""
        return self.input.kind in ("path", "dataset", "graph")

    def with_input(self, **changes) -> "JobSpec":
        """Copy of this spec with ``input`` fields replaced."""
        return replace(self, input=replace(self.input, **changes))


def make_job(
    algo: str,
    source,
    k: int,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    order: str = "natural",
    seed: int = 0,
    prefetch: int = 0,
    mmap: bool = False,
    algo_params=(),
    **options,
) -> JobSpec:
    """Build a :class:`JobSpec` from a source object plus keyword knobs.

    The ergonomic front door the CLI, experiments, and benches use:
    ``source`` is classified by :meth:`InputSpec.from_source`,
    ``algo_params`` accepts a dict or ``(name, value)`` pairs, and —
    matching the legacy multi-worker drivers — ``metrics_workers``
    defaults to ``workers`` when a worker count is given.
    """
    input_spec = InputSpec.from_source(
        source, chunk_size=chunk_size, order=order, seed=seed,
        prefetch=prefetch, mmap=mmap,
    )
    if isinstance(algo_params, dict):
        params = tuple(algo_params.items())
    else:
        params = tuple(algo_params)
    workers = int(options.get("workers", 0))
    if workers >= 1 and "metrics_workers" not in options:
        options["metrics_workers"] = workers
    return JobSpec(
        algo=algo, k=int(k), input=input_spec, algo_params=params, **options
    )


def spec_fields() -> tuple[str, ...]:
    """Field names of :class:`JobSpec` (doc/tooling helper)."""
    return tuple(f.name for f in fields(JobSpec))

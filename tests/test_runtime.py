"""Tests for the repro.runtime layer: specs, hashing, plans, and cache.

The load-bearing properties:

* :meth:`~repro.runtime.spec.JobSpec.content_hash` is *stable* — a
  golden hash pins the canonical form, because silently changing it
  would orphan every existing artifact-store entry,
* hashing is insensitive to spelling (kwarg order, elided defaults,
  algo case) but sensitive to anything that can change the assignment
  (budget, workers, batch, k, chunk size),
* a second :func:`~repro.runtime.api.run_job` of an identical spec is
  served from the :class:`~repro.runtime.store.ArtifactStore`
  bit-identically, with **zero** partitioning stages executed —
  asserted both on the result and on the trace span tree.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.graph import write_binary_edgelist
from repro.graph.generators import chung_lu
from repro.obs import Tracer, set_tracer
from repro.runtime import (
    PIPELINES,
    ArtifactStore,
    InputSpec,
    JobSpec,
    algorithm_names,
    create_algorithm,
    input_digest,
    make_job,
    plan_job,
    register_streaming_algorithm,
    registered_algorithm_name,
    run_job,
)

#: pins the canonical hash of ``make_job("HDRF", "OK", 4)``.  If this
#: assertion ever fails, the canonical form changed meaning: bump
#: SPEC_VERSION (which re-keys every cache entry) instead of editing
#: the constant.
GOLDEN_HDRF_HASH = (
    "b8f8d8b1fdaa40c9dd581e4bfcb808c6958901ff7d1e2631024b6daf68fe9c8e"
)


@pytest.fixture(scope="module")
def graph():
    return chung_lu(300, mean_degree=6, exponent=2.2, seed=11, name="rt")


@pytest.fixture(scope="module")
def edge_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("rt") / "rt.bin"
    write_binary_edgelist(graph, path)
    return path


def _traced_run(spec, **kwargs):
    """Run a job under a collect-mode tracer; return (result, spans)."""
    tracer = Tracer(None)
    previous = set_tracer(tracer)
    try:
        result = run_job(spec, **kwargs)
    finally:
        set_tracer(previous)
    return result, tracer.drain()


class TestContentHash:
    def test_golden_hash_is_stable(self):
        assert make_job("HDRF", "OK", 4).content_hash() == GOLDEN_HDRF_HASH

    def test_algo_case_does_not_split_the_hash(self):
        assert make_job("hdrf", "OK", 4).content_hash() == GOLDEN_HDRF_HASH

    def test_kwarg_order_is_canonicalized(self):
        a = make_job("HDRF", "OK", 4, algo_params=(("lam", 2.0), ("eps", 0.5)))
        b = make_job("HDRF", "OK", 4, algo_params=(("eps", 0.5), ("lam", 2.0)))
        assert a.canonical_json() == b.canonical_json()
        assert a.content_hash() == b.content_hash()

    def test_explicit_defaults_equal_elided_defaults(self):
        explicit = make_job("HDRF", "OK", 4,
                            algo_params={"eps": 1.0, "lam": 1.1})
        assert explicit.content_hash() == GOLDEN_HDRF_HASH

    def test_semantic_knobs_split_the_hash(self):
        base = make_job("HEP", "OK", 4, memory_budget=1_000_000)
        distinct = {
            base.content_hash(),
            make_job("HEP", "OK", 4, memory_budget=2_000_000).content_hash(),
            make_job("HEP", "OK", 8, memory_budget=1_000_000).content_hash(),
            make_job("HEP", "OK", 4, memory_budget=1_000_000,
                     workers=2).content_hash(),
            make_job("HEP", "OK", 4, memory_budget=1_000_000,
                     workers=4).content_hash(),
            make_job("HEP", "OK", 4, memory_budget=1_000_000,
                     workers=2, batch=16).content_hash(),
            make_job("HEP", "OK", 4, memory_budget=1_000_000,
                     chunk_size=512).content_hash(),
        }
        assert len(distinct) == 7

    def test_io_and_scan_knobs_do_not_split_the_hash(self, tmp_path):
        base = make_job("HDRF", "OK", 4)
        for variant in (
            make_job("HDRF", "OK", 4, prefetch=4),
            make_job("HDRF", "OK", 4, mmap=True),
            make_job("HDRF", "OK", 4, metrics_workers=2),
            make_job("HDRF", "OK", 4, shared_memory=False),
            make_job("HDRF", "OK", 4, spill_dir=str(tmp_path)),
            make_job("HDRF", "OK", 4, trace_path="t.jsonl"),
        ):
            assert variant.content_hash() == base.content_hash()

    def test_input_path_is_not_hashed(self, edge_file):
        a = make_job("HDRF", edge_file, 4)
        b = dataclasses.replace(
            a, input=dataclasses.replace(a.input, path="elsewhere.bin")
        )
        assert a.content_hash() == b.content_hash()

    def test_canonical_json_is_sorted_and_total(self):
        spec = make_job("HEP", "OK", 4, tau=2.0)
        payload = json.loads(spec.canonical_json())
        assert list(payload) == sorted(payload)
        assert payload["algo"] == "HEP" and payload["tau"] == 2.0

    def test_spec_is_frozen(self):
        spec = make_job("HDRF", "OK", 4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.k = 8


class TestPlanner:
    def test_hep_plan_has_six_stages(self):
        plan = plan_job(make_job("HEP", "OK", 4))
        assert [s.name for s in plan.stages] == [
            "count", "select_tau", "split", "phase_one", "stream", "metrics",
        ]

    def test_streaming_plan_has_three_stages(self):
        plan = plan_job(make_job("Greedy", "OK", 4))
        assert [s.name for s in plan.stages] == ["count", "stream", "metrics"]
        assert plan.describe() == "count -> stream -> metrics"

    def test_pipelines_registry_covers_both_kinds(self):
        assert set(PIPELINES) == {"hep", "stream"}


class TestRegistry:
    def test_builtin_algorithms_are_discoverable(self):
        names = algorithm_names()
        for name in ("HDRF", "Greedy", "DBH", "Grid", "Restreaming"):
            assert name in names

    def test_create_is_case_insensitive(self):
        algo = create_algorithm("hdrf", lam=1.5)
        assert algo.name == "HDRF"
        assert registered_algorithm_name(algo) == "HDRF"

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ConfigurationError):
            register_streaming_algorithm("hdrf")(object)


class TestArtifactCache:
    def test_second_run_is_a_bit_identical_cache_hit(self, edge_file, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        spec = make_job("HDRF", edge_file, 8, chunk_size=256)

        cold, cold_spans = _traced_run(spec, store=store)
        assert not cold.cache_hit
        assert cold.stages_executed == ("count", "stream", "metrics")
        assert (store.hits, store.misses) == (0, 1)

        warm, warm_spans = _traced_run(spec, store=store)
        assert warm.cache_hit
        # Zero partitioning stages executed, also visible in the trace:
        # only the root span and the cache_hit marker, no pipeline spans.
        assert warm.stages_executed == ()
        assert {s["name"] for s in warm_spans} == {"partition", "cache_hit"}
        assert (store.hits, store.misses) == (1, 1)

        assert np.array_equal(warm.parts, cold.parts)
        assert np.array_equal(warm.loads, cold.loads)
        assert warm.replication_factor == cold.replication_factor
        assert warm.edge_balance == cold.edge_balance
        assert warm.job_hash == spec.content_hash()

    def test_cold_run_records_pipeline_spans(self, edge_file, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        spec = make_job("HDRF", edge_file, 8, chunk_size=256)
        _, spans = _traced_run(spec, store=store)
        names = {s["name"] for s in spans}
        assert {"count_pass", "stream_pass", "metrics_pass"} <= names

    def test_hep_cache_round_trips_tau_and_breakdown(self, edge_file, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        spec = make_job("HEP", edge_file, 4, tau=1.0, chunk_size=256)
        cold = run_job(spec, store=store)
        warm = run_job(spec, store=store)
        assert warm.cache_hit
        assert warm.tau == cold.tau
        assert warm.breakdown == cold.breakdown
        assert np.array_equal(warm.parts, cold.parts)

    def test_renaming_the_input_keeps_the_entry(
        self, graph, edge_file, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        run_job(make_job("HDRF", edge_file, 8, chunk_size=256), store=store)
        renamed = tmp_path / "renamed.bin"
        renamed.write_bytes(edge_file.read_bytes())
        warm = run_job(
            make_job("HDRF", renamed, 8, chunk_size=256), store=store
        )
        assert warm.cache_hit and store.hits == 1

    def test_changing_input_bytes_misses(self, edge_file, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_job(make_job("HDRF", edge_file, 8, chunk_size=256), store=store)
        other = chung_lu(300, mean_degree=6, exponent=2.2, seed=12, name="rt2")
        other_file = tmp_path / "other.bin"
        write_binary_edgelist(other, other_file)
        spec = make_job("HDRF", other_file, 8, chunk_size=256)
        result = run_job(spec, store=store)
        assert not result.cache_hit and store.misses == 2
        assert input_digest(spec, other_file) != input_digest(
            make_job("HDRF", edge_file, 8, chunk_size=256), edge_file
        )

    def test_multi_worker_cache_round_trips_the_report(
        self, graph, tmp_path
    ):
        from repro.stream import write_sharded_edges

        manifest = tmp_path / "rt.manifest.json"
        write_sharded_edges(graph, manifest, num_shards=2)
        store = ArtifactStore(tmp_path / "cache")
        spec = make_job("HDRF", manifest, 8, workers=2, chunk_size=256)
        cold = run_job(spec, store=store)
        warm = run_job(spec, store=store)
        assert warm.cache_hit
        assert warm.report.supersteps == cold.report.supersteps
        assert np.array_equal(warm.parts, cold.parts)

    def test_opaque_sources_are_never_cached(self, edge_file, tmp_path):
        from repro.stream import open_edge_source

        store = ArtifactStore(tmp_path / "cache")
        spec = JobSpec(
            algo="HDRF", k=8,
            input=InputSpec.from_source(
                open_edge_source(edge_file, 256), chunk_size=256
            ),
        )
        assert not spec.cacheable()
        result = run_job(spec, source=edge_file, store=store)
        assert not result.cache_hit
        assert (store.hits, store.misses) == (0, 0)


class TestJobCli:
    def test_job_describe_prints_canonical_json_and_hash(self, capsys):
        rc = main(["job", "describe", "OK", "--k", "4", "--method", "HDRF"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        payload = json.loads(lines[0])
        assert payload["algo"] == "HDRF" and payload["k"] == 4
        assert GOLDEN_HDRF_HASH in out
        assert "count -> stream -> metrics" in out

    def test_algo_help_lists_the_registry(self, capsys):
        rc = main(["partition", "OK", "--algo", "help", "--out-of-core"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("HEP", "HDRF", "Restreaming"):
            assert name in out

    def test_cache_requires_out_of_core(self, edge_file, tmp_path, capsys):
        rc = main(
            ["partition", str(edge_file), "--k", "2",
             "--cache", str(tmp_path / "c")]
        )
        assert rc == 1
        assert "--cache requires --out-of-core" in capsys.readouterr().err

    def test_cli_cache_hit_on_second_run(self, edge_file, tmp_path, capsys):
        argv = ["partition", str(edge_file), "--k", "4", "--out-of-core",
                "--method", "HDRF", "--cache", str(tmp_path / "c")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache              : miss (stored)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache              : hit" in second

"""Binary min-heap with by-key decrease/increase and O(1) membership.

The NE/NE++ expansion step repeatedly needs ``argmin_{v in S_i \\ C}
d_ext(v, S_i)`` while external degrees of arbitrary boundary vertices
change.  The paper (Section 4.2, item 5) pairs a binary min-heap with a
lookup table from vertex id to heap slot; this class is exactly that
structure.

Keys are integers (external degrees); items are vertex ids.  All
operations are ``O(log n)`` except ``__contains__``/``priority`` which are
``O(1)``.
"""

from __future__ import annotations

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """Min-heap of ``(priority, item)`` supporting update-by-item.

    >>> h = IndexedMinHeap()
    >>> h.push(7, priority=3); h.push(2, priority=1); h.push(9, priority=2)
    >>> h.pop_min()
    (2, 1)
    >>> h.update(7, priority=0)
    >>> h.pop_min()
    (7, 0)
    """

    __slots__ = ("_items", "_prios", "_pos")

    def __init__(self) -> None:
        self._items: list[int] = []   # heap-ordered item ids
        self._prios: list[int] = []   # parallel priorities
        self._pos: dict[int, int] = {}  # item id -> slot in _items

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def priority(self, item: int) -> int:
        """Current priority of ``item``; raises ``KeyError`` if absent."""
        return self._prios[self._pos[item]]

    def push(self, item: int, priority: int) -> None:
        """Insert a new item; raises ``ValueError`` if already present."""
        if item in self._pos:
            raise ValueError(f"item {item} already in heap")
        self._items.append(item)
        self._prios.append(priority)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def update(self, item: int, priority: int) -> None:
        """Change the priority of an existing item (up or down)."""
        slot = self._pos[item]
        old = self._prios[slot]
        if priority == old:
            return
        self._prios[slot] = priority
        if priority < old:
            self._sift_up(slot)
        else:
            self._sift_down(slot)

    def push_or_update(self, item: int, priority: int) -> None:
        """Insert ``item`` or change its priority if already present."""
        if item in self._pos:
            self.update(item, priority)
        else:
            self.push(item, priority)

    def decrement(self, item: int, by: int = 1) -> None:
        """Decrease the priority of ``item`` by ``by`` (the ``d_ext -= 1``
        operation of Algorithm 1, line 20)."""
        self.update(item, self.priority(item) - by)

    def pop_min(self) -> tuple[int, int]:
        """Remove and return ``(item, priority)`` with the smallest
        priority; ties broken arbitrarily."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top_item = self._items[0]
        top_prio = self._prios[0]
        self._swap(0, len(self._items) - 1)
        self._items.pop()
        self._prios.pop()
        del self._pos[top_item]
        if self._items:
            self._sift_down(0)
        return top_item, top_prio

    def peek_min(self) -> tuple[int, int]:
        """Return ``(item, priority)`` at the top without removing it."""
        if not self._items:
            raise IndexError("peek on empty heap")
        return self._items[0], self._prios[0]

    def remove(self, item: int) -> None:
        """Delete ``item`` from the heap; raises ``KeyError`` if absent."""
        slot = self._pos[item]
        last = len(self._items) - 1
        self._swap(slot, last)
        self._items.pop()
        self._prios.pop()
        del self._pos[item]
        if slot <= last - 1 and self._items:
            # Restore heap order at the vacated slot.
            self._sift_up(slot)
            self._sift_down(slot)

    def discard(self, item: int) -> None:
        """Delete ``item`` if present; no-op otherwise."""
        if item in self._pos:
            self.remove(item)

    def clear(self) -> None:
        """Remove all items."""
        self._items.clear()
        self._prios.clear()
        self._pos.clear()

    # -- internal sifting --------------------------------------------------

    def _swap(self, a: int, b: int) -> None:
        items, prios, pos = self._items, self._prios, self._pos
        items[a], items[b] = items[b], items[a]
        prios[a], prios[b] = prios[b], prios[a]
        pos[items[a]] = a
        pos[items[b]] = b

    def _sift_up(self, slot: int) -> None:
        prios = self._prios
        while slot > 0:
            parent = (slot - 1) >> 1
            if prios[slot] < prios[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        prios = self._prios
        n = len(prios)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < n and prios[left] < prios[smallest]:
                smallest = left
            if right < n and prios[right] < prios[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    def _check_invariants(self) -> None:
        """Validate heap order and position table (used by tests)."""
        n = len(self._items)
        assert len(self._prios) == n
        assert len(self._pos) == n
        for slot in range(1, n):
            parent = (slot - 1) >> 1
            assert self._prios[parent] <= self._prios[slot], "heap order"
        for item, slot in self._pos.items():
            assert self._items[slot] == item, "position table"

"""Command-line interface: ``python -m repro`` / ``hep-partition``.

Subcommands mirror the workflows a user of the original C++ system has:

* ``partition`` — partition an edge-list file (or a named stand-in
  dataset) and write one partition id per edge,
* ``compare``   — run several partitioners on one graph side by side,
* ``select-tau`` — pick the largest tau fitting a memory budget (§4.4),
* ``experiment`` — regenerate one of the paper's tables/figures,
* ``datasets``  — list the Table 3 stand-ins.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import HepPartitioner, precompute_profile, select_tau
from repro.errors import ReproError
from repro.experiments import REGISTRY
from repro.experiments.common import PARTITIONER_FACTORIES, run_partitioner
from repro.graph import datasets, read_binary_edgelist, read_text_edgelist
from repro.graph.edgelist import Graph
from repro.metrics import (
    edge_balance,
    format_table,
    replication_factor,
    vertex_balance,
)
from repro.stream.reader import DEFAULT_CHUNK_SIZE

__all__ = ["main", "build_parser"]


def _load_graph(source: str) -> Graph:
    """Dataset name, text edge list, or binary edge list."""
    if source.upper() in datasets.available():
        return datasets.load(source)
    path = Path(source)
    if not path.exists():
        raise ReproError(
            f"{source!r} is neither a dataset name "
            f"({', '.join(datasets.available())}) nor a file"
        )
    if path.suffix in (".bin", ".edges", ".bel"):
        return read_binary_edgelist(path, name=path.stem)
    return read_text_edgelist(path, name=path.stem)


def _cmd_partition(args: argparse.Namespace) -> int:
    if args.out_of_core:
        return _partition_out_of_core(args)
    if args.memory_budget is not None:
        raise ReproError("--memory-budget requires --out-of-core (the "
                         "in-memory path cannot honor a byte budget)")
    graph = _load_graph(args.graph)
    if args.method.upper() == "HEP":
        partitioner = HepPartitioner(
            tau=args.tau,
            spill_dir=args.spill_dir,
            buffer_size=args.buffer_size,
            chunk_size=args.chunk_size,
        )
    elif args.spill_dir is not None or args.buffer_size is not None:
        raise ReproError("--spill-dir/--buffer-size apply only to HEP")
    else:
        from repro.experiments.common import make_partitioner

        partitioner = make_partitioner(args.method)
    start = time.perf_counter()
    assignment = partitioner.partition(graph, args.k)
    elapsed = time.perf_counter() - start
    print(f"partitioner        : {partitioner.name}")
    print(f"graph              : {graph!r}")
    print(f"replication factor : {replication_factor(assignment):.4f}")
    print(f"edge balance alpha : {edge_balance(assignment):.4f}")
    print(f"vertex balance     : {vertex_balance(assignment):.4f}")
    print(f"run-time           : {elapsed:.3f}s")
    if args.output:
        from repro.graph.partition_io import write_assignment

        write_assignment(assignment, args.output)
        print(f"assignment written : {args.output} (+ .meta.json sidecar)")
    if args.shards_dir:
        from repro.graph.partition_io import write_partition_edgelists

        paths = write_partition_edgelists(assignment, args.shards_dir)
        print(f"shards written     : {len(paths)} binary edge lists in "
              f"{args.shards_dir}")
    return 0


def _partition_out_of_core(args: argparse.Namespace) -> int:
    """Chunked out-of-core HEP (``--out-of-core``): the graph source is
    handed to the streaming pipeline unopened, so on-disk edge files are
    never fully loaded."""
    from repro.stream import OutOfCoreHep

    if args.method.upper() != "HEP":
        raise ReproError("--out-of-core supports only the HEP method")
    if args.shards_dir:
        raise ReproError("--shards-dir needs the edge list in memory; "
                         "rerun without --out-of-core to write shards")
    # An explicit byte budget selects tau from the Section 4.4 grid;
    # otherwise the --tau flag applies as usual.
    tau = None if args.memory_budget is not None else args.tau
    pipeline = OutOfCoreHep(
        tau=tau,
        memory_budget=args.memory_budget,
        chunk_size=args.chunk_size,
        buffer_size=args.buffer_size,
        spill_dir=args.spill_dir,
    )
    result = pipeline.partition(args.graph, args.k)
    print(f"partitioner        : HEP-{result.tau:g} (out-of-core)")
    print(f"source             : {args.graph} "
          f"(n={result.num_vertices:,} m={result.num_edges:,})")
    print(f"chunk size         : {result.chunk_size:,} edges")
    if result.buffer_size:
        print(f"buffer size        : {result.buffer_size:,} edges")
    if result.projected_memory_bytes is not None:
        print(f"memory budget      : {args.memory_budget:,} bytes "
              f"(projected {result.projected_memory_bytes:,})")
    print(f"h2h edges spilled  : {result.breakdown.num_h2h_edges:,} "
          f"({result.spill_bytes:,} bytes on disk)")
    print(f"replication factor : {result.replication_factor:.4f}")
    print(f"edge balance alpha : {result.edge_balance:.4f}")
    print(f"run-time           : {result.runtime_s:.3f}s")
    if args.output:
        np.savetxt(args.output, result.parts, fmt="%d")
        print(f"assignment written : {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    rows = []
    for name in args.partitioners:
        report = run_partitioner(name, graph, args.k)
        rows.append(report.row())
    print(format_table(rows, title=f"{graph.name or args.graph} at k={args.k}"))
    return 0


def _cmd_select_tau(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    budget = int(args.budget_kib * 1024)
    profile = precompute_profile(graph, args.k)
    print(format_table(profile.rows(), title="projected HEP footprint per tau"))
    tau, projected = select_tau(graph, budget, args.k)
    print(f"\nbudget {budget:,} bytes -> tau={tau:g} "
          f"(projected {projected:,} bytes)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; available: {', '.join(REGISTRY)}")
        return 2
    result = REGISTRY[args.id]()
    print(result.format())
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.export:
        from repro.graph.edgelist import write_binary_edgelist, write_text_edgelist

        graph = datasets.load(args.export)
        suffix = ".bin" if args.format == "binary" else ".txt"
        output = args.output or f"{args.export.upper()}{suffix}"
        if args.format == "binary":
            nbytes = write_binary_edgelist(graph, output)
        else:
            write_text_edgelist(graph, output)
            nbytes = Path(output).stat().st_size
        print(f"exported {graph!r}")
        print(f"  -> {output} ({args.format}, {nbytes:,} bytes)")
        return 0
    rows = []
    for name in datasets.available():
        spec = datasets.DATASETS[name]
        rows.append(
            {
                "name": name,
                "type": spec.kind,
                "paper_|V|": spec.paper_vertices,
                "paper_|E|": spec.paper_edges,
                "stand-in": spec.description,
            }
        )
    print(format_table(rows, title="Table 3 stand-in datasets"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid Edge Partitioner (SIGMOD'21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a graph's edges")
    p.add_argument("graph", help="dataset name or edge-list file")
    p.add_argument("--k", type=int, default=32, help="number of partitions")
    p.add_argument("--method", default="HEP",
                   help=f"HEP or one of {', '.join(PARTITIONER_FACTORIES)}")
    p.add_argument("--tau", type=float, default=10.0,
                   help="HEP degree threshold factor")
    p.add_argument("--output", help="write per-edge partition ids here")
    p.add_argument("--shards-dir", help="write one binary edge list per partition")
    p.add_argument("--out-of-core", action="store_true",
                   help="partition through the chunked streaming pipeline "
                        "(repro.stream); edge files are never fully loaded")
    p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                   help="byte budget for HEP's in-memory structures; "
                        "selects tau from the §4.4 grid (overrides --tau)")
    p.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                   help="edges per I/O chunk for --out-of-core")
    p.add_argument("--buffer-size", type=int, default=None,
                   help="buffered-scoring window for the streaming phase")
    p.add_argument("--spill-dir", default=None,
                   help="directory for the h2h spill file (default: temp dir)")
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("compare", help="run several partitioners side by side")
    p.add_argument("graph")
    p.add_argument("--k", type=int, default=32)
    p.add_argument(
        "--partitioners",
        nargs="+",
        default=["HEP-100", "HEP-10", "HEP-1", "HDRF", "DBH", "NE"],
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("select-tau", help="pick tau for a memory budget (§4.4)")
    p.add_argument("graph")
    p.add_argument("--budget-kib", type=float, required=True)
    p.add_argument("--k", type=int, default=32)
    p.set_defaults(func=_cmd_select_tau)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help=f"one of: {', '.join(REGISTRY)}")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "datasets", help="list the Table 3 stand-ins or export one to disk"
    )
    p.add_argument("--export", metavar="NAME", default=None,
                   help="write the named stand-in as an on-disk edge file")
    p.add_argument("--format", choices=("text", "binary"), default="binary",
                   help="edge-file format for --export")
    p.add_argument("--output", default=None,
                   help="output path for --export (default: <NAME>.bin/.txt)")
    p.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

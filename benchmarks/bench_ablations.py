"""Bench: design-choice ablations (informed streaming, lazy removal,
seed scan strategy)."""

from repro.experiments import ablations


def bench_ablations(benchmark, record_experiment):
    result = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # Every per-graph note must report all four checks positive.
    for note in result.notes:
        assert note.count("True") == 4, note

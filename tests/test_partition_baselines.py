"""Tests for SNE, DNE, the METIS-like multilevel partitioner, and the
simple hybrid baseline of Section 5.4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.generators import chung_lu, community_web, erdos_renyi, grid2d, ring
from repro.metrics import (
    assert_valid,
    edge_balance,
    replication_factor,
)
from repro.partition import (
    DnePartitioner,
    HdrfPartitioner,
    MetisPartitioner,
    NePartitioner,
    RandomStreamPartitioner,
    SimpleHybridPartitioner,
    SnePartitioner,
)
from repro.partition.metis import LevelGraph, coarsen, partition_vertices_kway


@pytest.fixture(scope="module")
def social_graph() -> Graph:
    return chung_lu(600, mean_degree=10, exponent=2.2, seed=33, name="soc")


@pytest.fixture(scope="module")
def web_graph() -> Graph:
    return community_web(8, 70, intra_mean_degree=8, inter_fraction=0.02, seed=34)


class TestSne:
    def test_valid_complete(self, social_graph):
        a = SnePartitioner().partition(social_graph, 4)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=1.05)

    def test_deterministic(self, social_graph):
        a = SnePartitioner().partition(social_graph, 4)
        b = SnePartitioner().partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_quality_between_streaming_and_ne(self, web_graph):
        """Figure 8: SNE sits between HDRF and NE on quality."""
        k = 8
        rf_sne = replication_factor(SnePartitioner().partition(web_graph, k))
        rf_ne = replication_factor(NePartitioner().partition(web_graph, k))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(web_graph, k)
        )
        assert rf_ne <= rf_sne * 1.05
        assert rf_sne < rf_rand

    def test_larger_sample_not_worse(self, social_graph):
        k = 8
        rf_small = replication_factor(
            SnePartitioner(sample_factor=1.0).partition(social_graph, k)
        )
        rf_big = replication_factor(
            SnePartitioner(sample_factor=4.0).partition(social_graph, k)
        )
        assert rf_big <= rf_small * 1.1

    def test_rejects_bad_sample_factor(self):
        with pytest.raises(ValueError):
            SnePartitioner(sample_factor=0.5)

    def test_ring(self):
        a = SnePartitioner().partition(ring(100), 4)
        assert_valid(a, alpha=1.05)


class TestDne:
    def test_valid_complete(self, social_graph):
        a = DnePartitioner().partition(social_graph, 4)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=2.0)  # DNE is allowed to be imbalanced

    def test_deterministic(self, social_graph):
        a = DnePartitioner(seed=3).partition(social_graph, 4)
        b = DnePartitioner(seed=3).partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_every_edge_once(self, social_graph):
        a = DnePartitioner().partition(social_graph, 8)
        assert a.partition_sizes().sum() == social_graph.num_edges

    def test_worse_than_sequential_ne(self, web_graph):
        """The paper: concurrent expansion degrades replication factor
        relative to sequential NE."""
        k = 8
        rf_dne = replication_factor(DnePartitioner().partition(web_graph, k))
        rf_ne = replication_factor(NePartitioner().partition(web_graph, k))
        assert rf_ne <= rf_dne

    def test_better_than_random(self, web_graph):
        k = 8
        rf_dne = replication_factor(DnePartitioner().partition(web_graph, k))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(web_graph, k)
        )
        assert rf_dne < rf_rand

    def test_grid_all_partitions_used(self):
        a = DnePartitioner().partition(grid2d(16, 16), 4)
        assert (a.partition_sizes() > 0).all()


class TestMetisLevel:
    def test_level_from_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 1)], num_vertices=3)
        lvl = LevelGraph.from_graph(g)
        assert lvl.num_vertices == 3
        assert lvl.adj[1] == {0: 1.0, 2: 1.0}
        assert lvl.vertex_weights.tolist() == [1.0, 2.0, 1.0]

    def test_cut_weight(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        lvl = LevelGraph.from_graph(g)
        side = np.array([0, 0, 1, 1], dtype=np.int8)
        assert lvl.cut_weight(side) == 1.0

    def test_coarsen_preserves_weight(self):
        g = erdos_renyi(60, 150, seed=2)
        lvl = LevelGraph.from_graph(g)
        coarse, cmap = coarsen(lvl, np.random.default_rng(0))
        assert coarse.total_weight == pytest.approx(lvl.total_weight)
        assert coarse.num_vertices < lvl.num_vertices
        assert (cmap >= 0).all() and cmap.max() == coarse.num_vertices - 1

    def test_coarsen_preserves_cross_edge_weight(self):
        g = erdos_renyi(40, 90, seed=3)
        lvl = LevelGraph.from_graph(g)
        coarse, cmap = coarsen(lvl, np.random.default_rng(1))
        # Total coarse edge weight = fine weight minus contracted edges.
        fine_total = sum(sum(d.values()) for d in lvl.adj) / 2
        contracted = 0.0
        for u in range(lvl.num_vertices):
            for v, w in lvl.adj[u].items():
                if v > u and cmap[u] == cmap[v]:
                    contracted += w
        coarse_total = sum(sum(d.values()) for d in coarse.adj) / 2
        assert coarse_total == pytest.approx(fine_total - contracted)


class TestMetisKway:
    def test_vertex_partition_complete(self, social_graph):
        vparts = partition_vertices_kway(social_graph, 4)
        assert vparts.shape == (social_graph.num_vertices,)
        assert set(np.unique(vparts)) <= set(range(4))

    def test_vertex_balance_by_degree_weight(self, social_graph):
        vparts = partition_vertices_kway(social_graph, 4)
        weights = np.maximum(social_graph.degrees, 1).astype(float)
        loads = np.bincount(vparts, weights=weights, minlength=4)
        assert loads.max() <= loads.sum() / 4 * 1.6

    def test_edge_assignment_valid(self, social_graph):
        a = MetisPartitioner().partition(social_graph, 4)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=2.5)  # vertex partitioners drift on alpha

    def test_low_cut_on_communities(self, web_graph):
        """Multilevel partitioning must find planted communities:
        far better replication factor than random assignment."""
        k = 4
        rf_metis = replication_factor(MetisPartitioner().partition(web_graph, k))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(web_graph, k)
        )
        assert rf_metis < 0.6 * rf_rand

    def test_odd_k(self, social_graph):
        a = MetisPartitioner().partition(social_graph, 5)
        assert set(np.unique(a.parts)) <= set(range(5))
        assert (a.partition_sizes() > 0).all()

    def test_deterministic(self, social_graph):
        a = MetisPartitioner(seed=1).partition(social_graph, 4)
        b = MetisPartitioner(seed=1).partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)


class TestSimpleHybrid:
    def test_valid_complete(self, social_graph):
        a = SimpleHybridPartitioner(tau=1.0).partition(social_graph, 4)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=1.4)

    def test_worse_than_hep_with_much_streaming(self, social_graph):
        """Figure 9's point: at low tau the random streaming phase hurts —
        HEP's informed HDRF phase wins clearly."""
        from repro.core import HepPartitioner

        k = 8
        rf_hybrid = replication_factor(
            SimpleHybridPartitioner(tau=0.5).partition(social_graph, k)
        )
        rf_hep = replication_factor(
            HepPartitioner(tau=0.5).partition(social_graph, k)
        )
        assert rf_hep < rf_hybrid

    def test_tau_huge_equals_pure_ne(self, social_graph):
        a = SimpleHybridPartitioner(tau=1e9, seed=4).partition(social_graph, 4)
        b = NePartitioner(seed=4).partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_rejects_bad_tau(self):
        with pytest.raises(Exception):
            SimpleHybridPartitioner(tau=0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(10, 40),
    m=st.integers(12, 100),
    k=st.sampled_from([2, 4]),
    seed=st.integers(0, 3),
)
def test_baselines_property_random_graphs(n, m, k, seed):
    """Property: the heavyweight baselines always produce complete,
    exactly-once assignments."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return
    for partitioner in (
        SnePartitioner(seed=seed),
        DnePartitioner(seed=seed),
        MetisPartitioner(seed=seed),
        SimpleHybridPartitioner(tau=1.0, seed=seed),
    ):
        a = partitioner.partition(g, k)
        assert a.num_unassigned == 0, partitioner.name
        assert a.partition_sizes().sum() == g.num_edges, partitioner.name
        assert 0 <= a.parts.min() and a.parts.max() < k, partitioner.name

"""Hypergraph container for the hybrid-partitioning extension.

The paper's future work proposes extending the hybrid in-memory +
streaming paradigm to hypergraphs (citing HYPE and streaming min-max
hypergraph partitioning).  This subpackage builds that extension on the
same architecture as the graph case: a CSR-style container here, a
degree-threshold split, a neighborhood-expansion in-memory phase and an
informed streaming phase in :mod:`repro.hypergraph.hybrid`.

A hypergraph is a set of *hyperedges*, each a set of *pins* (vertices).
Partitioning assigns hyperedges to ``k`` parts; a vertex is replicated
on every part that holds one of its hyperedges — the exact analogue of
vertex-cut edge partitioning (a graph is the special case of two pins
per hyperedge).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["Hypergraph"]


class Hypergraph:
    """Immutable hypergraph in CSR form.

    ``pins[eptr[e]:eptr[e+1]]`` are the vertices of hyperedge ``e``.
    A transposed incidence (vertex -> hyperedges) is built lazily for
    the expansion phase.
    """

    def __init__(self, eptr: np.ndarray, pins: np.ndarray, num_vertices: int) -> None:
        self.eptr = np.ascontiguousarray(eptr, dtype=np.int64)
        self.pins = np.ascontiguousarray(pins, dtype=np.int64)
        self.num_vertices = int(num_vertices)
        if self.eptr.ndim != 1 or self.eptr.size == 0 or self.eptr[0] != 0:
            raise GraphFormatError("eptr must be a 1-D prefix array starting at 0")
        if self.eptr[-1] != self.pins.size:
            raise GraphFormatError("eptr must end at len(pins)")
        if np.any(np.diff(self.eptr) < 1):
            raise GraphFormatError("every hyperedge needs at least one pin")
        if self.pins.size and (
            self.pins.min() < 0 or self.pins.max() >= num_vertices
        ):
            raise GraphFormatError("pin outside [0, num_vertices)")
        self._vptr: np.ndarray | None = None
        self._vedges: np.ndarray | None = None

    @classmethod
    def from_hyperedges(
        cls, hyperedges: list[tuple[int, ...]] | list[list[int]],
        num_vertices: int | None = None,
    ) -> "Hypergraph":
        """Build from a list of pin collections (duplicate pins within a
        hyperedge are dropped; empty hyperedges rejected)."""
        cleaned = []
        max_pin = -1
        for he in hyperedges:
            unique = sorted(set(int(p) for p in he))
            if not unique:
                raise GraphFormatError("empty hyperedge")
            cleaned.append(unique)
            max_pin = max(max_pin, unique[-1])
        n = int(num_vertices) if num_vertices is not None else max_pin + 1
        eptr = np.zeros(len(cleaned) + 1, dtype=np.int64)
        eptr[1:] = np.cumsum([len(he) for he in cleaned])
        pins = (
            np.concatenate([np.asarray(he, dtype=np.int64) for he in cleaned])
            if cleaned
            else np.empty(0, dtype=np.int64)
        )
        return cls(eptr, pins, n)

    # -- shape -----------------------------------------------------------------

    @property
    def num_hyperedges(self) -> int:
        return int(self.eptr.size - 1)

    @property
    def num_pins(self) -> int:
        return int(self.pins.size)

    def hyperedge(self, e: int) -> np.ndarray:
        """Pins of hyperedge ``e`` (view)."""
        return self.pins[self.eptr[e] : self.eptr[e + 1]]

    def pin_counts(self) -> np.ndarray:
        """Number of pins per hyperedge."""
        return np.diff(self.eptr)

    @property
    def vertex_degrees(self) -> np.ndarray:
        """Number of hyperedges incident to each vertex."""
        return np.bincount(self.pins, minlength=self.num_vertices).astype(np.int64)

    @property
    def mean_vertex_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_pins / self.num_vertices

    # -- transposed incidence ------------------------------------------------------

    def _build_transpose(self) -> None:
        order = np.argsort(self.pins, kind="stable")
        sorted_pins = self.pins[order]
        # hyperedge id of each pin position
        owner = np.repeat(np.arange(self.num_hyperedges), self.pin_counts())
        counts = np.bincount(sorted_pins, minlength=self.num_vertices)
        vptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=vptr[1:])
        self._vptr = vptr
        self._vedges = owner[order]

    def incident_hyperedges(self, v: int) -> np.ndarray:
        """Hyperedges containing vertex ``v`` (view into the transpose)."""
        if self._vptr is None:
            self._build_transpose()
        assert self._vptr is not None and self._vedges is not None
        return self._vedges[self._vptr[v] : self._vptr[v + 1]]

    def __repr__(self) -> str:
        return (
            f"Hypergraph(n={self.num_vertices:,}, "
            f"hyperedges={self.num_hyperedges:,}, pins={self.num_pins:,})"
        )

"""Graph substrate: containers, CSR, pruning, generators and statistics."""

from repro.graph.csr import CsrGraph, ExternalEdges
from repro.graph.edgelist import (
    Graph,
    canonical_edges,
    read_binary_edgelist,
    read_text_edgelist,
    write_binary_edgelist,
    write_text_edgelist,
)
from repro.graph.pruned import (
    EdgeSplit,
    build_pruned_csr,
    high_degree_mask,
    split_edges,
)
from repro.graph.ordering import ORDERINGS, edge_order, reorder_edges
from repro.graph.partition_io import (
    read_assignment,
    write_assignment,
    write_partition_edgelists,
)
from repro.graph.stats import GraphStats, describe

__all__ = [
    "Graph",
    "CsrGraph",
    "ExternalEdges",
    "EdgeSplit",
    "GraphStats",
    "canonical_edges",
    "read_binary_edgelist",
    "write_binary_edgelist",
    "read_text_edgelist",
    "write_text_edgelist",
    "high_degree_mask",
    "split_edges",
    "build_pruned_csr",
    "describe",
    "edge_order",
    "reorder_edges",
    "ORDERINGS",
    "write_assignment",
    "read_assignment",
    "write_partition_edgelists",
]

"""Stream-order sensitivity: streaming partitioners vs HEP.

Streaming quality depends on edge arrival order (the uninformed
assignment problem); HEP's in-memory phase sees the whole pruned graph
at once and is order-free.  This experiment partitions the same graph
under five orderings and reports the spread each partitioner exhibits —
the robustness argument behind hybrid partitioning.
"""

from __future__ import annotations

from repro.core import HepPartitioner
from repro.experiments.common import ExperimentResult, load_dataset
from repro.graph.ordering import ORDERINGS, edge_order, reorder_edges
from repro.metrics import replication_factor
from repro.partition import GreedyPartitioner, HdrfPartitioner

__all__ = ["run"]


def run(graph_name: str = "OK", k: int = 32) -> ExperimentResult:
    graph = load_dataset(graph_name)
    partitioners = {
        "HDRF": lambda: HdrfPartitioner(),
        "Greedy": lambda: GreedyPartitioner(),
        "HEP-1": lambda: HepPartitioner(tau=1.0),
    }
    rows: list[dict[str, object]] = []
    spread: dict[str, list[float]] = {name: [] for name in partitioners}
    for strategy in ORDERINGS:
        permutation = edge_order(graph, strategy, seed=7)
        reordered = reorder_edges(graph, permutation)
        row: dict[str, object] = {"ordering": strategy}
        for name, factory in partitioners.items():
            assignment = factory().partition(reordered, k)
            rf = replication_factor(assignment)
            row[name] = round(rf, 3)
            spread[name].append(rf)
        rows.append(row)
    result = ExperimentResult(
        experiment_id="stream_order",
        title=f"Replication factor vs edge-stream ordering ({graph_name}, k={k})",
        rows=rows,
        paper_shape="streaming partitioners are sensitive to arrival order"
        " (worst under hubs-last); HEP's in-memory phase is order-free",
    )
    for name, values in spread.items():
        lo, hi = min(values), max(values)
        result.notes.append(
            f"{name}: RF range [{lo:.3f}, {hi:.3f}], spread {hi / lo:.3f}x"
        )
    hep_spread = max(spread["HEP-1"]) / min(spread["HEP-1"])
    hdrf_spread = max(spread["HDRF"]) / min(spread["HDRF"])
    result.notes.append(
        f"HEP less order-sensitive than HDRF: {hep_spread < hdrf_spread}"
    )
    return result

"""Tests for repro.serve: the async partitioning service.

The acceptance property: two concurrent identical submits execute the
pipeline **once** — both callers land on the same job (whose id is the
store's content-addressed cache key), progress events derived from the
run's trace spans stream to a subscriber while the job runs, and after
completion every lookup (result summary, ``edge → part``,
``vertex → parts``, quality) answers from the cached artifact without
re-partitioning.

The service is driven fully in-process: manager-level through
:class:`~repro.serve.queue.JobManager`, and HTTP-shaped through the
:class:`~repro.serve.app.App` ASGI callable — no sockets, no
subprocesses, so the tests stay fast and deterministic.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.graph import write_binary_edgelist
from repro.graph.generators import chung_lu
from repro.runtime import ArtifactStore
from repro.serve import (
    ArtifactCache,
    EventLog,
    JobManager,
    JobState,
    QueueFullError,
    SubmitError,
    create_app,
)

K = 8


@pytest.fixture(scope="module")
def graph():
    return chung_lu(300, mean_degree=6, exponent=2.2, seed=41, name="sv")


@pytest.fixture(scope="module")
def edge_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("sv") / "sv.bin"
    write_binary_edgelist(graph, path)
    return path


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    from repro.stream import write_sharded_edges

    out = tmp_path_factory.mktemp("svm") / "sv.manifest.json"
    write_sharded_edges(graph, out, num_shards=2)
    return out


def _payload(source, **extra):
    doc = {"source": str(source), "algo": "HDRF", "k": K, "chunk_size": 256}
    doc.update(extra)
    return doc


async def _asgi(app, method, path, body=None, query=""):
    """Drive the ASGI callable once; returns ``(status, body bytes)``."""
    blob = json.dumps(body).encode("utf-8") if body is not None else b""
    inbox = [{"type": "http.request", "body": blob, "more_body": False}]
    outbox = []

    async def receive():
        return inbox.pop(0)

    async def send(message):
        outbox.append(message)

    scope = {
        "type": "http", "method": method, "path": path,
        "query_string": query.encode("latin-1"),
    }
    await app(scope, receive, send)
    status = outbox[0]["status"]
    payload = b"".join(m.get("body", b"") for m in outbox[1:])
    return status, payload


async def _asgi_json(app, method, path, body=None, query=""):
    status, blob = await _asgi(app, method, path, body, query)
    return status, (json.loads(blob) if blob.strip() else {})


async def _service(store_root, queue_size=16, start=True):
    """A wired (store, manager, cache, app) quadruple on this loop."""
    loop = asyncio.get_running_loop()
    store = ArtifactStore(store_root)
    manager = JobManager(store, queue_size=queue_size, loop=loop)
    cache = ArtifactCache(store)
    app = create_app(manager, cache)
    if start:
        await manager.start()
    return store, manager, cache, app


async def _collect_events(job):
    """Follow a job's event log until it closes; returns every event."""
    events, cursor = [], 0
    while True:
        batch = await job.events.wait_beyond(cursor)
        if not batch:
            return events
        events.extend(batch)
        cursor = batch[-1]["seq"] + 1


class TestEventLog:
    def test_sequence_numbers_and_snapshot(self):
        async def scenario():
            log = EventLog(asyncio.get_running_loop())
            log.append({"event": "a"})
            log.append({"event": "b"})
            assert [e["seq"] for e in log.snapshot()] == [0, 1]
            assert [e["event"] for e in log.snapshot(1)] == ["b"]
            assert len(log) == 2

        asyncio.run(scenario())

    def test_wait_beyond_returns_existing_then_blocks_until_close(self):
        async def scenario():
            log = EventLog(asyncio.get_running_loop())
            log.append({"event": "a"})
            batch = await log.wait_beyond(0)
            assert [e["event"] for e in batch] == ["a"]
            waiter = asyncio.ensure_future(log.wait_beyond(1))
            await asyncio.sleep(0)
            assert not waiter.done()
            log.append({"event": "b"})
            assert [e["event"] for e in await waiter] == ["b"]
            log.close()
            assert await log.wait_beyond(2) == []

        asyncio.run(scenario())

    def test_threadsafe_append_hops_onto_the_loop(self):
        async def scenario():
            import threading

            log = EventLog(asyncio.get_running_loop())
            thread = threading.Thread(
                target=log.append_threadsafe, args=({"event": "x"},)
            )
            thread.start()
            thread.join()
            batch = await asyncio.wait_for(log.wait_beyond(0), timeout=5)
            assert [e["event"] for e in batch] == ["x"]

        asyncio.run(scenario())


class TestSubmitValidation:
    def test_bad_payloads_raise_submit_error(self, edge_file, tmp_path):
        async def scenario():
            _, manager, _, _ = await _service(tmp_path / "c", start=False)
            with pytest.raises(SubmitError, match="missing 'k'"):
                await manager.submit({"source": str(edge_file)})
            with pytest.raises(SubmitError, match="unknown submit key"):
                await manager.submit(_payload(edge_file, bogus=1))
            with pytest.raises(SubmitError, match="no such edge file"):
                await manager.submit(_payload(tmp_path / "missing.bin"))
            with pytest.raises(SubmitError, match="invalid job spec"):
                await manager.submit(_payload(edge_file, k=1))
            with pytest.raises(SubmitError, match="JSON object"):
                await manager.submit(["not", "a", "dict"])
            await manager.shutdown()

        asyncio.run(scenario())

    def test_bad_payloads_map_to_400_over_http(self, edge_file, tmp_path):
        async def scenario():
            _, manager, _, app = await _service(tmp_path / "c", start=False)
            status, doc = await _asgi_json(
                app, "POST", "/jobs", _payload(edge_file, bogus=1)
            )
            assert status == 400 and "bogus" in doc["error"]
            status, doc = await _asgi_json(app, "POST", "/jobs")
            assert status == 400
            await manager.shutdown()

        asyncio.run(scenario())

    def test_queue_full_is_503(self, edge_file, tmp_path):
        async def scenario():
            _, manager, _, app = await _service(
                tmp_path / "c", queue_size=1, start=False
            )
            status, _ = await _asgi_json(
                app, "POST", "/jobs", _payload(edge_file)
            )
            assert status == 201
            with pytest.raises(QueueFullError):
                await manager.submit(_payload(edge_file, k=4))
            status, doc = await _asgi_json(
                app, "POST", "/jobs", _payload(edge_file, k=16)
            )
            assert status == 503 and "full" in doc["error"]
            await manager.shutdown()

        asyncio.run(scenario())

    def test_unknown_routes_and_methods(self, tmp_path):
        async def scenario():
            _, manager, _, app = await _service(tmp_path / "c", start=False)
            assert (await _asgi(app, "GET", "/nope"))[0] == 404
            assert (await _asgi(app, "GET", "/jobs/deadbeef"))[0] == 404
            assert (await _asgi(app, "POST", "/healthz"))[0] == 405
            await manager.shutdown()

        asyncio.run(scenario())


class TestCancelQueued:
    def test_cancelled_queued_job_never_runs_and_resubmits_fresh(
        self, edge_file, tmp_path
    ):
        async def scenario():
            _, manager, _, app = await _service(tmp_path / "c", start=False)
            job, created = await manager.submit(_payload(edge_file))
            assert created and job.state == JobState.QUEUED
            status, doc = await _asgi_json(
                app, "POST", f"/jobs/{job.id}/cancel"
            )
            assert status == 202 and doc["state"] == JobState.CANCELLED
            assert job.events.closed
            # Cancelled is not a dedup target: the same payload makes a
            # fresh job under the same content-addressed id.
            job2, created2 = await manager.submit(_payload(edge_file))
            assert created2 and job2 is not job and job2.id == job.id
            status, _ = await _asgi_json(
                app, "POST", "/jobs/deadbeef/cancel"
            )
            assert status == 404
            await manager.shutdown()

        asyncio.run(scenario())


class TestServeEndToEnd:
    def test_concurrent_identical_submits_execute_once(
        self, manifest, tmp_path
    ):
        """The PR's acceptance scenario, manager-level."""
        async def scenario():
            store, manager, _, app = await _service(tmp_path / "cache")
            payload = _payload(manifest, workers=2)
            try:
                job1, created1 = await manager.submit(payload)
                # Subscribe *before* completion so the events stream live.
                collector = asyncio.ensure_future(_collect_events(job1))
                job2, created2 = await manager.submit(payload)
                assert created1 and not created2 and job1 is job2
                assert job1.submits == 2
                events = await asyncio.wait_for(collector, timeout=240)

                assert job1.state == JobState.SUCCEEDED
                assert manager.executions == 1
                assert job1.summary["job_hash"] == job1.spec.content_hash()
                assert job1.summary["k"] == K
                assert not job1.summary["cache_hit"]

                kinds = [e["event"] for e in events]
                assert kinds.count("dedup") == 1
                spans = [e for e in events if e["event"] == "span"]
                span_names = {e["span"] for e in spans}
                assert "partition" in span_names
                assert len(spans) >= 2  # pipeline spans, not just the root
                # Events arrive ordered by their sequence numbers.
                assert [e["seq"] for e in events] == list(range(len(events)))
                terminal = [e for e in events if e["event"] == "state"][-1]
                assert terminal["state"] == JobState.SUCCEEDED

                # A post-completion resubmit reuses the finished record.
                job3, created3 = await manager.submit(payload)
                assert job3 is job1 and not created3
                assert manager.executions == 1

                # Lookups answer from the stored artifact — still one
                # execution afterwards.
                status, edge = await _asgi_json(
                    app, "GET", f"/jobs/{job1.id}/edge/0"
                )
                assert status == 200 and 0 <= edge["part"] < K
                status, vertex = await _asgi_json(
                    app, "GET", f"/jobs/{job1.id}/vertex/0"
                )
                assert status == 200 and vertex["parts"]
                assert all(0 <= p < K for p in vertex["parts"])
                status, quality = await _asgi_json(
                    app, "GET", f"/jobs/{job1.id}/quality"
                )
                assert status == 200
                assert quality["replication_factor"] >= 1.0
                assert manager.executions == 1
            finally:
                await manager.shutdown()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))

    def test_http_round_trip_and_event_stream(self, edge_file, tmp_path):
        """The same scenario HTTP-shaped: every byte through the app."""
        async def scenario():
            store, manager, _, app = await _service(tmp_path / "cache")
            payload = _payload(edge_file)
            try:
                status, first = await _asgi_json(
                    app, "POST", "/jobs", payload
                )
                assert status == 201 and first["created"]
                job_id = first["id"]
                status, second = await _asgi_json(
                    app, "POST", "/jobs", payload
                )
                assert status == 200 and second["deduped"]
                assert second["id"] == job_id

                job = manager.jobs[job_id]
                await asyncio.wait_for(_collect_events(job), timeout=240)

                status, doc = await _asgi_json(
                    app, "GET", f"/jobs/{job_id}"
                )
                assert status == 200
                assert doc["state"] == JobState.SUCCEEDED
                assert doc["submits"] == 2

                # The snapshot endpoint replays the full NDJSON stream.
                status, blob = await _asgi(
                    app, "GET", f"/jobs/{job_id}/events", query="wait=0"
                )
                assert status == 200
                lines = [
                    json.loads(line)
                    for line in blob.decode().splitlines() if line
                ]
                assert sum(
                    1 for e in lines
                    if e["event"] == "span" and e["span"] == "partition"
                ) == 1
                assert any(e["event"] == "dedup" for e in lines)
                # …and ?since resumes mid-stream.
                status, tail = await _asgi(
                    app, "GET", f"/jobs/{job_id}/events",
                    query=f"wait=0&since={lines[-1]['seq']}",
                )
                assert json.loads(tail)["seq"] == lines[-1]["seq"]

                status, summary = await _asgi_json(
                    app, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                assert summary["job_hash"] == job.spec.content_hash()

                status, listing = await _asgi_json(app, "GET", "/jobs")
                assert status == 200
                assert [j["id"] for j in listing["jobs"]] == [job_id]

                status, health = await _asgi_json(app, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                assert health["executions"] == 1
                assert health["jobs"] == {JobState.SUCCEEDED: 1}
                assert health["pools"] == []
            finally:
                await manager.shutdown()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))

    def test_lookup_before_completion_is_409(self, edge_file, tmp_path):
        async def scenario():
            _, manager, _, app = await _service(tmp_path / "c", start=False)
            job, _ = await manager.submit(_payload(edge_file))
            for path in (
                f"/jobs/{job.id}/result",
                f"/jobs/{job.id}/edge/0",
                f"/jobs/{job.id}/quality",
            ):
                status, doc = await _asgi_json(app, "GET", path)
                assert status == 409, path
            await manager.shutdown()

        asyncio.run(scenario())

    def test_service_result_matches_direct_run_job(
        self, edge_file, tmp_path
    ):
        """The service is a transport, not a different computation."""
        from repro.runtime import make_job, run_job

        direct = run_job(make_job("HDRF", edge_file, K, chunk_size=256))

        async def scenario():
            store, manager, cache, _ = await _service(tmp_path / "cache")
            try:
                job, _ = await manager.submit(_payload(edge_file))
                await asyncio.wait_for(_collect_events(job), timeout=240)
                assert job.state == JobState.SUCCEEDED
                artifact = cache.attach(job.key)
                assert np.array_equal(artifact.parts, direct.parts)
                assert artifact.quality()["replication_factor"] == (
                    direct.replication_factor
                )
            finally:
                await manager.shutdown()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))

    def test_second_service_instance_hits_the_shared_store(
        self, edge_file, tmp_path
    ):
        """A restarted service reuses the artifact store across runs."""
        async def run_once():
            store, manager, _, _ = await _service(tmp_path / "cache")
            try:
                job, _ = await manager.submit(_payload(edge_file))
                await asyncio.wait_for(_collect_events(job), timeout=240)
                assert job.state == JobState.SUCCEEDED
                return job.summary["cache_hit"], manager.executions
            finally:
                await manager.shutdown()

        cold_hit, cold_execs = asyncio.run(run_once())
        warm_hit, warm_execs = asyncio.run(run_once())
        assert (cold_hit, cold_execs) == (False, 1)
        # The second service's run is an execution (its manager counts
        # it) but the runtime answers from the store: cache_hit is set.
        assert (warm_hit, warm_execs) == (True, 1)


class TestArtifactCacheLRU:
    def test_capacity_evicts_least_recently_used(self, edge_file, tmp_path):
        async def scenario():
            store, manager, _, _ = await _service(tmp_path / "cache")
            try:
                keys = []
                for k in (4, 8, 16):
                    job, _ = await manager.submit(_payload(edge_file, k=k))
                    await asyncio.wait_for(
                        _collect_events(job), timeout=240
                    )
                    assert job.state == JobState.SUCCEEDED
                    keys.append(job.key)
                cache = ArtifactCache(store, capacity=2)
                for key in keys:
                    cache.attach(key)
                assert len(cache) == 2
                # Oldest evicted; re-attach reloads it from the store.
                assert cache.attach(keys[0]).key == keys[0]
            finally:
                await manager.shutdown()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))

"""Scoring functions for stateful streaming partitioning (Algorithm 4).

Each scorer rates the placement of one edge on *all* ``k`` partitions at
once (a numpy vector), so the per-edge cost is a handful of vectorized
operations instead of a Python loop over partitions.

The HDRF score follows Petroni et al. (CIKM'15), the configuration the
paper uses for both the standalone HDRF baseline and HEP's streaming
phase (with ``lambda = 1.1``):

    C_REP(e, p) = g(u, p) + g(v, p)
    g(v, p)     = 1 + (1 - theta(v))   if v is replicated on p, else 0
    theta(v)    = d(v) / (d(u) + d(v))
    C_BAL(p)    = lambda * (maxload - load(p)) / (eps + maxload - minload)
    score       = C_REP + C_BAL

Partitions at capacity receive ``-inf`` so the hard balance constraint of
Algorithm 4 (only partitions with ``|p| < alpha |E| / k`` compete) is
honored.
"""

from __future__ import annotations

import numpy as np

from repro.partition.state import StreamingState

__all__ = ["hdrf_scores", "hdrf_best_scores", "greedy_choose", "NEG_INF"]

NEG_INF = -np.inf


def hdrf_scores(
    state: StreamingState,
    u: int,
    v: int,
    lam: float = 1.1,
    eps: float = 1.0,
) -> np.ndarray:
    """HDRF score of placing edge ``(u, v)`` on every partition."""
    du = state.degrees[u]
    dv = state.degrees[v]
    total = du + dv
    theta_u = du / total if total else 0.5
    theta_v = 1.0 - theta_u

    rep_u = state.replicas[:, u]
    rep_v = state.replicas[:, v]
    score = rep_u * (2.0 - theta_u) + rep_v * (2.0 - theta_v)

    loads = state.loads
    maxload = loads.max()
    minload = loads.min()
    score = score + lam * (maxload - loads) / (eps + maxload - minload)

    return np.where(state.open_mask(), score, NEG_INF)


def hdrf_best_scores(
    state: StreamingState,
    us: np.ndarray,
    vs: np.ndarray,
    lam: float = 1.1,
    eps: float = 1.0,
) -> np.ndarray:
    """Best achievable HDRF score of each edge ``(us[i], vs[i])``.

    One vectorized evaluation of :func:`hdrf_scores` over a whole batch
    against the *current* state — the ranking step of the buffered
    scoring window (:mod:`repro.stream.buffered`).  Returns a ``(B,)``
    float array (``-inf`` where no partition has room).
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    du = state.degrees[us].astype(np.float64)
    dv = state.degrees[vs].astype(np.float64)
    total = du + dv
    theta_u = np.where(total > 0, du / np.where(total > 0, total, 1.0), 0.5)
    theta_v = 1.0 - theta_u

    rep_u = state.replicas[:, us]          # (k, B)
    rep_v = state.replicas[:, vs]
    scores = rep_u * (2.0 - theta_u) + rep_v * (2.0 - theta_v)

    loads = state.loads
    maxload = loads.max()
    minload = loads.min()
    bal = lam * (maxload - loads) / (eps + maxload - minload)
    scores = scores + bal[:, None]
    scores[~state.open_mask(), :] = NEG_INF
    return scores.max(axis=0)


def greedy_choose(
    state: StreamingState,
    u: int,
    v: int,
    remaining_u: int,
    remaining_v: int,
) -> int:
    """PowerGraph's greedy heuristic: pick a partition for edge ``(u, v)``.

    Case analysis (Gonzalez et al., OSDI'12), restricted to partitions
    below capacity:

    1. ``A(u) ∩ A(v)`` non-empty -> least loaded partition in it.
    2. both non-empty but disjoint -> least loaded partition of the
       endpoint with more *unassigned* edges left (it will need more
       placements, so keep its options open).
    3. exactly one non-empty -> least loaded partition in it.
    4. both empty -> least loaded partition overall.

    Returns ``-1`` if every partition is full.
    """
    open_mask = state.open_mask()
    if not open_mask.any():
        return -1
    rep_u = state.replicas[:, u] & open_mask
    rep_v = state.replicas[:, v] & open_mask
    both = rep_u & rep_v
    if both.any():
        return _least_loaded(state.loads, both)
    if rep_u.any() and rep_v.any():
        pick_u = remaining_u >= remaining_v
        return _least_loaded(state.loads, rep_u if pick_u else rep_v)
    if rep_u.any():
        return _least_loaded(state.loads, rep_u)
    if rep_v.any():
        return _least_loaded(state.loads, rep_v)
    return _least_loaded(state.loads, open_mask)


def _least_loaded(loads: np.ndarray, mask: np.ndarray) -> int:
    """Index of the minimum-load partition among ``mask``."""
    candidates = np.flatnonzero(mask)
    return int(candidates[np.argmin(loads[candidates])])

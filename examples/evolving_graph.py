#!/usr/bin/env python
"""Maintaining a partitioning while the graph evolves.

Real deployments rarely re-partition from scratch: edges arrive (new
follows, new links) and leave.  This example partitions a social-network
stand-in with HEP once, then absorbs a stream of insertions and
deletions through :class:`repro.core.IncrementalHep` — the
incrementalization direction the paper's related work points at — and
compares the maintained quality against periodic full re-partitioning.

Run:  python examples/evolving_graph.py
"""

import time

import numpy as np

from repro import HepPartitioner, datasets, replication_factor
from repro.core import IncrementalHep


def main() -> None:
    graph = datasets.load("LJ")
    k = 16
    print(f"graph: {graph!r}, k={k}")

    start = time.perf_counter()
    inc = IncrementalHep(graph, k=k, tau=2.0)
    build_time = time.perf_counter() - start
    print(f"initial HEP partitioning: RF={inc.replication_factor():.3f} "
          f"({build_time:.2f}s)\n")

    rng = np.random.default_rng(9)
    existing = {(min(u, v), max(u, v)) for u, v in graph.edges.tolist()}
    churn_per_round = graph.num_edges // 50  # 2% churn per round

    print(f"{'round':>5} | {'edges':>7} | {'RF (maintained)':>15} | "
          f"{'RF (from scratch)':>17} | {'update ms/edge':>14}")
    for rnd in range(1, 4):
        start = time.perf_counter()
        changed = 0
        while changed < churn_per_round:
            u, v = (int(x) for x in rng.integers(0, graph.num_vertices, size=2))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in existing and rng.random() < 0.3:
                inc.delete_edge(u, v)
                existing.discard(key)
                changed += 1
            elif key not in existing:
                inc.insert_edge(u, v)
                existing.add(key)
                changed += 1
        update_time = time.perf_counter() - start

        snapshot = inc.current_assignment()
        scratch = HepPartitioner(tau=2.0).partition(snapshot.graph, k)
        print(
            f"{rnd:>5} | {inc.num_edges:>7,} | {inc.replication_factor():>15.3f} |"
            f" {replication_factor(scratch):>17.3f} |"
            f" {update_time / churn_per_round * 1000:>14.3f}"
        )

    print("\nmaintained RF tracks the from-scratch RF at a per-update cost")
    print("of one score evaluation — no re-partitioning required.")


if __name__ == "__main__":
    main()

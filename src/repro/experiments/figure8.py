"""Figure 8: replication factor / run-time / memory for HEP vs 7 baselines.

The headline evaluation: HEP-{100,10,1} against ADWISE, HDRF, DBH, SNE,
NE, DNE and METIS over the dataset sweep and k in {4, 32(, 128, 256)}.
Replication factor and run-time are measured; memory is the Section 4.2
analytic model (see DESIGN.md).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    dataset_list,
    full_mode,
    k_values,
    load_dataset,
    run_partitioner,
)
from repro.experiments.paper_reference import FIGURE8_ANCHORS, SHAPES

__all__ = ["run", "DEFAULT_PARTITIONERS"]

DEFAULT_PARTITIONERS = (
    "HEP-100",
    "HEP-10",
    "HEP-1",
    "ADWISE",
    "HDRF",
    "DBH",
    "SNE",
    "NE",
    "DNE",
    "METIS",
)

_DEFAULT_GRAPHS = ("OK", "IT")
_FULL_GRAPHS = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(
    graphs: tuple[str, ...] | None = None,
    partitioners: tuple[str, ...] = DEFAULT_PARTITIONERS,
    ks: tuple[int, ...] | None = None,
) -> ExperimentResult:
    names = list(graphs) if graphs else dataset_list(_DEFAULT_GRAPHS, _FULL_GRAPHS)
    k_list = list(ks) if ks else k_values()
    rows: list[dict[str, object]] = []
    for graph_name in names:
        graph = load_dataset(graph_name)
        for k in k_list:
            for partitioner in partitioners:
                report = run_partitioner(partitioner, graph, k)
                rows.append(report.row())
    result = ExperimentResult(
        experiment_id="figure8",
        title="Partitioning quality / run-time / memory sweep",
        rows=rows,
        paper_shape=SHAPES["figure8"],
    )
    _annotate_orderings(result)
    if not full_mode():
        result.notes.append(
            "default sweep trimmed to OK/IT at k in {4,32}; set"
            " REPRO_BENCH_FULL=1 for the paper's full grid"
        )
    for (graph, k), anchors in FIGURE8_ANCHORS.items():
        result.notes.append(f"paper anchors {graph}@k={k}: {anchors}")
    return result


def _annotate_orderings(result: ExperimentResult) -> None:
    """Check the figure's headline orderings on the measured rows."""
    index: dict[tuple[str, int, str], dict[str, object]] = {
        (str(r["graph"]), int(r["k"]), str(r["partitioner"])): r
        for r in result.rows
    }
    graphs = {str(r["graph"]) for r in result.rows}
    ks = {int(r["k"]) for r in result.rows}
    for graph in sorted(graphs):
        for k in sorted(ks):
            def rf(name: str) -> float | None:
                row = index.get((graph, k, name))
                return float(row["RF"]) if row else None

            ne, hep100, hep1, hdrf, dbh = (
                rf("NE"), rf("HEP-100"), rf("HEP-1"), rf("HDRF"), rf("DBH"))
            if None in (ne, hep100, hep1, hdrf):
                continue
            quality_chain = ne <= hep100 * 1.1 and hep100 <= hep1 * 1.1 and hep1 <= max(hdrf, dbh or hdrf)
            mem100 = index[(graph, k, "HEP-100")].get("mem_MiB")
            mem1 = index[(graph, k, "HEP-1")].get("mem_MiB")
            mem_ne = index.get((graph, k, "NE"), {}).get("mem_MiB")
            mem_chain = (
                mem1 is not None and mem100 is not None and mem_ne is not None
                and float(mem1) <= float(mem100) <= float(mem_ne)
            )
            result.notes.append(
                f"{graph}@k={k}: RF chain NE<=HEP-100<=HEP-1<=streaming holds="
                f"{quality_chain}; memory chain HEP-1<=HEP-100<=NE holds={mem_chain}"
            )

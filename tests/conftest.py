"""Shared test configuration.

Hypothesis is tuned for determinism in CI: fixed derandomization keeps
flaky shrink-search noise out of the suite while the explicit seeds in
the generators keep the workloads reproducible.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")

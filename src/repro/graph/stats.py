"""Degree statistics and the degree-bucket machinery behind Figure 2.

Figure 2 of the paper plots, per decade-sized degree range (``[1, 10]``,
``[11, 100]``, ...), both the fraction of vertices in that range and the
average replication factor of those vertices.  The bucketing lives here;
the replication side lives in :mod:`repro.metrics.replication`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["GraphStats", "describe", "degree_buckets", "bucket_labels"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (Table 3 style row)."""

    name: str
    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    median_degree: float
    degree_p99: float
    binary_size_bytes: int
    skew: float = field(default=0.0)

    def row(self) -> dict[str, object]:
        """Dict form used by table printers."""
        return {
            "name": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "mean_deg": round(self.mean_degree, 2),
            "max_deg": self.max_degree,
            "size_MiB": round(self.binary_size_bytes / 2**20, 3),
        }


def describe(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    deg = graph.degrees
    nonzero = deg[deg > 0]
    if nonzero.size == 0:
        return GraphStats(graph.name, graph.num_vertices, 0, 0.0, 0, 0.0, 0.0, 0)
    mean = float(nonzero.mean())
    # Degree skew: ratio of p99 degree to median — a scale-free signature.
    median = float(np.median(nonzero))
    p99 = float(np.percentile(nonzero, 99))
    skew = p99 / median if median else 0.0
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=graph.mean_degree,
        max_degree=int(nonzero.max()),
        median_degree=median,
        degree_p99=p99,
        binary_size_bytes=graph.binary_size_bytes(),
        skew=skew,
    )


def degree_buckets(degrees: np.ndarray) -> np.ndarray:
    """Decade bucket index per vertex: 0 for degree 1-10, 1 for 11-100, ...

    Degree-0 vertices get bucket ``-1`` (excluded from Figure 2).
    """
    degrees = np.asarray(degrees)
    bucket = np.full(degrees.shape, -1, dtype=np.int64)
    pos = degrees > 0
    bucket[pos] = np.ceil(np.log10(np.maximum(degrees[pos], 1))).astype(np.int64)
    # Degree 1..10 -> ceil(log10 d) in {0, 1}; force degree 1..10 into bucket 0.
    bucket[pos] = np.maximum(bucket[pos] - 1, 0)
    bucket[pos & (degrees <= 10)] = 0
    return bucket


def bucket_labels(num_buckets: int) -> list[str]:
    """Human labels for the decade buckets: '1-10', '11-100', ..."""
    labels = []
    lo = 1
    for index in range(num_buckets):
        hi = 10 ** (index + 1)
        labels.append(f"{lo}-{hi}")
        lo = hi + 1
    return labels

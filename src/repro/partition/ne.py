"""NE: neighborhood-expansion in-memory edge partitioning (Algorithm 1).

Zhang et al. (KDD'17) — the best-quality non-multilevel partitioner in
the paper's evaluation and the algorithm NE++ rebuilds.  This module
implements the *reference-style* NE the paper uses as a baseline:

* the complete, unpruned graph is loaded into the CSR,
* every edge assignment is tracked **eagerly** in an auxiliary
  ``assigned`` array (the bookkeeping whose memory and cache cost NE++'s
  lazy removal eliminates),
* seeds are drawn in randomized order (the reference implementation's
  strategy, made terminating by sampling without replacement).

Partitions are grown one at a time: a seed joins the *core set* ``C``,
its neighbors join the *secondary set* ``S_i``, and each expansion step
cores the boundary vertex with the smallest external degree.  Edges are
assigned the moment both endpoints are inside ``C ∪ S_i``; when the
partition hits its capacity mid-step, the remaining edges of that step
spill over to the next partition (Algorithm 1, lines 25-28).

The optional :class:`NeHistory` instrumentation records the degree of
every vertex at the moment it is cored versus the degrees of vertices
left in the secondary set — exactly the measurement behind the paper's
Figure 5 (and the empirical justification for NE++'s "no expansion via a
high-degree vertex" rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._ds import IndexedMinHeap
from repro.graph.csr import CsrGraph
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound

__all__ = ["NePartitioner", "NeHistory"]


@dataclass
class NeHistory:
    """Figure 5 instrumentation: who gets cored vs. who stays secondary."""

    core_degrees: list[int] = field(default_factory=list)
    secondary_end_degrees: list[int] = field(default_factory=list)

    def normalized_core_degree(self, mean_degree: float) -> float:
        """Average degree of cored vertices / graph mean degree."""
        if not self.core_degrees or mean_degree == 0:
            return 0.0
        return float(np.mean(self.core_degrees)) / mean_degree

    def normalized_secondary_degree(self, mean_degree: float) -> float:
        """Average degree of end-of-partition secondary vertices / mean."""
        if not self.secondary_end_degrees or mean_degree == 0:
            return 0.0
        return float(np.mean(self.secondary_end_degrees)) / mean_degree


class NePartitioner(Partitioner):
    """Baseline NE with eager edge bookkeeping."""

    def __init__(self, seed: int = 0, record_history: bool = False) -> None:
        self.seed = seed
        self.record_history = record_history
        self.history: NeHistory | None = None
        self.name = "NE"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Grow k neighborhood-expansion cores over the whole edge set."""
        self._require_k(graph, k)
        run = _NeRun(graph, k, self.seed, self.record_history)
        parts = run.execute()
        self.history = run.history
        return PartitionAssignment(graph, k, parts)


class _NeRun:
    """One partitioning execution (keeps NePartitioner reusable)."""

    def __init__(self, graph: Graph, k: int, seed: int, record: bool) -> None:
        self.graph = graph
        self.k = k
        self.csr = CsrGraph.build(graph)
        self.n = graph.num_vertices
        self.m = graph.num_edges
        self.capacity = capacity_bound(self.m, k)
        self.parts = np.full(self.m, -1, dtype=np.int32)
        # The eager auxiliary structure NE++ gets rid of:
        self.assigned = np.zeros(self.m, dtype=bool)
        self.in_core = np.zeros(self.n, dtype=bool)
        self.in_secondary = np.zeros(self.n, dtype=bool)  # current partition
        self.loads = np.zeros(k, dtype=np.int64)
        self.heap = IndexedMinHeap()
        self.current = 0
        self.seed_order = np.random.default_rng(seed).permutation(self.n)
        self.seed_cursor = 0
        self.history = NeHistory() if record else None
        self.assigned_total = 0

    # -- driver ---------------------------------------------------------------

    def execute(self) -> np.ndarray:
        for i in range(self.k):
            self.current = i
            self.in_secondary[:] = False
            self.heap.clear()
            self._expand_partition()
            if self.history is not None:
                members = np.flatnonzero(self.in_secondary & ~self.in_core)
                self.history.secondary_end_degrees.extend(
                    self.graph.degrees[members].tolist()
                )
            if self.assigned_total >= self.m:
                break
        return self.parts

    def _expand_partition(self) -> None:
        i = self.current
        while self.loads[i] < self.capacity and self.assigned_total < self.m:
            if self.heap:
                v, _ = self.heap.pop_min()
                self._move_to_core(v)
            elif not self._initialize():
                return

    def _initialize(self) -> bool:
        """Algorithm 1, Initialize: pick a fresh random seed outside C."""
        while self.seed_cursor < self.n:
            v = int(self.seed_order[self.seed_cursor])
            self.seed_cursor += 1
            if self.in_core[v] or self._unassigned_degree(v) == 0:
                continue
            self._move_to_core(v)
            return True
        return False

    def _unassigned_degree(self, v: int) -> int:
        nbrs, eids = self.csr.adjacency(v)
        if eids.size == 0:
            return 0
        return int((~self.assigned[eids]).sum())

    # -- expansion steps ----------------------------------------------------------

    def _move_to_core(self, v: int) -> None:
        self.in_core[v] = True
        if self.history is not None:
            self.history.core_degrees.append(int(self.graph.degrees[v]))
        nbrs, eids = self.csr.adjacency(v)
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if self.assigned[eid]:
                continue
            if not (self.in_core[w] or self.in_secondary[w]):
                self._move_to_secondary(w)

    def _move_to_secondary(self, v: int) -> None:
        self.in_secondary[v] = True
        dext = 0
        nbrs, eids = self.csr.adjacency(v)
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if self.assigned[eid]:
                continue
            if self.in_core[w] or self.in_secondary[w]:
                self._assign(eid)
                if w in self.heap:
                    self.heap.decrement(w)
            else:
                dext += 1
        self.heap.push(v, dext)

    def _assign(self, eid: int) -> None:
        i = self.current
        # Spill over to the next partition(s) with room (Algorithm 1,
        # lines 25-28); one giant expansion step may cascade further.
        while self.loads[i] >= self.capacity and i + 1 < self.k:
            i += 1
        self.parts[eid] = i
        self.loads[i] += 1
        self.assigned[eid] = True
        self.assigned_total += 1

"""Random streaming partitioning.

Assigns each edge to a uniformly random partition with room left.  No
scoring function at all — this is the phase-two strategy of the *simple
hybrid baseline* in Section 5.4, where the paper shows that HDRF beats
random streaming on partitioning quality by up to ~12x while random is
faster (no scores to compute).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.dbh import repair_overflow

__all__ = ["RandomStreamPartitioner", "random_stream"]


def random_stream(
    num_edges: int,
    eids: np.ndarray,
    parts_out: np.ndarray,
    k: int,
    capacity: int,
    loads: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Assign ``eids`` uniformly at random subject to ``capacity``.

    ``loads`` (mutated in place if given) lets HEP's simple-hybrid
    baseline account for edges already placed by the in-memory phase.
    Returns the final load vector.
    """
    rng = np.random.default_rng(seed)
    if loads is None:
        loads = np.zeros(k, dtype=np.int64)
    draws = rng.integers(0, k, size=num_edges)
    for i in range(num_edges):
        p = int(draws[i])
        if loads[p] >= capacity:
            open_parts = np.flatnonzero(loads < capacity)
            p = int(rng.choice(open_parts))
        loads[p] += 1
        parts_out[eids[i]] = p
    return loads


class RandomStreamPartitioner(Partitioner):
    """Uniform random edge placement under the balance constraint."""

    def __init__(self, alpha: float = 1.0, seed: int = 0) -> None:
        self.alpha = alpha
        self.seed = seed
        self.name = "Random"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Assign every edge uniformly at random, repairing overflow."""
        self._require_k(graph, k)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        rng = np.random.default_rng(self.seed)
        parts = rng.integers(0, k, size=graph.num_edges).astype(np.int32)
        parts = repair_overflow(parts, k, capacity)
        return PartitionAssignment(graph, k, parts)

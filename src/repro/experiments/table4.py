"""Table 4: distributed graph processing under different partitionings.

Partition OK/IT/TW with HEP-{100,10,1}, NE, SNE, HDRF and DBH (k=32),
then run PageRank (100 iterations), BFS (10 seeds) and Connected
Components on the simulated Spark/GraphX cluster.  The paper's findings
to reproduce: low replication factor buys processing time on long jobs;
DBH's instant partitioning wins short jobs on total time; on the
well-partitionable web graph, vertex balance decides the winner.
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentResult, load_dataset, make_partitioner
from repro.experiments.paper_reference import (
    SHAPES,
    TABLE4_CC_S,
    TABLE4_PAGERANK_S,
    TABLE4_REPLICATION_FACTOR,
)
from repro.metrics import replication_factor
from repro.processing import VertexCutEngine, bfs, connected_components, pagerank

__all__ = ["run", "TABLE4_PARTITIONERS"]

TABLE4_PARTITIONERS = ("HEP-100", "HEP-10", "HEP-1", "NE", "SNE", "HDRF", "DBH")
_GRAPHS = ("OK", "IT", "TW")


def run(
    graphs: tuple[str, ...] = _GRAPHS,
    partitioners: tuple[str, ...] = TABLE4_PARTITIONERS,
    k: int = 32,
    pagerank_iterations: int = 100,
    bfs_seeds: int = 10,
) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name)
        for name in partitioners:
            partitioner = make_partitioner(name)
            start = time.perf_counter()
            assignment = partitioner.partition(graph, k)
            partition_time = time.perf_counter() - start
            engine = VertexCutEngine(assignment)
            pr = pagerank(engine, iterations=pagerank_iterations)
            bf = bfs(engine, num_seeds=bfs_seeds, seed=1)
            cc = connected_components(engine)
            rows.append(
                {
                    "graph": graph_name,
                    "partitioner": name,
                    "partition_s": round(partition_time, 2),
                    "RF": round(replication_factor(assignment), 2),
                    "paper_RF": TABLE4_REPLICATION_FACTOR.get(name, {}).get(
                        graph_name, "-"
                    ),
                    "PageRank_s": round(pr.sim_seconds, 1),
                    "paper_PR_s": TABLE4_PAGERANK_S.get(name, {}).get(
                        graph_name, "-"
                    ),
                    "BFS_s": round(bf.sim_seconds, 1),
                    "CC_s": round(cc.sim_seconds, 1),
                    "paper_CC_s": TABLE4_CC_S.get(name, {}).get(graph_name, "-"),
                }
            )
    result = ExperimentResult(
        experiment_id="table4",
        title=f"Simulated Spark/GraphX processing (k={k})",
        rows=rows,
        paper_shape=SHAPES["table4"],
    )
    _annotate(result, graphs)
    return result


def _annotate(result: ExperimentResult, graphs: tuple[str, ...]) -> None:
    for graph_name in graphs:
        per = {str(r["partitioner"]): r for r in result.rows if r["graph"] == graph_name}
        if not per:
            continue
        best_pr = min(per, key=lambda p: float(per[p]["PageRank_s"]))
        hep_like = {"HEP-100", "HEP-10", "HEP-1", "NE"}
        result.notes.append(
            f"{graph_name}: fastest PageRank={best_pr} "
            f"(low-RF partitioner wins long jobs: {best_pr in hep_like})"
        )
        total_cc = {
            p: float(per[p]["partition_s"]) + float(per[p]["CC_s"]) for p in per
        }
        best_total_cc = min(total_cc, key=total_cc.get)
        result.notes.append(
            f"{graph_name}: best total (partition+CC)={best_total_cc} "
            f"(fast hashing wins short jobs: {best_total_cc == 'DBH'})"
        )

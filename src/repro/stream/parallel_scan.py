"""Worker-parallel counting & metrics passes over segmentable sources.

PR 4 parallelized the *streaming phase*; this module parallelizes the
two remaining sequential ``O(m)`` sweeps — the counting pass and the
quality/metrics pass (:mod:`repro.stream.scan`) — on the same worker
machinery (:class:`~repro.stream.workers.BaseWorkerPool`, the shard
assignment of :func:`~repro.stream.workers.plan_worker_segments`, the
spill-frame wire format).  Both passes are pure order-independent
reductions, so the parallel runs are **bit-identical** to the
sequential references:

* **counting** (:func:`parallel_scan_source`) — each worker sweeps its
  shard assignment accumulating a partial degree array and edge count
  (:func:`~repro.stream.scan.accumulate_degrees`, the same chunk step
  the sequential pass runs); the coordinator *sums* the partials and
  applies the identical declared-universe reconciliation
  (:func:`~repro.stream.scan.finalize_source_stats`).
* **metrics** (:func:`parallel_chunked_quality`) — each worker sweeps
  its assignment marking per-partition vertex covers as packed bits
  (:class:`~repro.stream.scan.PackedCover`, ``k x n`` true bits); the
  coordinator *ORs* the partial covers and popcounts the merge.  The
  column-blocked budget fallback (:func:`~repro.stream.scan.
  plan_cover_blocks`) applies unchanged: every process holds at most
  one block's cover at a time, so ``--memory-budget`` bounds worker
  memory too (each worker pays one cover — the same replication price
  the BSP snapshot already set a precedent for).

Failure semantics are the pool's: a worker that dies or hits a corrupt
shard surfaces as one :class:`~repro.errors.WorkerFailureError` and no
process is orphaned.

The front doors :func:`scan_stats` / :func:`scan_quality` pick the
parallel path when the source is segmentable on disk
(:func:`supports_parallel_scan`: a shard manifest or flat binary edge
file) and ``workers > 1``, and fall back to the sequential pass on the
already-opened chunk source otherwise.  Since PR 8 the runtime
executors (:mod:`repro.runtime.executor`) are the callers for every
partitioning job — the legacy drivers are shims over
:func:`repro.runtime.api.run_job` — while
:mod:`repro.stream.extsort` and the ``scan`` CLI command still wire
the front doors directly.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError, WorkerFailureError
from repro.obs.tracer import get_tracer, install_collecting_tracer
from repro.parallel.shm import SharedArray
from repro.stream.reader import (
    BINARY_SUFFIXES,
    DEFAULT_CHUNK_SIZE,
    EdgeChunkSource,
    _validate_chunk,
)
from repro.stream.scan import (
    PackedCover,
    SourceStats,
    accumulate_degrees,
    chunked_quality,
    finalize_source_stats,
    plan_cover_blocks,
    scan_source,
)
from repro.stream.shard import is_manifest_path
from repro.stream.workers import (
    _claim_pipe,
    _iter_segment,
    _MSG_ERROR,
    _MSG_TRACE,
    _pack_message,
    _unpack_message,
    BaseWorkerPool,
    PersistentWorkerPool,
    plan_worker_segments,
)

__all__ = [
    "supports_parallel_scan",
    "effective_scan_workers",
    "parallel_scan_source",
    "parallel_chunked_quality",
    "scan_stats",
    "scan_quality",
    "DEFAULT_SCAN_TIMEOUT",
]

#: seconds the coordinator waits on a silent scan worker.  Unlike the
#: BSP pool (which hears from every worker once per superstep, so its
#: 120s default means real silence), a scan worker's first bytes arrive
#: only after it sweeps its whole shard assignment — minutes of healthy
#: silence on big inputs — so the hang watchdog is far more generous.
#: A *dead* worker is still detected promptly via process liveness.
DEFAULT_SCAN_TIMEOUT = 3600.0

# message tags (the spill-frame wire format of repro.stream.workers)
_MSG_COUNTS = b"G"  # worker -> coord: int64 edge count + partial degrees
_MSG_COVER = b"C"   # worker -> coord: one block's packed cover words


def _resurface_error(pool: BaseWorkerPool, w: int, payload) -> None:
    """Re-raise a worker's forwarded exception with sequential-pass types.

    The scan sweeps are deterministic reads, so a data problem a worker
    hits (a truncated or malformed shard) is the *source's* fault and
    resurfaces as :class:`~repro.errors.GraphFormatError` — exactly what
    the sequential pass would have raised in-process.  Anything else
    stays a :class:`~repro.errors.WorkerFailureError` via the pool.
    """
    try:
        exc_type, message = pickle.loads(bytes(payload))
    except Exception:  # noqa: BLE001 — corrupt error payloads
        pool._raise_worker_error(w, payload)
        return
    if exc_type == "GraphFormatError":
        raise GraphFormatError(
            f"{message} (read by {pool._describe_worker(w)})"
        )
    pool._raise_worker_error(w, payload)


def supports_parallel_scan(source) -> bool:
    """True when ``source`` names an on-disk stream workers can split.

    The scan pools assign work with :func:`~repro.stream.workers.
    plan_worker_segments`, which understands shard manifests and flat
    binary edge files.  Dataset names, in-memory graphs, text files and
    already-opened sources fall back to the sequential pass.
    """
    if isinstance(source, EdgeChunkSource) or not isinstance(
        source, (str, os.PathLike)
    ):
        return False
    path = Path(source)
    if not path.exists():
        return False
    return is_manifest_path(path) or path.suffix in BINARY_SUFFIXES


def effective_scan_workers(source, workers: int) -> int:
    """Workers the front doors will actually fan out over (0 = sequential).

    The single source of truth for the parallel-vs-sequential decision:
    :func:`scan_stats`, :func:`scan_quality` and the CLI's ``scan
    passes`` report all call this, so what is printed always matches
    what ran.
    """
    return workers if workers > 1 and supports_parallel_scan(source) else 0


# -- worker entry points ----------------------------------------------------


def _run_count(conn, tracer, worker_id: int, segments, chunk_size: int
               ) -> None:
    """The counting sweep itself: shared by cold workers and warm jobs."""
    perf = time.perf_counter
    with tracer.span("worker_count", worker=worker_id) as span:
        t0 = perf()
        degrees = np.zeros(0, dtype=np.int64)
        num_edges = 0
        for segment in segments:
            path = Path(segment.path)
            for pairs, _eids in _iter_segment(segment, chunk_size):
                _validate_chunk(pairs, path)
                num_edges += pairs.shape[0]
                degrees = accumulate_degrees(degrees, pairs)
        busy_s = perf() - t0
        t0 = perf()
        payload = (
            np.array([num_edges], dtype="<i8").tobytes()
            + np.ascontiguousarray(degrees, dtype="<i8").tobytes()
        )
        message = _pack_message(_MSG_COUNTS, degrees.size, payload)
        encode_s = perf() - t0
        t0 = perf()
        conn.send_bytes(message)
        send_s = perf() - t0
        for name, value in (
            ("busy_s", busy_s), ("encode_s", encode_s),
            ("send_s", send_s), ("edges_scanned", num_edges),
            ("frames_sent", 1), ("bytes_piped", len(message)),
        ):
            span.add(name, value)


def _run_cover(
    conn, tracer, worker_id: int, segments, chunk_size: int, k: int,
    parts: np.ndarray, blocks,
) -> None:
    """The metrics sweep itself: shared by cold workers and warm jobs."""
    perf = time.perf_counter
    with tracer.span("worker_cover", worker=worker_id) as span:
        busy_s = encode_s = send_s = 0.0
        edges = piped = 0
        parts = np.asarray(parts)
        for index, (lo, hi) in enumerate(blocks):
            t0 = perf()
            cover = PackedCover(k, lo, hi)
            for segment in segments:
                path = Path(segment.path)
                for pairs, eids in _iter_segment(segment, chunk_size):
                    _validate_chunk(pairs, path)
                    cover.mark_assignment(parts, pairs, eids)
                    edges += pairs.shape[0]
            busy_s += perf() - t0
            t0 = perf()
            message = _pack_message(
                _MSG_COVER, index, cover.words.tobytes()
            )
            encode_s += perf() - t0
            t0 = perf()
            conn.send_bytes(message)
            send_s += perf() - t0
            piped += len(message)
        for name, value in (
            ("busy_s", busy_s), ("encode_s", encode_s),
            ("send_s", send_s), ("edges_scanned", edges),
            ("frames_sent", len(blocks)), ("bytes_piped", piped),
        ):
            span.add(name, value)


def _counting_worker_main(
    worker_id: int, pipes: list, segments, chunk_size: int,
    trace: bool = False,
) -> None:
    """One counting worker: partial degrees + edge count over its segments."""
    conn = _claim_pipe(worker_id, pipes)
    tracer = install_collecting_tracer(trace)
    try:
        _run_count(conn, tracer, worker_id, segments, chunk_size)
        if trace:
            conn.send_bytes(
                _pack_message(_MSG_TRACE, 0, pickle.dumps(tracer.drain()))
            )
    except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
        try:
            conn.send_bytes(
                _pack_message(
                    _MSG_ERROR, 0,
                    pickle.dumps((type(exc).__name__, str(exc))),
                )
            )
        except OSError:
            pass  # coordinator already gone; exit quietly
    finally:
        conn.close()


def _cover_worker_main(
    worker_id: int,
    pipes: list,
    segments,
    chunk_size: int,
    k: int,
    parts: np.ndarray,
    blocks,
    trace: bool = False,
) -> None:
    """One metrics worker: per-block packed covers over its segments."""
    conn = _claim_pipe(worker_id, pipes)
    tracer = install_collecting_tracer(trace)
    try:
        _run_cover(
            conn, tracer, worker_id, segments, chunk_size, k, parts, blocks
        )
        if trace:
            conn.send_bytes(
                _pack_message(_MSG_TRACE, 0, pickle.dumps(tracer.drain()))
            )
    except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
        try:
            conn.send_bytes(
                _pack_message(
                    _MSG_ERROR, 0,
                    pickle.dumps((type(exc).__name__, str(exc))),
                )
            )
        except OSError:
            pass
    finally:
        conn.close()


# -- warm-pool job handlers (see workers.PersistentWorkerPool) ---------------


def _count_job(context, *, segments, chunk_size: int) -> None:
    """Counting sweep as a warm-pool job (the job loop owns trace/errors)."""
    _run_count(
        context.conn, context.tracer, context.worker_id, segments, chunk_size
    )


def _cover_job(
    context,
    *,
    segments,
    chunk_size: int,
    k: int,
    parts_name: str,
    parts_shape: tuple,
    parts_dtype: str,
    blocks,
) -> None:
    """Metrics sweep as a warm-pool job.

    The assignment array arrives as a read-only
    :class:`~repro.parallel.shm.SharedArray` (named by ``parts_name``)
    rather than pickled per job — at millions of edges the assignment
    is the payload that made cold metrics pools expensive to spawn.
    """
    shared = SharedArray.attach(parts_name, tuple(parts_shape), parts_dtype)
    try:
        _run_cover(
            context.conn, context.tracer, context.worker_id, segments,
            chunk_size, k, shared.array, blocks,
        )
    finally:
        shared.close()


# -- pools ------------------------------------------------------------------


def _merge_counts(pool: BaseWorkerPool) -> tuple[np.ndarray, int]:
    """Sum every worker's partial degrees; returns (degrees, edges)."""
    degrees = np.zeros(0, dtype=np.int64)
    num_edges = 0
    for w in range(pool.workers):
        tag, local_n, payload = _unpack_message(pool._recv(w))
        if tag == _MSG_ERROR:
            _resurface_error(pool, w, payload)
        if tag != _MSG_COUNTS:
            raise WorkerFailureError(
                f"{pool._describe_worker(w)}: expected a counting "
                f"result, got {tag!r}"
            )
        num_edges += int(np.frombuffer(payload, dtype="<i8", count=1)[0])
        partial = np.frombuffer(
            payload, dtype="<i8", count=local_n, offset=8
        )
        if local_n > degrees.size:
            grown = np.zeros(local_n, dtype=np.int64)
            grown[: degrees.size] = degrees
            degrees = grown
        degrees[:local_n] += partial
    return degrees, num_edges


def _merge_cover_block(
    pool: BaseWorkerPool, k: int, index: int, lo: int, hi: int
) -> int:
    """OR every worker's cover for one block; returns its set bits."""
    merged = PackedCover(k, lo, hi)
    for w in range(pool.workers):
        tag, sent_index, payload = _unpack_message(pool._recv(w))
        if tag == _MSG_ERROR:
            _resurface_error(pool, w, payload)
        if tag != _MSG_COVER or sent_index != index:
            raise WorkerFailureError(
                f"{pool._describe_worker(w)}: expected cover block "
                f"{index}, got {tag!r} #{sent_index}"
            )
        merged.union_update(payload)
    return merged.count()


class _CountingPool(BaseWorkerPool):
    """Map-reduce pool for the counting pass (one message per worker)."""

    _worker_target = staticmethod(_counting_worker_main)

    def __init__(self, worker_segments, chunk_size, **kwargs) -> None:
        super().__init__(worker_segments, **kwargs)
        self.chunk_size = int(chunk_size)

    def _spawn_args(self, worker_id: int) -> tuple:
        return (self.chunk_size,)

    def merge(self) -> tuple[np.ndarray, int]:
        """Sum every worker's partial degrees; returns (degrees, edges)."""
        return _merge_counts(self)


class _CoverPool(BaseWorkerPool):
    """Map-reduce pool for the metrics pass (one message per block)."""

    _worker_target = staticmethod(_cover_worker_main)

    def __init__(
        self, worker_segments, chunk_size, k, parts, blocks, **kwargs
    ) -> None:
        super().__init__(worker_segments, **kwargs)
        self.chunk_size = int(chunk_size)
        self.k = int(k)
        self.parts = parts
        self.blocks = list(blocks)

    def _spawn_args(self, worker_id: int) -> tuple:
        return (self.chunk_size, self.k, self.parts, self.blocks)

    def merge_block(self, index: int, lo: int, hi: int) -> int:
        """OR every worker's cover for one block; returns its set bits."""
        return _merge_cover_block(self, self.k, index, lo, hi)


# -- coordinator entry points -----------------------------------------------


def parallel_scan_source(
    source,
    workers: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    mp_context: str | None = None,
    timeout: float = DEFAULT_SCAN_TIMEOUT,
) -> SourceStats:
    """Counting pass on ``workers`` processes — ≡ :func:`scan_source`.

    ``source`` is a shard manifest or flat binary edge file
    (:func:`supports_parallel_scan`).  Shards are dealt round-robin (a
    flat file is split contiguously); each worker returns its partial
    degree array and edge count and the coordinator sums them — the
    same integers the sequential sweep accumulates, in a different
    order, so the merged :class:`~repro.stream.scan.SourceStats` is
    bit-identical.
    """
    segments, _, planned_edges, declared = plan_worker_segments(
        source, workers
    )
    with _CountingPool(
        segments, chunk_size, mp_context=mp_context, timeout=timeout
    ) as pool:
        with get_tracer().span(
            "pool_run", pool="count", workers=workers
        ) as span:
            degrees, num_edges = pool.merge()
            pool.collect_worker_spans()
            span.add("recv_wait_s", pool.recv_wait_s)
            span.add("frames_sent", pool.frames_recv)
            span.add("bytes_piped", pool.bytes_recv)
    if num_edges != planned_edges:
        raise GraphFormatError(
            f"{source}: parallel counting pass saw {num_edges} edges but "
            f"the source declares {planned_edges}; it changed on disk"
        )
    return finalize_source_stats(degrees, num_edges, declared, str(source))


def parallel_chunked_quality(
    source,
    stats: SourceStats,
    k: int,
    parts: np.ndarray,
    workers: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    memory_budget: int | None = None,
    mp_context: str | None = None,
    timeout: float = DEFAULT_SCAN_TIMEOUT,
) -> tuple[float, float]:
    """Metrics pass on ``workers`` processes — ≡ :func:`chunked_quality`.

    Workers sweep their shard assignment once per cover block
    (:func:`~repro.stream.scan.plan_cover_blocks` under
    ``memory_budget``), shipping each block's packed per-part covers;
    the coordinator ORs them and popcounts the merge.  Cover bits are
    idempotent under OR, so the merged count equals the sequential
    sweep's exactly and the returned floats are bit-identical.
    """
    sizes = np.bincount(parts[parts >= 0], minlength=k)
    if stats.num_edges == 0:
        return 0.0, 1.0
    blocks = plan_cover_blocks(stats.num_vertices, k, memory_budget)
    segments, _, _, _ = plan_worker_segments(source, workers)
    replicas = 0
    with _CoverPool(
        segments, chunk_size, k, parts, blocks,
        mp_context=mp_context, timeout=timeout,
    ) as pool:
        with get_tracer().span(
            "pool_run", pool="cover", workers=workers, blocks=len(blocks)
        ) as span:
            for index, (lo, hi) in enumerate(blocks):
                replicas += pool.merge_block(index, lo, hi)
            pool.collect_worker_spans()
            span.add("recv_wait_s", pool.recv_wait_s)
            span.add("frames_sent", pool.frames_recv)
            span.add("bytes_piped", pool.bytes_recv)
    covered = int((stats.degrees > 0).sum())
    rf = float(replicas / covered) if covered else 0.0
    balance = float(sizes.max() / (stats.num_edges / k))
    return rf, balance


# -- warm-pool runners -------------------------------------------------------


def _pooled_fan(
    source, workers: int, pool: PersistentWorkerPool
) -> tuple[tuple, list]:
    """Plan a scan's segments for a warm pool: ``(plan, padded)``.

    ``plan`` is ``(segments, planned_edges, declared_vertices)`` from
    :func:`~repro.stream.workers.plan_worker_segments`.

    The sweep fans over ``min(workers, pool size)`` streams (both
    reductions are order-independent sums/ORs, so any fan is
    bit-identical); spare workers get empty segment lists so every job
    round hears from the whole pool.
    """
    fan = max(1, min(int(workers), pool.workers))
    segments, _, planned_edges, declared = plan_worker_segments(source, fan)
    padded = [list(segs) for segs in segments]
    padded += [[] for _ in range(pool.workers - fan)]
    return (segments, planned_edges, declared), padded


def _pooled_scan_source(
    source,
    workers: int,
    pool: PersistentWorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SourceStats:
    """Counting pass on a warm pool — ≡ :func:`parallel_scan_source`.

    The pool's per-frame watchdog is widened to the scan default for
    the duration (a scan worker's first bytes arrive only after its
    whole sweep) and restored after.
    """
    (_, planned_edges, declared), padded = _pooled_fan(
        source, workers, pool
    )
    saved_timeout = pool.timeout
    pool.timeout = max(saved_timeout, DEFAULT_SCAN_TIMEOUT)
    try:
        with get_tracer().span(
            "pool_run", pool="count", workers=len(padded)
        ) as span:
            recv0 = pool.recv_wait_s
            frames0 = pool.frames_recv
            bytes0 = pool.bytes_recv
            pool.submit(
                _count_job,
                [
                    dict(segments=segs, chunk_size=chunk_size)
                    for segs in padded
                ],
                segments=padded,
            )
            degrees, num_edges = _merge_counts(pool)
            pool.collect_worker_spans()
            span.add("recv_wait_s", pool.recv_wait_s - recv0)
            span.add("frames_sent", pool.frames_recv - frames0)
            span.add("bytes_piped", pool.bytes_recv - bytes0)
    finally:
        pool.timeout = saved_timeout
    if num_edges != planned_edges:
        raise GraphFormatError(
            f"{source}: parallel counting pass saw {num_edges} edges but "
            f"the source declares {planned_edges}; it changed on disk"
        )
    return finalize_source_stats(degrees, num_edges, declared, str(source))


def _pooled_chunked_quality(
    source,
    stats: SourceStats,
    k: int,
    parts: np.ndarray,
    workers: int,
    pool: PersistentWorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    memory_budget: int | None = None,
) -> tuple[float, float]:
    """Metrics pass on a warm pool — ≡ :func:`parallel_chunked_quality`.

    The assignment is published once as a shared segment instead of
    being pickled into every spawn; it is closed and unlinked before
    returning on every path.
    """
    sizes = np.bincount(parts[parts >= 0], minlength=k)
    if stats.num_edges == 0:
        return 0.0, 1.0
    blocks = plan_cover_blocks(stats.num_vertices, k, memory_budget)
    _, padded = _pooled_fan(source, workers, pool)
    parts = np.ascontiguousarray(parts)
    replicas = 0
    saved_timeout = pool.timeout
    pool.timeout = max(saved_timeout, DEFAULT_SCAN_TIMEOUT)
    # Created inside the try: an interrupt landing after create() —
    # even before the pool round starts — must still reach the
    # finally-unlink.
    shared_parts = None
    try:
        shared_parts = SharedArray.create(parts)
        with get_tracer().span(
            "pool_run", pool="cover", workers=len(padded),
            blocks=len(blocks),
        ) as span:
            recv0 = pool.recv_wait_s
            frames0 = pool.frames_recv
            bytes0 = pool.bytes_recv
            pool.submit(
                _cover_job,
                [
                    dict(
                        segments=segs,
                        chunk_size=chunk_size,
                        k=k,
                        parts_name=shared_parts.name,
                        parts_shape=tuple(parts.shape),
                        parts_dtype=str(parts.dtype),
                        blocks=list(blocks),
                    )
                    for segs in padded
                ],
                segments=padded,
            )
            for index, (lo, hi) in enumerate(blocks):
                replicas += _merge_cover_block(pool, k, index, lo, hi)
            pool.collect_worker_spans()
            span.add("recv_wait_s", pool.recv_wait_s - recv0)
            span.add("frames_sent", pool.frames_recv - frames0)
            span.add("bytes_piped", pool.bytes_recv - bytes0)
    finally:
        pool.timeout = saved_timeout
        if shared_parts is not None:
            shared_parts.close()
            shared_parts.unlink()
    covered = int((stats.degrees > 0).sum())
    rf = float(replicas / covered) if covered else 0.0
    balance = float(sizes.max() / (stats.num_edges / k))
    return rf, balance


# -- front doors (what the drivers call) ------------------------------------


def scan_stats(
    source,
    opened: EdgeChunkSource,
    workers: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    mp_context: str | None = None,
    timeout: float = DEFAULT_SCAN_TIMEOUT,
    pool: "PersistentWorkerPool | None" = None,
) -> SourceStats:
    """Counting pass, parallel when it can be: the drivers' front door.

    ``source`` is the caller's original source argument (used to plan
    worker segments when it is segmentable), ``opened`` the chunk
    source already opened from it (used for the sequential fallback, so
    prefetch/mmap wrappers keep serving the sequential path).  A warm
    ``pool`` reuses already-spawned workers instead of forking a
    one-shot pool (same result, bit for bit).
    """
    parallel = effective_scan_workers(source, workers)
    with get_tracer().span("count_pass", workers=parallel) as span:
        if parallel and pool is not None:
            stats = _pooled_scan_source(source, workers, pool, chunk_size)
        elif parallel:
            stats = parallel_scan_source(
                source, workers, chunk_size, mp_context=mp_context,
                timeout=timeout,
            )
        else:
            stats = scan_source(opened)
        span.add("edges_scanned", stats.num_edges)
        return stats


def scan_quality(
    source,
    opened: EdgeChunkSource,
    stats: SourceStats,
    k: int,
    parts: np.ndarray,
    workers: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    memory_budget: int | None = None,
    mp_context: str | None = None,
    timeout: float = DEFAULT_SCAN_TIMEOUT,
    pool: "PersistentWorkerPool | None" = None,
) -> tuple[float, float]:
    """Metrics pass, parallel when it can be: the drivers' front door."""
    parallel = effective_scan_workers(source, workers)
    with get_tracer().span("metrics_pass", workers=parallel) as span:
        if parallel and pool is not None:
            quality = _pooled_chunked_quality(
                source, stats, k, parts, workers, pool, chunk_size,
                memory_budget=memory_budget,
            )
        elif parallel:
            quality = parallel_chunked_quality(
                source, stats, k, parts, workers, chunk_size,
                memory_budget=memory_budget, mp_context=mp_context,
                timeout=timeout,
            )
        else:
            quality = chunked_quality(opened, stats, k, parts, memory_budget)
        span.add("edges_scanned", stats.num_edges)
        return quality

"""Smoke and contract tests for the experiment harness.

The full sweeps run in the benchmark suite; here each experiment module
is exercised on reduced inputs so its code paths, row schemas and note
logic stay covered by the fast test suite.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    figure1,
    figure2,
    figure5,
    figure7,
    figure8,
    figure9,
    stream_order,
    table2,
    table4,
    table5,
    table6,
)
from repro.experiments.common import (
    ExperimentResult,
    dataset_list,
    full_mode,
    k_values,
    make_partitioner,
    run_partitioner,
)
from repro.graph.generators import chung_lu
from repro.metrics import format_table


class TestCommon:
    def test_registry_complete(self):
        expected = {
            "figure1", "figure2", "figure5", "figure7", "figure8", "figure9",
            "table1", "table2", "table3", "table4", "table5", "table6",
            "ablations", "extensions",
        }
        assert expected <= set(REGISTRY)

    def test_full_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not full_mode()
        assert k_values() == [4, 32]
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert full_mode()
        assert k_values() == [4, 32, 128, 256]

    def test_dataset_list_switches(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert dataset_list(("A",), ("A", "B")) == ["A"]
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert dataset_list(("A",), ("A", "B")) == ["A", "B"]

    def test_make_partitioner_hep_variants(self):
        assert make_partitioner("HEP-10").tau == 10.0
        assert make_partitioner("hep-1.5").tau == 1.5
        import numpy as np

        assert np.isinf(make_partitioner("HEP-inf").tau)

    def test_run_partitioner_report(self):
        g = chung_lu(120, mean_degree=6, exponent=2.3, seed=1, name="t")
        report = run_partitioner("DBH", g, 4)
        row = report.row()
        assert row["partitioner"] == "DBH"
        assert row["k"] == 4
        assert float(row["RF"]) >= 1.0
        assert row["mem_MiB"] is not None

    def test_experiment_result_format(self):
        result = ExperimentResult("x", "Title", [{"a": 1}], "shape", ["n1"])
        text = result.format()
        assert "[x] Title" in text
        assert "paper shape: shape" in text
        assert "note: n1" in text


class TestReducedRuns:
    """Each parameterizable experiment on a minimal workload."""

    def test_figure2_reduced(self):
        result = figure2.run(graphs=("LJ",), k=8)
        assert result.rows
        assert {r["partitioner"] for r in result.rows} == {"HDRF", "NE"}

    def test_figure8_reduced(self):
        result = figure8.run(
            graphs=("LJ",), partitioners=("HEP-10", "HDRF", "DBH", "NE", "HEP-100", "HEP-1"),
            ks=(4,),
        )
        assert len(result.rows) == 6
        assert any("RF chain" in n for n in result.notes)

    def test_figure9_reduced(self):
        result = figure9.run(graphs=("LJ",), taus=(10.0, 1.0), k=8)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0 <= float(row["H2H_share"]) <= 1

    def test_table4_reduced(self):
        result = table4.run(
            graphs=("LJ",), partitioners=("HEP-10", "DBH"), k=8,
            pagerank_iterations=5, bfs_seeds=2,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert float(row["PageRank_s"]) > 0
            assert float(row["CC_s"]) > 0

    def test_table5_reduced(self):
        result = table5.run(graphs=("LJ",), taus=(10.0, 1.0), k=8)
        assert len(result.rows) == 2
        assert "LJ" in result.rows[0]

    def test_format_table_round_trip(self):
        rows = [{"graph": "LJ", "RF": 1.5}]
        assert "LJ" in format_table(rows)

    def test_figure1_reduced(self):
        result = figure1.run(graphs=("LJ",), k=2)
        assert len(result.rows) == 2  # star example + LJ
        star_row = result.rows[0]
        assert int(star_row["vertex_cut(edge part.)"]) < int(
            star_row["edge_cut(vertex part.)"]
        )

    def test_figure5_reduced(self):
        result = figure5.run(graphs=("LJ",), k=8)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert float(row["norm_deg_S_minus_C"]) > float(row["norm_deg_C"])

    def test_figure7_reduced(self):
        result = figure7.run(graphs=("LJ",), k=8)
        assert 0 < float(result.rows[0]["removed_fraction"]) < 1

    def test_table2_reduced(self):
        result = table2.run(graphs=("LJ",), k=8)
        assert float(result.rows[0]["ratio"]) < 0.5

    def test_table6_reduced(self):
        result = table6.run(graph_name="LJ", k=8)
        paged = [r for r in result.rows if r["runtime_s"] != "-"]
        faults = [int(r["hard_faults"]) for r in paged]
        assert faults == sorted(faults)

    def test_stream_order_reduced(self):
        result = stream_order.run(graph_name="LJ", k=8)
        assert len(result.rows) == 5  # five orderings
        for row in result.rows:
            assert float(row["HEP-1"]) >= 1.0

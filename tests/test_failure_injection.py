"""Failure-injection tests: corrupted inputs, hostile parameters, and
boundary conditions must fail loudly with library exceptions, never
silently corrupt results — including worker processes dying
mid-superstep."""

import multiprocessing
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    GraphFormatError,
    PartitioningError,
    ReproError,
    WorkerFailureError,
)
from repro.graph import (
    Graph,
    read_binary_edgelist,
    read_text_edgelist,
)
from repro.graph.generators import chung_lu
from repro.core import HepPartitioner, select_tau
from repro.partition import HdrfPartitioner, PartitionAssignment


class TestCorruptFiles:
    def test_binary_odd_length(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x01\x02\x03")
        with pytest.raises(GraphFormatError):
            read_binary_edgelist(path)

    def test_binary_garbage_is_still_parsed_as_ids(self, tmp_path):
        # 8 random bytes are a syntactically valid edge; semantic bounds
        # are enforced by num_vertices.
        path = tmp_path / "g.bin"
        path.write_bytes(bytes(range(8)))
        with pytest.raises(GraphFormatError):
            read_binary_edgelist(path, num_vertices=2)

    def test_text_with_binary_noise(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(b"0 1\n\xff\xfe garbage\n")
        with pytest.raises((GraphFormatError, UnicodeDecodeError)):
            read_text_edgelist(path)

    def test_text_negative_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 -3\n")
        with pytest.raises(GraphFormatError):
            read_text_edgelist(path)


class TestHostileParameters:
    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(100, mean_degree=6, exponent=2.3, seed=17)

    def test_k_larger_than_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        # More partitions than edges: valid, some partitions stay empty.
        a = HepPartitioner(tau=10.0).partition(g, 16)
        assert a.num_unassigned == 0
        assert a.partition_sizes().sum() == 2

    def test_k_one_rejected_everywhere(self, graph):
        for partitioner in (HepPartitioner(), HdrfPartitioner()):
            with pytest.raises(ConfigurationError):
                partitioner.partition(graph, 1)

    def test_empty_graph_rejected(self):
        g = Graph.from_edges(np.empty((0, 2)), num_vertices=5)
        with pytest.raises(PartitioningError):
            HdrfPartitioner().partition(g, 2)

    def test_negative_tau(self):
        with pytest.raises(ConfigurationError):
            HepPartitioner(tau=-1.0)

    def test_impossible_budget(self, graph):
        with pytest.raises(ConfigurationError):
            select_tau(graph, memory_budget_bytes=1, k=4)

    def test_all_errors_are_repro_errors(self):
        for exc in (ConfigurationError, GraphFormatError, PartitioningError):
            assert issubclass(exc, ReproError)


class TestBoundaryGraphs:
    def test_single_edge(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        a = HepPartitioner(tau=1.0).partition(g, 2)
        assert a.num_unassigned == 0

    def test_two_vertices_many_partitions(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        a = HdrfPartitioner().partition(g, 8)
        assert int((a.partition_sizes() > 0).sum()) == 1

    def test_complete_graph(self):
        n = 12
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = Graph.from_edges(edges, num_vertices=n)
        for tau in (0.5, 2.0):
            a = HepPartitioner(tau=tau).partition(g, 4)
            assert a.num_unassigned == 0
            assert a.partition_sizes().sum() == g.num_edges

    def test_disconnected_isolated_heavy(self):
        # A clique plus many isolated vertices: isolated ids must not
        # perturb metrics or partitioning.
        clique = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        g = Graph.from_edges(clique, num_vertices=1000)
        a = HepPartitioner(tau=2.0).partition(g, 3)
        assert a.num_unassigned == 0
        from repro.metrics import replication_factor

        assert 1.0 <= replication_factor(a) <= 3.0

    def test_path_graph_chain(self):
        edges = [(i, i + 1) for i in range(99)]
        g = Graph.from_edges(edges, num_vertices=100)
        a = HepPartitioner(tau=100.0).partition(g, 4)
        assert a.num_unassigned == 0
        # A path partitions into near-contiguous runs: RF close to 1.
        assert a.replication_factor() < 1.2

    def test_assignment_rejects_k_zero(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(ConfigurationError):
            PartitionAssignment(g, 0, np.array([0], dtype=np.int32))


@pytest.mark.slow
class TestMultiWorkerFailures:
    """A worker dying mid-superstep must surface as *one* clean
    :class:`WorkerFailureError` naming the worker and its shard, leave
    no orphan processes, and keep the pool reusable for a fresh run."""

    @pytest.fixture()
    def sharded(self, tmp_path):
        from repro.stream import write_sharded_edges

        graph = chung_lu(300, mean_degree=8, exponent=2.2, seed=5, name="fi")
        manifest = write_sharded_edges(
            graph, tmp_path / "fi.manifest.json", num_shards=4
        )
        return graph, manifest

    def _pool(self, graph, manifest, workers=2, batch=2):
        from repro.partition.base import capacity_bound
        from repro.partition.state import StreamingState
        from repro.stream import WorkerPool, plan_worker_segments

        segments, _, _, _ = plan_worker_segments(manifest.path, workers)
        capacity = capacity_bound(graph.num_edges, 4, 1.0)
        state = StreamingState(
            graph.num_vertices, 4, capacity, exact_degrees=graph.degrees
        )
        parts = np.full(graph.num_edges, -1, dtype=np.int32)
        pool = WorkerPool(
            segments, state, batch=batch, chunk_size=64, timeout=30.0
        )
        return pool, parts

    def test_killed_worker_raises_and_leaves_no_orphans(self, sharded):
        graph, manifest = sharded
        pool, parts = self._pool(graph, manifest)
        pool.start()
        os.kill(pool.pids[1], signal.SIGKILL)
        with pytest.raises(WorkerFailureError, match=r"worker 1 .*died"):
            pool.run(parts)
        pool.close()
        assert multiprocessing.active_children() == []

    def test_poisoned_shard_names_worker_and_shard(self, sharded):
        graph, manifest = sharded
        # Truncate shard 2 (owned by worker 0) *after* planning — the
        # worker hits it mid-stream, exactly like disk corruption or a
        # concurrent truncation during a long run.
        shard = manifest.shard_paths[2]
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2 - 3])
        pool, parts = self._pool(graph, manifest)
        with pool:
            with pytest.raises(WorkerFailureError) as excinfo:
                pool.run(parts)
        message = str(excinfo.value)
        assert "worker 0" in message
        assert "shard-0002" in message
        assert "GraphFormatError" in message
        assert multiprocessing.active_children() == []

    def test_pre_poisoned_manifest_fails_in_counting_pass(self, sharded):
        from repro.stream import MultiWorkerStreamingDriver

        graph, manifest = sharded
        shard = manifest.shard_paths[1]
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(GraphFormatError, match="shard"):
            MultiWorkerStreamingDriver(workers=2).partition(manifest.path, 4)
        assert multiprocessing.active_children() == []

    def test_failure_is_worker_failure_error_subclass(self):
        assert issubclass(WorkerFailureError, PartitioningError)
        assert issubclass(WorkerFailureError, ReproError)

    def test_driver_recovers_after_failure(self, sharded):
        """A failed run must not poison the next one (fresh pool/state)."""
        from repro.stream import MultiWorkerStreamingDriver

        graph, manifest = sharded
        pool, parts = self._pool(graph, manifest)
        pool.start()
        os.kill(pool.pids[0], signal.SIGKILL)
        with pytest.raises(WorkerFailureError):
            pool.run(parts)
        pool.close()
        result = MultiWorkerStreamingDriver(workers=2, batch=4).partition(
            manifest.path, 4
        )
        assert result.num_unassigned == 0
        assert multiprocessing.active_children() == []

    def test_pool_close_is_idempotent(self, sharded):
        graph, manifest = sharded
        pool, parts = self._pool(graph, manifest)
        pool.start()
        pool.close()
        pool.close()
        assert multiprocessing.active_children() == []


@pytest.mark.slow
class TestWarmPoolFailures:
    """The shared-memory path under the same injections: a warm worker
    killed mid-superstep or a shard truncated mid-pass must surface as
    *one* clean :class:`WorkerFailureError`, leave no orphan processes,
    and leak no ``/dev/shm`` segment (the coordinator unlinks in its
    ``finally`` even on the failure path)."""

    @pytest.fixture()
    def sharded(self, tmp_path):
        from repro.stream import write_sharded_edges

        graph = chung_lu(300, mean_degree=8, exponent=2.2, seed=5, name="wf")
        manifest = write_sharded_edges(
            graph, tmp_path / "wf.manifest.json", num_shards=4
        )
        return graph, manifest

    @staticmethod
    def _psm_segments():
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            return None
        return {p.name for p in shm_dir.glob("psm_*")}

    def _shared_run(self, graph, manifest, pool, workers=2, batch=2):
        from repro.partition.base import capacity_bound
        from repro.partition.state import StreamingState
        from repro.stream import plan_worker_segments, run_bsp_shared

        segments, _, _, _ = plan_worker_segments(manifest.path, workers)
        capacity = capacity_bound(graph.num_edges, 4, 1.0)
        state = StreamingState(
            graph.num_vertices, 4, capacity, exact_degrees=graph.degrees
        )
        parts = np.full(graph.num_edges, -1, dtype=np.int32)
        return run_bsp_shared(
            pool, segments, state, parts, batch=batch, chunk_size=64
        )

    def test_killed_warm_worker_raises_and_leaks_nothing(self, sharded):
        from repro.stream import PersistentWorkerPool

        graph, manifest = sharded
        before = self._psm_segments()
        pool = PersistentWorkerPool(2, timeout=30.0)
        pool.start()
        os.kill(pool.pids[1], signal.SIGKILL)
        with pytest.raises(WorkerFailureError, match=r"worker 1 .*died"):
            self._shared_run(graph, manifest, pool)
        pool.shutdown()
        assert multiprocessing.active_children() == []
        if before is not None:
            assert self._psm_segments() - before == set()

    def test_truncated_shard_names_worker_and_shard(self, sharded):
        from repro.stream import PersistentWorkerPool

        graph, manifest = sharded
        # Truncate shard 2 (owned by worker 0) after planning — hit
        # mid-stream by the warm worker, like the pipe-path test above.
        shard = manifest.shard_paths[2]
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2 - 3])
        before = self._psm_segments()
        pool = PersistentWorkerPool(2, timeout=30.0)
        try:
            pool.start()
            with pytest.raises(WorkerFailureError) as excinfo:
                self._shared_run(graph, manifest, pool)
        finally:
            pool.shutdown()
        message = str(excinfo.value)
        assert "worker 0" in message
        assert "shard-0002" in message
        assert "GraphFormatError" in message
        assert multiprocessing.active_children() == []
        if before is not None:
            assert self._psm_segments() - before == set()

    def test_driver_recovers_after_warm_failure(self, sharded):
        """A killed warm run must not poison a fresh shared-memory run."""
        from repro.stream import MultiWorkerStreamingDriver, PersistentWorkerPool

        graph, manifest = sharded
        pool = PersistentWorkerPool(2, timeout=30.0)
        pool.start()
        os.kill(pool.pids[0], signal.SIGKILL)
        with pytest.raises(WorkerFailureError):
            self._shared_run(graph, manifest, pool)
        pool.shutdown()
        result = MultiWorkerStreamingDriver(workers=2, batch=4).partition(
            manifest.path, 4
        )
        assert result.num_unassigned == 0
        assert multiprocessing.active_children() == []

    def test_shutdown_is_idempotent(self):
        from repro.stream import PersistentWorkerPool

        pool = PersistentWorkerPool(2)
        pool.start()
        pool.shutdown()
        pool.shutdown()
        assert multiprocessing.active_children() == []

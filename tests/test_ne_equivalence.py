"""Cross-validation of NE++ against NE — the paper's central equivalence.

Section 3.2 claims NE++ achieves "the same partitioning quality" as NE
while being faster and smaller.  These tests pin the quality equivalence
on several graph classes, and pin the structural relationships between
the two implementations (identical capacity accounting, identical edge
coverage) that make the comparison meaningful.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ne_plus_plus import NePlusPlusPartitioner, run_ne_plus_plus
from repro.graph import Graph
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    community_web,
    erdos_renyi,
    grid2d,
    rmat,
)
from repro.metrics import replication_factor
from repro.partition.ne import NePartitioner

WORKLOADS = {
    "powerlaw": lambda: chung_lu(600, mean_degree=10, exponent=2.2, seed=1),
    "web": lambda: community_web(8, 70, intra_mean_degree=8, seed=2),
    "rmat": lambda: rmat(scale=9, edge_factor=8, seed=3),
    "ba": lambda: barabasi_albert(500, attach=4, seed=4),
    "mesh": lambda: grid2d(22, 22),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
@pytest.mark.parametrize("k", [4, 16])
def test_quality_parity(workload, k):
    """NE++ reaches NE's quality on every graph class (seeding differs,
    so exact equality is not expected; on RMAT NE++ is clearly better)."""
    graph = WORKLOADS[workload]()
    rf_ne = replication_factor(NePartitioner().partition(graph, k))
    rf_nepp = replication_factor(NePlusPlusPartitioner().partition(graph, k))
    # The paper's claim is one-directional: NE++ reaches NE's quality.
    # NE++ being *better* (it is, on RMAT) is fine; only catastrophic
    # divergence in either direction is a bug.
    assert rf_nepp <= rf_ne * 1.25, (workload, k, rf_ne, rf_nepp)
    assert rf_ne <= rf_nepp * 2.0, (workload, k, rf_ne, rf_nepp)


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
def test_both_cover_all_edges(workload):
    graph = WORKLOADS[workload]()
    for partitioner in (NePartitioner(), NePlusPlusPartitioner()):
        assignment = partitioner.partition(graph, 8)
        assert assignment.num_unassigned == 0
        assert assignment.partition_sizes().sum() == graph.num_edges


def test_same_capacity_accounting():
    """Both use ceil(|E|/k) for the unpruned case; loads never exceed it
    except through documented spill-over."""
    graph = chung_lu(400, mean_degree=8, exponent=2.3, seed=5)
    k = 8
    cap = -(-graph.num_edges // k)
    ne = NePartitioner().partition(graph, k)
    nepp = NePlusPlusPartitioner().partition(graph, k)
    for assignment in (ne, nepp):
        sizes = assignment.partition_sizes()
        # Everything except possible single-step spill stays below cap.
        assert int((sizes > cap * 1.3).sum()) == 0


def test_nepp_degree_histories_mirror_ne():
    """Figure 5's phenomenon holds identically in both implementations."""
    graph = chung_lu(500, mean_degree=10, exponent=2.2, seed=6)
    ne = NePartitioner(record_history=True)
    ne.partition(graph, 8)
    nepp_result = run_ne_plus_plus(graph, 8, record_degrees=True)
    mean = graph.mean_degree
    ne_gap = ne.history.normalized_secondary_degree(mean) - (
        ne.history.normalized_core_degree(mean)
    )
    nepp_core = np.mean(nepp_result.stats.core_degrees) / mean
    nepp_sec = np.mean(nepp_result.stats.secondary_end_degrees) / mean
    assert ne_gap > 0
    assert nepp_sec - nepp_core > 0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 50),
    m=st.integers(15, 150),
    k=st.sampled_from([2, 4, 8]),
    seed=st.integers(0, 5),
)
def test_parity_property_random_graphs(n, m, k, seed):
    """Property: on arbitrary random graphs, NE++ quality is never far
    from NE quality in either direction."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k * 2:
        return
    rf_ne = replication_factor(NePartitioner(seed=seed).partition(g, k))
    rf_nepp = replication_factor(NePlusPlusPartitioner().partition(g, k))
    assert rf_nepp <= rf_ne * 1.6
    assert rf_ne <= rf_nepp * 1.6


def test_pruned_phase_subset_of_unpruned_assignment():
    """With pruning, NE++ assigns exactly the complement of the h2h set —
    and that set matches an independent recomputation."""
    from repro.graph.pruned import split_edges

    graph = chung_lu(400, mean_degree=12, exponent=2.1, seed=7)
    for tau in (0.5, 1.5, 4.0):
        result = run_ne_plus_plus(graph, 4, tau=tau)
        split = split_edges(graph, tau)
        assigned = result.parts >= 0
        assert np.array_equal(assigned, ~split.h2h_mask)


def test_deterministic_across_runs_and_instances():
    graph = Graph.from_edges(
        erdos_renyi(60, 150, seed=8).edges, num_vertices=60
    )
    results = [
        NePlusPlusPartitioner().partition(graph, 4).parts for _ in range(3)
    ]
    assert all(np.array_equal(results[0], r) for r in results[1:])

"""Table 2: run-time of the tau-precompute (Section 4.4).

The paper's point is that projecting HEP's memory footprint over a grid
of ``tau`` values is *negligible* next to partitioning itself, so tuning
``tau`` to a memory budget is practical.  We measure the same ratio.
"""

from __future__ import annotations

import time

from repro.core import HepPartitioner, precompute_profile
from repro.experiments.common import ExperimentResult, dataset_list, load_dataset
from repro.experiments.paper_reference import TABLE2_PRECOMPUTE_S

__all__ = ["run"]

_DEFAULT = ("OK", "IT", "TW")
_FULL = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(graphs: tuple[str, ...] | None = None, k: int = 32) -> ExperimentResult:
    names = list(graphs) if graphs else dataset_list(_DEFAULT, _FULL)
    rows: list[dict[str, object]] = []
    for name in names:
        graph = load_dataset(name)
        profile = precompute_profile(graph, k)
        start = time.perf_counter()
        HepPartitioner(tau=10.0).partition(graph, k)
        partition_time = time.perf_counter() - start
        rows.append(
            {
                "graph": name,
                "precompute_s": round(profile.precompute_seconds, 4),
                "partition_s": round(partition_time, 3),
                "ratio": round(profile.precompute_seconds / max(partition_time, 1e-9), 4),
                "paper_precompute_s": TABLE2_PRECOMPUTE_S.get(name, "-"),
            }
        )
    result = ExperimentResult(
        experiment_id="table2",
        title="tau-precompute run-time vs partitioning run-time",
        rows=rows,
        paper_shape="precompute negligible relative to partitioning",
    )
    ok = all(float(r["ratio"]) < 0.5 for r in rows)
    result.notes.append(f"precompute < 50% of partitioning on every graph: {ok}")
    return result

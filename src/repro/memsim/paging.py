"""NE++ under a memory limit: the Table 6 experiment.

The paper compares two ways of handling a graph that does not fit in
memory: (a) run unpruned NE++ and let the OS page to SSD under a cgroup
limit, or (b) use HEP's ``tau`` knob.  Table 6 shows paging's run-time
and hard-fault count exploding as the limit shrinks below the working
set, while HEP at ``tau = 1`` stays fault-free in comparable memory.

Here the cgroup+SSD machinery is replaced by a trace replay: NE++ runs
normally (recording its adjacency walks), the walks are mapped to pages
(:mod:`repro.memsim.trace`), and an LRU resident set of the configured
size counts the hard faults.  The modeled run-time is::

    runtime = algorithm_seconds + faults * fault_penalty

with the default penalty calibrated from Table 6 itself (the paper's
fault counts and run-time deltas imply roughly 300 microseconds per
hard fault on their SSD).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.ne_plus_plus import run_ne_plus_plus
from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph
from repro.memsim.lru import PAGE_BYTES, LruPageCache
from repro.memsim.trace import PageTrace, build_page_trace

__all__ = ["PagingResult", "run_paged_ne_plus_plus", "replay_trace"]

#: seconds per hard page fault (SSD swap-in), calibrated from Table 6
DEFAULT_FAULT_PENALTY_S = 300e-6


@dataclass(frozen=True)
class PagingResult:
    """One row of the Table 6 reproduction."""

    memory_limit_bytes: int
    page_faults: int
    algorithm_seconds: float
    modeled_runtime_seconds: float
    working_set_pages: int
    cache_pages: int

    @property
    def thrashing_ratio(self) -> float:
        """Faults per resident page — rises sharply once the working set
        no longer fits."""
        return self.page_faults / max(self.cache_pages, 1)


def replay_trace(trace: PageTrace, memory_limit_bytes: int) -> LruPageCache:
    """Replay ``trace`` through an LRU resident set of the given size."""
    capacity = max(memory_limit_bytes // PAGE_BYTES, 1)
    cache = LruPageCache(capacity)
    for first, last in trace.ranges:
        cache.access_range(first, last)
    return cache


def run_paged_ne_plus_plus(
    graph: Graph,
    k: int,
    memory_limit_bytes: int,
    tau: float = float("inf"),
    fault_penalty_s: float = DEFAULT_FAULT_PENALTY_S,
) -> PagingResult:
    """Run NE++ and model its behaviour under ``memory_limit_bytes``."""
    if memory_limit_bytes < PAGE_BYTES:
        raise ConfigurationError(
            f"memory limit must be at least one page ({PAGE_BYTES} bytes)"
        )
    walks: list[int] = []
    start = time.perf_counter()
    run_ne_plus_plus(graph, k, tau=tau, trace_walk=walks.append)
    algorithm_seconds = time.perf_counter() - start

    trace = build_page_trace(graph, walks, tau)
    cache = replay_trace(trace, memory_limit_bytes)
    runtime = algorithm_seconds + cache.faults * fault_penalty_s
    return PagingResult(
        memory_limit_bytes=memory_limit_bytes,
        page_faults=cache.faults,
        algorithm_seconds=algorithm_seconds,
        modeled_runtime_seconds=runtime,
        working_set_pages=trace.working_set_pages(),
        cache_pages=cache.capacity,
    )

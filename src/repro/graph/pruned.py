"""Degree thresholding and the pruned graph representation (Section 3.2.1).

HEP separates vertices into high-degree ``V_h`` and low-degree ``V_l`` by
the *threshold factor* ``tau``::

    v in V_h  iff  d(v) > tau * mean_degree

Edges between two high-degree vertices (``E_h2h``) are written out at CSR
build time and later partitioned by streaming; everything else stays in
the pruned in-memory representation.  Lowering ``tau`` moves more edge
mass to the streaming phase and shrinks the column array — this is the
memory knob of the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CsrGraph
from repro.graph.edgelist import Graph

__all__ = [
    "high_degree_mask",
    "split_edges",
    "build_pruned_csr",
    "EdgeSplit",
]


def high_degree_mask(graph: Graph, tau: float) -> np.ndarray:
    """Boolean mask of high-degree vertices: ``d(v) > tau * mean_degree``.

    ``tau = inf`` (or any value making the threshold exceed the maximum
    degree) yields an all-``False`` mask — HEP degenerates to pure NE++
    in-memory partitioning with an unpruned CSR.
    """
    if tau <= 0:
        raise ConfigurationError(f"tau must be positive, got {tau}")
    threshold = tau * graph.mean_degree
    return graph.degrees > threshold


@dataclass(frozen=True)
class EdgeSplit:
    """The two-way split of the edge set induced by ``tau``."""

    high_mask: np.ndarray   # per-vertex: True if high-degree
    h2h_mask: np.ndarray    # per-edge: True if both endpoints high-degree

    @property
    def num_high_vertices(self) -> int:
        """Number of vertices above the degree threshold."""
        return int(self.high_mask.sum())

    @property
    def num_h2h_edges(self) -> int:
        """Number of edges whose endpoints are both high-degree."""
        return int(self.h2h_mask.sum())

    def h2h_fraction(self) -> float:
        """Fraction of all edges that go to the streaming phase
        (Figure 9's 'H2H' ratio)."""
        if self.h2h_mask.size == 0:
            return 0.0
        return self.num_h2h_edges / self.h2h_mask.size


def split_edges(graph: Graph, tau: float) -> EdgeSplit:
    """Classify every edge as h2h (streaming) or rest (in-memory)."""
    high = high_degree_mask(graph, tau)
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    return EdgeSplit(high_mask=high, h2h_mask=high[u] & high[v])


def build_pruned_csr(graph: Graph, tau: float) -> CsrGraph:
    """Build the pruned CSR for threshold ``tau``.

    The returned CSR stores no adjacency lists for high-degree vertices;
    the diverted h2h edges are available as ``csr.h2h_edges``.
    """
    return CsrGraph.build(graph, high_mask=high_degree_mask(graph, tau))

"""Shared machinery of the experiment harness.

Every figure/table module exposes ``run(...) -> ExperimentResult`` and is
invoked both by the benchmark suite (``benchmarks/bench_*.py``) and the
CLI (``python -m repro experiment <id>``).  The experiments run on the
Table 3 stand-in datasets at ``REPRO_SCALE`` (default 1.0); set
``REPRO_BENCH_FULL=1`` to expand sweeps to the paper's full grid.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.core import memory_model_for
from repro.graph import datasets
from repro.graph.edgelist import Graph
from repro.metrics import format_table, summarize
from repro.metrics.report import PartitionReport
from repro.partition import (
    AdwisePartitioner,
    DbhPartitioner,
    DnePartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HdrfPartitioner,
    MetisPartitioner,
    NePartitioner,
    Partitioner,
    RandomStreamPartitioner,
    RestreamingHdrfPartitioner,
    SnePartitioner,
)
from repro.core import HepPartitioner, NePlusPlusPartitioner

__all__ = [
    "ExperimentResult",
    "full_mode",
    "dataset_list",
    "k_values",
    "make_partitioner",
    "run_partitioner",
    "PARTITIONER_FACTORIES",
]


@dataclass
class ExperimentResult:
    """Formatted outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: list[dict[str, object]]
    paper_shape: str
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        parts = [
            format_table(self.rows, title=f"[{self.experiment_id}] {self.title}"),
            f"paper shape: {self.paper_shape}",
        ]
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


def full_mode() -> bool:
    """True when ``REPRO_BENCH_FULL=1`` — run the paper's full sweep."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def dataset_list(default: tuple[str, ...], full: tuple[str, ...]) -> list[str]:
    return list(full if full_mode() else default)


def k_values() -> list[int]:
    """Paper's partition counts; trimmed by default for pure-Python speed."""
    return [4, 32, 128, 256] if full_mode() else [4, 32]


#: factory per table name; HEP names carry their tau
PARTITIONER_FACTORIES: dict[str, type | None] = {
    "HDRF": HdrfPartitioner,
    "Greedy": GreedyPartitioner,
    "DBH": DbhPartitioner,
    "Grid": GridPartitioner,
    "ADWISE": AdwisePartitioner,
    "Random": RandomStreamPartitioner,
    "Restreaming": RestreamingHdrfPartitioner,
    "NE": NePartitioner,
    "NE++": NePlusPlusPartitioner,
    "SNE": SnePartitioner,
    "DNE": DnePartitioner,
    "METIS": MetisPartitioner,
}


def make_partitioner(name: str) -> Partitioner:
    """Instantiate a partitioner from its table name (``HEP-10`` etc.)."""
    if name.upper().startswith("HEP-"):
        suffix = name.split("-", 1)[1]
        tau = float("inf") if suffix.lower() == "inf" else float(suffix)
        return HepPartitioner(tau=tau)
    try:
        factory = PARTITIONER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; known: "
            f"{sorted(PARTITIONER_FACTORIES)} and HEP-<tau>"
        ) from None
    return factory()


def run_partitioner(
    name: str,
    graph: Graph,
    k: int,
    measure_python_peak: bool = False,
) -> PartitionReport:
    """Run one partitioner and reduce the outcome to a report row.

    ``memory_bytes`` is the Section 4.2-style analytic model (see
    DESIGN.md for why RSS is not meaningful in Python); with
    ``measure_python_peak`` the tracemalloc peak is stored in the report's
    runtime-independent extra column instead.
    """
    partitioner = make_partitioner(name)
    if measure_python_peak:
        tracemalloc.start()
    start = time.perf_counter()
    assignment = partitioner.partition(graph, k)
    elapsed = time.perf_counter() - start
    if measure_python_peak:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    else:
        peak = None
    from repro.partition.base import TimedResult

    result = TimedResult(
        assignment,
        elapsed,
        partitioner.name,
        memory_bytes=memory_model_for(partitioner.name, graph, k),
    )
    report = summarize(result)
    if peak is not None:
        report = PartitionReport(
            partitioner=report.partitioner,
            graph=report.graph,
            k=report.k,
            replication_factor=report.replication_factor,
            alpha=report.alpha,
            vertex_balance=report.vertex_balance,
            runtime_s=report.runtime_s,
            memory_bytes=report.memory_bytes,
        )
    return report


def load_dataset(name: str) -> Graph:
    """Dataset loader used by all experiments (honors ``REPRO_SCALE``)."""
    return datasets.load(name)

"""SpillFile: the disk-backed h2h edge buffer (raw and zlib formats)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphFormatError
from repro.stream import SpillFile, read_spill_header


def _block(edges):
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return arr, np.arange(arr.shape[0], dtype=np.int64)


def _drain(spill, chunk_size=1000):
    pairs, eids = [], []
    for p, e in spill.chunks(chunk_size):
        pairs.append(p)
        eids.append(e)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.vstack(pairs), np.concatenate(eids)


class TestAppendIterate:
    def test_roundtrip(self, tmp_path):
        pairs, eids = _block([(0, 1), (2, 3), (4, 5)])
        with SpillFile(dir=tmp_path) as spill:
            assert spill.append(pairs, eids) == 3
            got_pairs, got_eids = _drain(spill)
            assert np.array_equal(got_pairs, pairs)
            assert np.array_equal(got_eids, eids)

    def test_chunk_boundaries(self, tmp_path):
        pairs = np.arange(20, dtype=np.int64).reshape(-1, 2)
        eids = np.arange(10, dtype=np.int64) * 7
        with SpillFile(dir=tmp_path) as spill:
            spill.append(pairs, eids)
            for chunk_size in (1, 3, 10, 99):
                got_pairs, got_eids = _drain(spill, chunk_size)
                assert np.array_equal(got_pairs, pairs)
                assert np.array_equal(got_eids, eids)
                sizes = [p.shape[0] for p, _ in spill.chunks(chunk_size)]
                assert all(s <= chunk_size for s in sizes)

    def test_len_and_nbytes(self, tmp_path):
        with SpillFile(dir=tmp_path) as spill:
            assert len(spill) == 0 and spill.nbytes == 0
            spill.append(*_block([(1, 2)]))
            spill.append(*_block([(3, 4), (5, 6)]))
            assert len(spill) == 3
            assert spill.nbytes == 3 * 3 * 8

    def test_empty_append_is_noop(self, tmp_path):
        with SpillFile(dir=tmp_path) as spill:
            assert spill.append(np.empty((0, 2)), np.empty(0)) == 0
            assert len(spill) == 0

    def test_mismatched_eids_rejected(self, tmp_path):
        with SpillFile(dir=tmp_path) as spill:
            with pytest.raises(GraphFormatError):
                spill.append(np.zeros((2, 2)), np.zeros(3))


class TestEdgeCases:
    def test_empty_spill_yields_nothing(self, tmp_path):
        with SpillFile(dir=tmp_path) as spill:
            assert list(spill.chunks()) == []
            assert len(spill) == 0

    def test_reopened_after_iteration(self, tmp_path):
        """Appending after a full read-back must extend later reads."""
        with SpillFile(dir=tmp_path) as spill:
            spill.append(*_block([(0, 1)]))
            first, _ = _drain(spill)
            assert first.shape[0] == 1
            spill.append(np.asarray([(8, 9)]), np.asarray([5]))
            again_pairs, again_eids = _drain(spill)
            assert again_pairs.shape[0] == 2
            assert again_eids.tolist() == [0, 5]

    def test_iterate_twice(self, tmp_path):
        with SpillFile(dir=tmp_path) as spill:
            spill.append(*_block([(0, 1), (2, 3)]))
            a, _ = _drain(spill)
            b, _ = _drain(spill)
            assert np.array_equal(a, b)

    def test_cleanup_on_exception(self, tmp_path):
        """The context manager removes the file even on an error path."""
        with pytest.raises(RuntimeError):
            with SpillFile(dir=tmp_path) as spill:
                spill.append(*_block([(0, 1)]))
                path = spill.path
                raise RuntimeError("mid-spill failure")
        assert not path.exists()
        assert spill.closed

    def test_keep_on_disk(self, tmp_path):
        with SpillFile(dir=tmp_path, delete=False) as spill:
            spill.append(*_block([(0, 1)]))
            path = spill.path
        assert path.exists()
        assert path.stat().st_size == 3 * 8

    def test_explicit_path(self, tmp_path):
        target = tmp_path / "nested" / "h2h.bin"
        with SpillFile(path=target) as spill:
            spill.append(*_block([(0, 1)]))
            assert spill.path == target
            assert target.exists()
        assert not target.exists()  # delete defaults to True

    def test_closed_spill_rejects_use(self, tmp_path):
        spill = SpillFile(dir=tmp_path)
        spill.close()
        with pytest.raises(ValueError):
            spill.append(*_block([(0, 1)]))
        with pytest.raises(ValueError):
            list(spill.chunks())

    def test_double_close_is_safe(self, tmp_path):
        spill = SpillFile(dir=tmp_path)
        spill.close()
        spill.close()
        assert spill.closed


class TestMidWriteVisibility:
    """Regression: a reader opening the file mid-write sees every record.

    The write handle is buffered; before the fsync fix a phase-two
    reader (or crash-recovery tooling) opening the path could observe a
    short file.  ``sync()`` — called implicitly by ``chunks()`` — must
    make all appended records durable and visible.
    """

    @pytest.mark.parametrize("compression", [None, "zlib"])
    def test_independent_reader_after_sync(self, tmp_path, compression):
        pairs, eids = _block([(0, 1), (2, 3), (4, 5), (6, 7)])
        with SpillFile(
            dir=tmp_path, delete=False, compression=compression
        ) as spill:
            spill.append(pairs, eids)
            path = spill.path
            spill.sync()
            # A *separate* reader opens the path while the writer is
            # still open: the bytes on disk must already be complete.
            assert path.stat().st_size == spill.nbytes
        spill_path_exists = path.exists()
        assert spill_path_exists

    @pytest.mark.parametrize("compression", [None, "zlib"])
    def test_chunks_interleaved_with_appends(self, tmp_path, compression):
        """chunks() mid-write, more appends, chunks() again — all visible."""
        with SpillFile(dir=tmp_path, compression=compression) as spill:
            spill.append(*_block([(0, 1), (2, 3)]))
            first, _ = _drain(spill)
            assert first.shape[0] == 2
            spill.append(np.asarray([(8, 9), (10, 11)]), np.asarray([7, 9]))
            again_pairs, again_eids = _drain(spill)
            assert again_pairs.shape[0] == 4
            assert again_eids.tolist() == [0, 1, 7, 9]

    def test_sync_on_closed_spill_is_noop(self, tmp_path):
        spill = SpillFile(dir=tmp_path)
        spill.close()
        spill.sync()  # must not raise on the closed handle


class TestCompressedFormat:
    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_roundtrip(self, tmp_path, chunk_size):
        pairs = np.arange(40, dtype=np.int64).reshape(-1, 2)
        eids = np.arange(20, dtype=np.int64) * 3
        with SpillFile(dir=tmp_path, compression="zlib") as spill:
            spill.append(pairs[:12], eids[:12])
            spill.append(pairs[12:], eids[12:])
            got_pairs, got_eids = _drain(spill, chunk_size)
            assert np.array_equal(got_pairs, pairs)
            assert np.array_equal(got_eids, eids)
            sizes = [p.shape[0] for p, _ in spill.chunks(chunk_size)]
            assert all(s <= chunk_size for s in sizes)

    def test_raw_record_resembling_magic_not_misread(self, tmp_path):
        """Regression: a raw spill whose first u happens to start with
        the magic bytes must still sniff as raw, not raise/misparse."""
        u_as_magic = int.from_bytes(b"RSPL", "little")  # 0x4C505352
        pairs = np.asarray([(u_as_magic, 7), (1, 2)], dtype=np.int64)
        eids = np.asarray([0, 1], dtype=np.int64)
        with SpillFile(dir=tmp_path, delete=False) as raw:
            raw.append(pairs, eids)
            raw.sync()
            assert read_spill_header(raw.path) is None
            got_pairs, _ = _drain(raw)
            assert np.array_equal(got_pairs, pairs)

    def test_header_sniffing(self, tmp_path):
        with SpillFile(dir=tmp_path, delete=False, compression="zlib") as z:
            z.append(*_block([(0, 1)]))
            z.sync()
            assert read_spill_header(z.path) == "zlib"
        with SpillFile(dir=tmp_path, delete=False) as raw:
            raw.append(*_block([(0, 1)]))
            raw.sync()
            assert read_spill_header(raw.path) is None

    def test_compresses_redundant_data(self, tmp_path):
        """Realistic h2h spills (hub-heavy pairs) must shrink on disk."""
        pairs = np.zeros((5000, 2), dtype=np.int64)
        pairs[:, 1] = np.arange(5000) % 17
        eids = np.arange(5000, dtype=np.int64)
        with SpillFile(dir=tmp_path, compression="zlib") as z, SpillFile(
            dir=tmp_path
        ) as raw:
            z.append(pairs, eids)
            raw.append(pairs, eids)
            assert z.nbytes < raw.nbytes // 4
            assert len(z) == len(raw) == 5000

    def test_empty_compressed_spill(self, tmp_path):
        with SpillFile(dir=tmp_path, compression="zlib") as spill:
            assert list(spill.chunks()) == []
            assert len(spill) == 0

    def test_unknown_compression_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SpillFile(dir=tmp_path, compression="lz4")

    def test_truncated_compressed_file_detected(self, tmp_path):
        target = tmp_path / "trunc.bin"
        spill = SpillFile(path=target, delete=False, compression="zlib")
        spill.append(*_block([(0, 1), (2, 3), (4, 5)]))
        spill.sync()
        size = target.stat().st_size
        spill._num_edges += 10  # claim more records than the file holds
        with pytest.raises(GraphFormatError):
            list(spill.chunks())
        spill._num_edges -= 10
        spill.close()
        assert size > 0


class TestReadSpillChunksStandalone:
    """read_spill_chunks: the handed-over reader worker segments use."""

    def test_matches_spillfile_chunks(self, tmp_path):
        from repro.stream import SpillFile, read_spill_chunks

        pairs = np.arange(40, dtype=np.int64).reshape(-1, 2)
        eids = np.arange(20, dtype=np.int64)
        with SpillFile(path=tmp_path / "s.spill", delete=False,
                       compression="zlib") as spill:
            spill.append(pairs, eids)
            spill.sync()
            got = list(read_spill_chunks(spill.path, 20, "zlib", 7))
        assert np.array_equal(np.vstack([p for p, _ in got]), pairs)
        assert np.array_equal(np.concatenate([e for _, e in got]), eids)

    def test_framed_over_delivery_raises(self, tmp_path):
        """A frame spilling past the declared total must raise, not hand
        extra records downstream (worker segments trust their count)."""
        from repro.stream import SpillFile, read_spill_chunks

        pairs = np.arange(24, dtype=np.int64).reshape(-1, 2)
        with SpillFile(path=tmp_path / "s.spill", delete=False,
                       compression="zlib") as spill:
            spill.append(pairs, np.arange(12, dtype=np.int64))
            spill.sync()
            with pytest.raises(GraphFormatError, match="delivers"):
                list(read_spill_chunks(spill.path, 5, "zlib", 4))

"""Synthetic stand-ins for the paper's Table 3 datasets.

The paper evaluates on ten real-world graphs from 35 M to 64 B edges
(LiveJournal, Orkut, brain, wiki-links, it-2004, twitter-2010,
Friendster, uk-2007-05, gsh-2015, wdc-2014).  Those datasets are not
available offline and are far beyond pure-Python scale, so each name maps
to a *seeded generator recipe* that reproduces the class-defining
properties the evaluation depends on: power-law skew for the social
graphs, extreme skew for TW, locality/community structure for the web
graphs, and density for BR.

``load(name, scale)`` returns the stand-in; ``scale`` multiplies the
vertex count (benchmarks read the ``REPRO_SCALE`` environment variable so
the whole evaluation can be grown on bigger machines).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.edgelist import Graph

__all__ = ["DatasetSpec", "DATASETS", "load", "available", "env_scale"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe and provenance for one Table 3 stand-in."""

    name: str
    kind: str                      # Social | Web | Biological
    paper_vertices: str            # as printed in Table 3
    paper_edges: str
    builder: Callable[[float], Graph]
    description: str

    def build(self, scale: float = 1.0) -> Graph:
        """Generate the stand-in graph at ``scale`` and label it."""
        graph = self.builder(scale)
        graph.name = self.name
        return graph


def _lj(scale: float) -> Graph:
    return generators.chung_lu(
        n=int(6000 * scale), mean_degree=14, exponent=2.35, seed=101, name="LJ"
    )


def _ok(scale: float) -> Graph:
    return generators.chung_lu(
        n=int(4000 * scale), mean_degree=38, exponent=2.2, seed=102, name="OK"
    )


def _br(scale: float) -> Graph:
    # Dense biological graph: small vertex set, very high mean degree.
    return generators.chung_lu(
        n=int(1500 * scale), mean_degree=70, exponent=2.6, seed=103, name="BR"
    )


def _wi(scale: float) -> Graph:
    scale_bits = 13 + max(0, int(round(scale)) - 1).bit_length()
    return generators.rmat(
        scale=scale_bits, edge_factor=10, a=0.57, b=0.19, c=0.19, seed=104, name="WI"
    )


def _it(scale: float) -> Graph:
    return generators.community_web(
        num_communities=int(24 * scale),
        community_size=500,
        intra_mean_degree=14,
        inter_fraction=0.015,
        seed=105,
        name="IT",
    )


def _tw(scale: float) -> Graph:
    # Twitter: social graph with the heaviest hub skew of the corpus.
    return generators.chung_lu(
        n=int(9000 * scale), mean_degree=24, exponent=1.95, seed=106, name="TW"
    )


def _fr(scale: float) -> Graph:
    return generators.chung_lu(
        n=int(14000 * scale), mean_degree=12, exponent=2.45, seed=107, name="FR"
    )


def _uk(scale: float) -> Graph:
    return generators.community_web(
        num_communities=int(40 * scale),
        community_size=500,
        intra_mean_degree=16,
        inter_fraction=0.01,
        seed=108,
        name="UK",
    )


def _gsh(scale: float) -> Graph:
    return generators.community_web(
        num_communities=int(60 * scale),
        community_size=550,
        intra_mean_degree=18,
        inter_fraction=0.008,
        seed=109,
        name="GSH",
    )


def _wdc(scale: float) -> Graph:
    return generators.community_web(
        num_communities=int(80 * scale),
        community_size=550,
        intra_mean_degree=18,
        inter_fraction=0.006,
        seed=110,
        name="WDC",
    )


DATASETS: dict[str, DatasetSpec] = {
    "LJ": DatasetSpec(
        "LJ", "Social", "4.0 M", "35 M", _lj,
        "com-livejournal stand-in: moderate power-law social graph",
    ),
    "OK": DatasetSpec(
        "OK", "Social", "3.1 M", "117 M", _ok,
        "com-orkut stand-in: dense power-law social graph",
    ),
    "BR": DatasetSpec(
        "BR", "Biological", "784 k", "268 M", _br,
        "brain stand-in: small, very dense graph",
    ),
    "WI": DatasetSpec(
        "WI", "Web", "12 M", "378 M", _wi,
        "wiki-links stand-in: R-MAT web graph with extreme skew",
    ),
    "IT": DatasetSpec(
        "IT", "Web", "41 M", "1.2 B", _it,
        "it-2004 stand-in: community web graph, partitions very well",
    ),
    "TW": DatasetSpec(
        "TW", "Social", "42 M", "1.5 B", _tw,
        "twitter-2010 stand-in: heaviest hub skew",
    ),
    "FR": DatasetSpec(
        "FR", "Social", "66 M", "1.8 B", _fr,
        "com-friendster stand-in: large sparse social graph",
    ),
    "UK": DatasetSpec(
        "UK", "Web", "106 M", "3.7 B", _uk,
        "uk-2007-05 stand-in: community web graph",
    ),
    "GSH": DatasetSpec(
        "GSH", "Web", "988 M", "33 B", _gsh,
        "gsh-2015 stand-in: largest community web graph (streaming-only in paper)",
    ),
    "WDC": DatasetSpec(
        "WDC", "Web", "1.7 B", "64 B", _wdc,
        "wdc-2014 stand-in: largest graph of the corpus",
    ),
}


def available() -> list[str]:
    """Names of all Table 3 stand-ins."""
    return list(DATASETS)


def load(name: str, scale: float | None = None) -> Graph:
    """Build the stand-in for Table 3 dataset ``name`` (case-insensitive).

    ``scale`` defaults to :func:`env_scale` (the ``REPRO_SCALE``
    environment variable, default 1.0).
    """
    key = name.upper()
    if key not in DATASETS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    if scale is None:
        scale = env_scale()
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return DATASETS[key].build(scale)


def env_scale(default: float = 1.0) -> float:
    """Read the global experiment scale factor from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"REPRO_SCALE={raw!r} is not a number") from exc

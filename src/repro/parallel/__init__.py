"""Parallel HEP — the paper's future-work direction on parallelism.

See :mod:`repro.parallel.bsp_streaming` for the bulk-synchronous
parallel streaming phase and :class:`ParallelHepPartitioner`;
:mod:`repro.parallel.kernel` holds the snapshot-scoring / delta-merge
kernels shared with the multi-process driver
(:mod:`repro.stream.workers`).
"""

from repro.parallel.bsp_streaming import (
    BspStreamReport,
    ParallelHepPartitioner,
    bsp_hdrf_stream,
)
from repro.parallel.kernel import (
    apply_batch,
    apply_delta,
    contiguous_streams,
    place_batch_serialized,
    round_robin_streams,
    score_batch_on_snapshot,
    shard_round_robin_streams,
    superstep_is_safe,
)

__all__ = [
    "ParallelHepPartitioner",
    "bsp_hdrf_stream",
    "BspStreamReport",
    "score_batch_on_snapshot",
    "superstep_is_safe",
    "place_batch_serialized",
    "apply_batch",
    "apply_delta",
    "round_robin_streams",
    "contiguous_streams",
    "shard_round_robin_streams",
]

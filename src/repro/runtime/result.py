"""The unified result of a runtime partitioning job.

One :class:`PartitionResult` replaces the three pre-PR 8 result
families (:class:`~repro.stream.driver.StreamedResult`,
:class:`~repro.stream.pipeline.OutOfCoreResult`,
:class:`~repro.stream.workers.MultiWorkerResult`): it carries the
assignment handle, the quality metrics, the HEP phase breakdown and
worker report when the pipeline produced them, the provenance
(``job_hash``, ``cache_hit``, ``stages_executed``), and the trace
path.  The legacy driver shims convert through
:meth:`to_streamed` / :meth:`to_out_of_core` / :meth:`to_multi_worker`
so their public return types — and every field the test suite pins —
stay exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hep import HepPhaseBreakdown
from repro.runtime.spec import JobSpec

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """Everything one runtime job can report, pipeline-independent."""

    spec: JobSpec
    algorithm: str             # result-facing name (e.g. HDRF, HEP, HDRF-mw2)
    parts: np.ndarray          # (m,) int32 per-edge partition ids
    k: int
    num_vertices: int
    num_edges: int
    chunk_size: int
    loads: np.ndarray          # (k,) final per-partition edge counts
    replication_factor: float
    edge_balance: float
    runtime_s: float
    passes: int = 1
    tau: float | None = None
    breakdown: HepPhaseBreakdown | None = None
    spill_bytes: int = 0
    buffer_size: int | None = None
    projected_memory_bytes: int | None = None
    report: object | None = None      # MultiWorkerReport when BSP ran
    job_hash: str = ""
    cache_hit: bool = False
    stages_executed: tuple[str, ...] = ()
    trace_path: str | None = None

    @property
    def num_unassigned(self) -> int:
        """Number of edges left without a partition (should be zero)."""
        return int((self.parts < 0).sum())

    def to_assignment(self, graph):
        """Attach the parts to an in-memory Graph (tests/analysis only)."""
        from repro.partition.base import PartitionAssignment

        return PartitionAssignment(graph, self.k, self.parts)

    # -- legacy conversions ------------------------------------------------

    def to_streamed(self):
        """Convert to the legacy :class:`~repro.stream.driver.StreamedResult`."""
        from repro.stream.driver import StreamedResult

        return StreamedResult(
            algorithm=self.algorithm,
            parts=self.parts,
            k=self.k,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            chunk_size=self.chunk_size,
            passes=self.passes,
            loads=self.loads,
            replication_factor=self.replication_factor,
            edge_balance=self.edge_balance,
            runtime_s=self.runtime_s,
        )

    def to_out_of_core(self):
        """Convert to the legacy :class:`~repro.stream.pipeline.OutOfCoreResult`."""
        from repro.stream.pipeline import OutOfCoreResult

        return OutOfCoreResult(
            parts=self.parts,
            k=self.k,
            tau=self.tau,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            chunk_size=self.chunk_size,
            buffer_size=self.buffer_size,
            breakdown=self.breakdown,
            spill_bytes=self.spill_bytes,
            loads=self.loads,
            replication_factor=self.replication_factor,
            edge_balance=self.edge_balance,
            projected_memory_bytes=self.projected_memory_bytes,
            runtime_s=self.runtime_s,
        )

    def to_multi_worker(self):
        """Convert to the legacy :class:`~repro.stream.workers.MultiWorkerResult`."""
        from repro.stream.workers import MultiWorkerResult

        return MultiWorkerResult(
            algorithm=self.algorithm,
            parts=self.parts,
            k=self.k,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            chunk_size=self.chunk_size,
            report=self.report,
            loads=self.loads,
            replication_factor=self.replication_factor,
            edge_balance=self.edge_balance,
            runtime_s=self.runtime_s,
        )

#!/usr/bin/env python
"""The hybrid paradigm on hypergraphs (the paper's future-work direction).

Hypergraphs model group interactions — co-authorship, co-purchase,
net-lists — where one "edge" connects many vertices.  This example
partitions a clustered hypergraph two ways:

* pure streaming min-max (the memory-light baseline), and
* the hybrid partitioner: degree-threshold split, HYPE-style
  neighborhood expansion in memory, then informed streaming for the
  hyperedges whose pins are all high-degree.

Run:  python examples/hypergraph_partitioning.py
"""

import time

from repro.hypergraph import (
    HybridHypergraphPartitioner,
    MinMaxStreamingHypergraphPartitioner,
    clustered_hypergraph,
    hyper_balance,
    hyper_replication_factor,
    split_hyperedges,
)


def main() -> None:
    hypergraph = clustered_hypergraph(
        num_clusters=12,
        cluster_size=80,
        hyperedges_per_cluster=220,
        mean_pins=4.0,
        crossover=0.05,
        seed=21,
    )
    k = 8
    print(f"hypergraph: {hypergraph!r}, k={k}")

    high, streaming = split_hyperedges(hypergraph, tau=1.2)
    print(f"high-degree vertices  : {int(high.sum()):,} "
          f"({high.mean():.1%} of vertices)")
    print(f"streaming hyperedges  : {int(streaming.sum()):,} "
          f"({streaming.mean():.1%} of hyperedges, the h2h analogue)\n")

    for label, partitioner in (
        ("MinMaxStream", MinMaxStreamingHypergraphPartitioner()),
        ("HybridHG tau=1.2", HybridHypergraphPartitioner(tau=1.2)),
    ):
        start = time.perf_counter()
        parts = partitioner.partition(hypergraph, k)
        elapsed = time.perf_counter() - start
        rf = hyper_replication_factor(hypergraph, parts, k)
        alpha = hyper_balance(hypergraph, parts, k)
        print(f"{label:>16}: RF={rf:.3f}  alpha={alpha:.3f}  time={elapsed:.2f}s")

    print("\nthe hybrid partitioner exploits cluster locality the stream")
    print("cannot see — the same effect HEP has on web graphs.")


if __name__ == "__main__":
    main()

"""Route handlers for the partitioning service.

Split from :mod:`repro.serve.app` so the HTTP plumbing and the
service's behavior stay independently readable.  Handlers are small
async closures over the :class:`~repro.serve.queue.JobManager` (submit,
poll, cancel, progress streams) and the
:class:`~repro.serve.artifacts.ArtifactCache` (point lookups and
quality summaries); blocking work — attaching ``parts.npy``, building
the vertex cover, recomputing a streamed quality report — runs on the
event loop's default executor so the service stays responsive while a
partition executes.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator

from repro.serve.app import App, HTTPError, Request, Response
from repro.serve.artifacts import ArtifactCache, AttachedArtifact
from repro.serve.queue import JobManager, JobState

__all__ = ["register_routes"]


def _ndjson(event: dict) -> bytes:
    """One progress event as an NDJSON line."""
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")


def register_routes(app: App, manager: JobManager,
                    cache: ArtifactCache) -> None:
    """Attach every service endpoint to ``app``."""

    def find_job(request: Request):
        """The job named by the ``{id}`` path parameter, or a 404."""
        job = manager.jobs.get(request.params["id"])
        if job is None:
            raise HTTPError(404, f"no such job: {request.params['id']}")
        return job

    async def attach_artifact(request: Request) -> AttachedArtifact:
        """The completed job's artifact, attached via the LRU."""
        job = find_job(request)
        if job.state != JobState.SUCCEEDED:
            raise HTTPError(
                409, f"job {job.id} is {job.state}; lookups need a "
                "completed result"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, cache.attach, job.key)

    @app.route("GET", "/healthz")
    async def healthz(request: Request) -> Response:
        """Service liveness: job counts, live pools, store counters."""
        from repro.stream.workers import live_pool_health

        states: dict[str, int] = {}
        for job in manager.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return Response(200, {
            "status": "ok",
            "jobs": states,
            "executions": manager.executions,
            "pools": live_pool_health(),
            "store": {
                "hits": manager.store.hits,
                "misses": manager.store.misses,
                "quarantined": manager.store.quarantined,
            },
        })

    @app.route("POST", "/jobs")
    async def submit(request: Request) -> Response:
        """Submit a job; dedups onto an identical in-flight/completed one."""
        job, created = await manager.submit(request.json())
        doc = job.describe()
        doc["created"] = created
        doc["deduped"] = not created
        return Response(201 if created else 200, doc)

    @app.route("GET", "/jobs")
    async def list_jobs(request: Request) -> Response:
        """Every known job, newest first."""
        jobs = sorted(
            manager.jobs.values(), key=lambda j: j.created_at, reverse=True
        )
        return Response(200, {"jobs": [job.describe() for job in jobs]})

    @app.route("GET", "/jobs/{id}")
    async def job_status(request: Request) -> Response:
        """One job's status document."""
        return Response(200, find_job(request).describe())

    @app.route("POST", "/jobs/{id}/cancel")
    async def cancel(request: Request) -> Response:
        """Cancel a queued job now, or a running one at the next stage."""
        job = await manager.cancel(request.params["id"])
        if job is None:
            raise HTTPError(404, f"no such job: {request.params['id']}")
        return Response(202, job.describe())

    @app.route("GET", "/jobs/{id}/events")
    async def events(request: Request) -> Response:
        """Progress events as NDJSON; streams live while the job runs.

        ``?since=N`` resumes after sequence number ``N-1``; ``?wait=0``
        returns the current snapshot without following the live run.
        """
        job = find_job(request)
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            raise HTTPError(400, "since must be an integer")
        follow = request.query.get("wait", "1") not in ("0", "false")
        if not follow or job.events.closed:
            body = b"".join(_ndjson(e) for e in job.events.snapshot(since))
            return Response(200, body, content_type="application/x-ndjson")

        async def stream() -> AsyncIterator[bytes]:
            """Yield NDJSON lines until the job's event log closes."""
            cursor = since
            while True:
                batch = await job.events.wait_beyond(cursor)
                if not batch:
                    return
                for event in batch:
                    yield _ndjson(event)
                cursor = batch[-1]["seq"] + 1

        return Response(
            200, stream=stream(), content_type="application/x-ndjson"
        )

    @app.route("GET", "/jobs/{id}/result")
    async def result(request: Request) -> Response:
        """The completed job's result summary."""
        job = find_job(request)
        if job.summary is None:
            raise HTTPError(
                409, f"job {job.id} is {job.state}; no result yet"
            )
        return Response(200, job.summary)

    @app.route("GET", "/jobs/{id}/edge/{eid}")
    async def edge_lookup(request: Request) -> Response:
        """``edge → part`` from the attached artifact."""
        artifact = await attach_artifact(request)
        eid = request.int_param("eid")
        return Response(200, {
            "edge": eid, "part": artifact.edge_part(eid), "key": artifact.key,
        })

    @app.route("GET", "/jobs/{id}/vertex/{v}")
    async def vertex_lookup(request: Request) -> Response:
        """``vertex → parts`` (replica set) from the attached artifact."""
        artifact = await attach_artifact(request)
        vertex = request.int_param("v")
        loop = asyncio.get_running_loop()
        parts = await loop.run_in_executor(
            None, artifact.vertex_parts, vertex
        )
        return Response(200, {
            "vertex": vertex, "parts": parts, "key": artifact.key,
        })

    @app.route("GET", "/jobs/{id}/quality")
    async def quality(request: Request) -> Response:
        """Quality summary; ``?recompute=1`` re-streams the input."""
        artifact = await attach_artifact(request)
        if request.query.get("recompute") not in ("1", "true"):
            return Response(200, artifact.quality())
        from repro.metrics.streaming import streamed_quality_report

        source = (artifact.meta.get("spec") or {}).get(
            "input", {}
        ).get("path")
        if not source:
            raise HTTPError(
                409, "stored entry names no input path; recompute needs "
                "the original edge source"
            )
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None,
            lambda: streamed_quality_report(
                source, artifact.parts, artifact.k
            ),
        )
        return Response(200, {
            "k": report.k,
            "num_vertices": report.num_vertices,
            "num_edges": report.num_edges,
            "replication_factor": report.replication_factor,
            "edge_balance": report.edge_balance,
            "num_unassigned": report.num_unassigned,
            "recomputed": True,
        })

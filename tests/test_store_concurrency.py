"""Concurrency and failure-path tests for the runtime store and pools.

Four load-bearing properties from the service hardening pass:

* two processes racing :meth:`ArtifactStore.put` on the same key never
  raise and never leave a staging directory behind — whoever loses the
  rename treats the winner's byte-identical entry as its own,
* a corrupt or truncated entry is quarantined on first read (logged
  miss, entry moved under ``root/quarantine/``) instead of raising, and
  the key becomes writable again,
* a ``cancel`` event observed at a stage boundary aborts the run with
  :class:`~repro.errors.JobCancelledError`, persists **no** artifact,
  and an identical resubmit recomputes cleanly,
* a ``KeyboardInterrupt`` landing mid-superstep in a warm shared-memory
  pool still unwinds through every ``finally``: no ``psm_*`` segment
  survives (the session-scoped ``shm_leak_gate`` double-checks) and no
  worker process outlives the run.
"""

import hashlib
import json
import multiprocessing
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import JobCancelledError
from repro.graph import write_binary_edgelist
from repro.graph.generators import chung_lu
from repro.runtime import ArtifactStore, input_digest, make_job, run_job
from repro.runtime.store import QUARANTINE_DIR, STORE_FORMAT


@pytest.fixture(scope="module")
def graph():
    return chung_lu(300, mean_degree=6, exponent=2.2, seed=31, name="sc")


@pytest.fixture(scope="module")
def edge_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("sc") / "sc.bin"
    write_binary_edgelist(graph, path)
    return path


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    from repro.stream import write_sharded_edges

    out = tmp_path_factory.mktemp("scm") / "sc.manifest.json"
    write_sharded_edges(graph, out, num_shards=2)
    return out


def _spec(edge_file):
    return make_job("HDRF", edge_file, 8, chunk_size=256)


def _entry_key(store, spec, edge_file):
    digest = input_digest(spec, edge_file)
    assert digest is not None
    return store.cache_key(spec, digest), digest


def _put_racer(root, edge_file, keys, barrier, errors):
    """Child process body: race ``put`` on each key behind a barrier."""
    try:
        store = ArtifactStore(root)
        spec = _spec(edge_file)
        digest = input_digest(spec, edge_file)
        result = run_job(spec)
        for key in keys:
            barrier.wait(timeout=60)
            entry = store.put(key, result, digest)
            if not (entry / "meta.json").exists():
                raise AssertionError(f"put returned torn entry for {key}")
    except BaseException as exc:  # pragma: no cover - failure reporting
        errors.put(f"{type(exc).__name__}: {exc}")
        raise


class TestConcurrentPut:
    def test_two_writers_race_without_errors_or_leftovers(
        self, edge_file, tmp_path
    ):
        """Both writers survive every rename collision; store stays clean."""
        root = tmp_path / "cache"
        keys = [
            hashlib.sha256(f"race-{i}".encode()).hexdigest()
            for i in range(16)
        ]
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()
        procs = [
            ctx.Process(
                target=_put_racer,
                args=(root, edge_file, keys, barrier, errors),
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        reported = []
        while not errors.empty():
            reported.append(errors.get())
        assert not reported, f"racing writers failed: {reported}"
        assert all(p.exitcode == 0 for p in procs)
        # Every key landed exactly one intact entry…
        store = ArtifactStore(root)
        for key in keys:
            meta_path = store.entry_path(key) / "meta.json"
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            assert meta["format"] == STORE_FORMAT
            np.load(store.entry_path(key) / "parts.npy")
        # …and no losing staging directory survived anywhere.
        assert list(Path(root).rglob(".staging-*")) == []

    def test_put_is_idempotent_and_skips_staging_when_present(
        self, edge_file, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        spec = _spec(edge_file)
        result = run_job(spec)
        key, digest = _entry_key(store, spec, edge_file)
        first = store.put(key, result, digest)
        second = store.put(key, result, digest)
        assert first == second
        assert list((tmp_path / "cache").rglob(".staging-*")) == []

    def test_racing_runs_through_run_job_share_one_entry(
        self, edge_file, tmp_path
    ):
        """The end-to-end shape: same spec, same store, two processes."""
        root = tmp_path / "cache"

        def one_run():
            run_job(_spec(edge_file), store=ArtifactStore(root))

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=one_run) for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        store = ArtifactStore(root)
        warm = run_job(_spec(edge_file), store=store)
        assert warm.cache_hit and store.hits == 1


class TestQuarantine:
    def _seeded(self, edge_file, tmp_path):
        """A store holding one good entry; returns (store, spec, key)."""
        store = ArtifactStore(tmp_path / "cache")
        spec = _spec(edge_file)
        run_job(spec, store=store)
        key, _ = _entry_key(store, spec, edge_file)
        assert (store.entry_path(key) / "meta.json").exists()
        return store, spec, key

    def test_truncated_meta_is_quarantined_not_raised(
        self, edge_file, tmp_path
    ):
        store, spec, key = self._seeded(edge_file, tmp_path)
        meta_path = store.entry_path(key) / "meta.json"
        meta_path.write_text(meta_path.read_text()[:40], encoding="utf-8")
        fresh = ArtifactStore(store.root)
        assert fresh.get(key, spec) is None
        assert (fresh.misses, fresh.quarantined) == (1, 1)
        assert not store.entry_path(key).exists()
        moved = list((store.root / QUARANTINE_DIR).iterdir())
        assert [p.name for p in moved] == [f"{key}-0"]

    def test_torn_npy_is_quarantined(self, edge_file, tmp_path):
        store, spec, key = self._seeded(edge_file, tmp_path)
        (store.entry_path(key) / "parts.npy").write_bytes(b"not an npy")
        assert store.get(key, spec) is None
        assert store.quarantined == 1

    def test_valid_json_with_missing_keys_is_quarantined(
        self, edge_file, tmp_path
    ):
        store, spec, key = self._seeded(edge_file, tmp_path)
        (store.entry_path(key) / "meta.json").write_text(
            json.dumps({"format": STORE_FORMAT, "algorithm": "HDRF"}),
            encoding="utf-8",
        )
        assert store.get(key, spec) is None
        assert store.quarantined == 1

    def test_key_is_writable_again_after_quarantine(
        self, edge_file, tmp_path
    ):
        store, spec, key = self._seeded(edge_file, tmp_path)
        meta_path = store.entry_path(key) / "meta.json"
        meta_path.write_text("{", encoding="utf-8")
        assert store.get(key, spec) is None
        recomputed = run_job(spec, store=store)
        assert not recomputed.cache_hit
        warm = run_job(spec, store=store)
        assert warm.cache_hit
        assert np.array_equal(warm.parts, recomputed.parts)

    def test_repeat_corruption_gets_distinct_quarantine_slots(
        self, edge_file, tmp_path
    ):
        store, spec, key = self._seeded(edge_file, tmp_path)
        for expected in ("-0", "-1"):
            (store.entry_path(key)).mkdir(parents=True, exist_ok=True)
            (store.entry_path(key) / "meta.json").write_text(
                "{", encoding="utf-8"
            )
            assert store.get(key, spec) is None
            assert (
                store.root / QUARANTINE_DIR / f"{key}{expected}"
            ).exists()
        assert store.quarantined == 2

    def test_format_mismatch_is_a_plain_miss_not_corruption(
        self, edge_file, tmp_path
    ):
        store, spec, key = self._seeded(edge_file, tmp_path)
        meta_path = store.entry_path(key) / "meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["format"] = STORE_FORMAT + 1
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        assert store.get(key, spec) is None
        assert store.quarantined == 0
        assert meta_path.exists()  # left in place for the newer layout


class _TripAfter:
    """Event-alike whose ``is_set`` flips true on the n-th check."""

    def __init__(self, trip_at):
        self.trip_at = trip_at
        self.calls = 0

    def is_set(self):
        self.calls += 1
        return self.calls >= self.trip_at


class TestRunJobCancellation:
    def test_pre_set_cancel_runs_nothing_and_persists_nothing(
        self, edge_file, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(JobCancelledError, match="before planning"):
            run_job(_spec(edge_file), store=store, cancel=cancel)
        assert list((tmp_path / "cache").rglob("meta.json")) == []
        assert (store.hits, store.misses) == (0, 1)

    def test_mid_run_cancel_stops_at_stage_boundary(
        self, edge_file, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        # Check 1 = planning, 2 = stage "count", 3 = stage "stream":
        # tripping on the third check cancels after counting but before
        # any assignment lands.
        cancel = _TripAfter(trip_at=3)
        with pytest.raises(JobCancelledError, match="before stage 'stream'"):
            run_job(_spec(edge_file), store=store, cancel=cancel)
        assert list((tmp_path / "cache").rglob("meta.json")) == []

    def test_resubmit_after_cancel_recomputes_cleanly(
        self, edge_file, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        with pytest.raises(JobCancelledError):
            run_job(
                _spec(edge_file), store=store, cancel=_TripAfter(trip_at=3)
            )
        result = run_job(_spec(edge_file), store=store)
        assert not result.cache_hit
        assert result.stages_executed == ("count", "stream", "metrics")
        warm = run_job(_spec(edge_file), store=store)
        assert warm.cache_hit
        assert np.array_equal(warm.parts, result.parts)

    def test_unset_cancel_event_changes_nothing(self, edge_file, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        plain = run_job(_spec(edge_file))
        cancellable = run_job(
            _spec(edge_file), store=store, cancel=threading.Event()
        )
        assert np.array_equal(plain.parts, cancellable.parts)

    def test_multi_worker_cancel_reaps_the_pool(self, manifest, tmp_path):
        spec = make_job("HDRF", manifest, 8, workers=2, chunk_size=256)
        store = ArtifactStore(tmp_path / "cache")
        with pytest.raises(JobCancelledError):
            run_job(spec, store=store, cancel=_TripAfter(trip_at=3))
        assert list((tmp_path / "cache").rglob("meta.json")) == []
        _assert_no_repro_workers()


def _psm_segments():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return {p.name for p in shm_dir.glob("psm_*")}


def _assert_no_repro_workers(deadline_s=10.0):
    """Every ``repro-worker-*`` child must be reaped within the deadline."""
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        live = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-worker")
        ]
        if not live:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes outlived the run: {live}")


class TestWarmPoolInterrupt:
    def _interrupt_run(self, manifest, monkeypatch, trip_at):
        """Run a warm shared-memory job that hits a KeyboardInterrupt."""
        from repro.stream import workers as workers_mod

        original = workers_mod.StateService.begin_superstep
        state = {"calls": 0}

        def boom(self):
            state["calls"] += 1
            if state["calls"] >= trip_at:
                raise KeyboardInterrupt
            return original(self)

        monkeypatch.setattr(
            workers_mod.StateService, "begin_superstep", boom
        )
        spec = make_job(
            "HDRF", manifest, 8,
            workers=2, batch=2, shared_memory=True, chunk_size=256,
        )
        with pytest.raises(KeyboardInterrupt):
            run_job(spec)

    @pytest.mark.skipif(
        not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
    )
    def test_interrupt_mid_superstep_leaks_no_segments_or_workers(
        self, manifest, monkeypatch
    ):
        before = _psm_segments()
        self._interrupt_run(manifest, monkeypatch, trip_at=2)
        _assert_no_repro_workers()
        assert _psm_segments() - before == set()

    @pytest.mark.skipif(
        not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
    )
    def test_interrupt_before_first_superstep_leaks_nothing(
        self, manifest, monkeypatch
    ):
        before = _psm_segments()
        self._interrupt_run(manifest, monkeypatch, trip_at=1)
        _assert_no_repro_workers()
        assert _psm_segments() - before == set()

    def test_pool_health_registry_is_empty_after_clean_run(self, manifest):
        from repro.stream.workers import live_pool_health

        spec = make_job("HDRF", manifest, 8, workers=2, chunk_size=256)
        run_job(spec)
        assert live_pool_health() == []

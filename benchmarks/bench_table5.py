"""Bench: regenerate Table 5 (HEP vertex balancing)."""

from repro.experiments import table5


def bench_table5_vertex_balance(benchmark, record_experiment):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # The streaming-heavy configuration must clearly beat tau=100.
    assert all("tau=1 clearly better than tau=100=True" in n
               for n in result.notes if "tau=1" in n), result.notes

"""Tests for replication/balance metrics, validity checks and reports."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph import Graph
from repro.graph.generators import star
from repro.metrics import (
    PartitionReport,
    assert_valid,
    edge_balance,
    format_table,
    is_valid,
    load_distribution,
    replicas_per_vertex,
    replication_factor,
    rf_by_degree_bucket,
    summarize,
    vertex_balance,
)
from repro.partition import PartitionAssignment
from repro.partition.base import TimedResult


def square() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)


class TestReplication:
    def test_figure1_star_example(self):
        """The paper's Figure 1: a 7-vertex star split into two partitions
        has cut size 1 — only the hub is replicated, RF = 8/7."""
        g = star(7)
        parts = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        a = PartitionAssignment(g, 2, parts)
        assert replicas_per_vertex(a).tolist() == [2, 1, 1, 1, 1, 1, 1]
        assert replication_factor(a) == pytest.approx(8 / 7)

    def test_single_partition_rf_one(self):
        g = square()
        a = PartitionAssignment(g, 1, np.zeros(4, dtype=np.int32))
        assert replication_factor(a) == 1.0

    def test_isolated_vertices_excluded(self):
        g = Graph.from_edges([(0, 1)], num_vertices=10)
        a = PartitionAssignment(g, 2, np.array([0]))
        assert replication_factor(a) == 1.0

    def test_empty_graph(self):
        g = Graph.from_edges(np.empty((0, 2)), num_vertices=3)
        a = PartitionAssignment(g, 2, np.empty(0, dtype=np.int32))
        assert replication_factor(a) == 0.0

    def test_rf_by_degree_bucket(self):
        g = star(50)  # hub degree 49 (bucket 1), leaves degree 1 (bucket 0)
        parts = np.arange(49, dtype=np.int32) % 4
        a = PartitionAssignment(g, 4, parts)
        fractions, mean_rf, buckets = rf_by_degree_bucket(a)
        assert buckets.tolist() == [0, 1]
        assert fractions[0] == pytest.approx(49 / 50)
        assert mean_rf[0] == 1.0
        assert mean_rf[1] == 4.0


class TestBalance:
    def test_perfect_balance(self):
        a = PartitionAssignment(square(), 2, np.array([0, 0, 1, 1]))
        assert edge_balance(a) == 1.0

    def test_imbalance(self):
        a = PartitionAssignment(square(), 2, np.array([0, 0, 0, 1]))
        assert edge_balance(a) == pytest.approx(1.5)

    def test_vertex_balance_zero_when_equal(self):
        a = PartitionAssignment(square(), 2, np.array([0, 0, 1, 1]))
        # Each partition covers 3 vertices -> std 0.
        assert vertex_balance(a) == 0.0

    def test_load_distribution(self):
        a = PartitionAssignment(square(), 2, np.array([0, 0, 0, 1]))
        dist = load_distribution(a)
        assert dist["min"] == 1 and dist["max"] == 3
        assert dist["alpha"] == pytest.approx(1.5)


class TestValidity:
    def test_valid_assignment_passes(self):
        a = PartitionAssignment(square(), 2, np.array([0, 1, 0, 1]))
        assert_valid(a, alpha=1.0)
        assert is_valid(a, alpha=1.0)

    def test_unassigned_detected(self):
        a = PartitionAssignment(square(), 2, np.array([0, 1, 0, -1]))
        with pytest.raises(ValidationError, match="unassigned"):
            assert_valid(a)
        assert_valid(a, require_complete=False)  # partial check OK

    def test_out_of_range_detected(self):
        a = PartitionAssignment(square(), 2, np.array([0, 1, 0, 2]))
        with pytest.raises(ValidationError, match="out of range"):
            assert_valid(a)

    def test_capacity_violation_detected(self):
        a = PartitionAssignment(square(), 2, np.array([0, 0, 0, 1]))
        with pytest.raises(ValidationError, match="exceeds capacity"):
            assert_valid(a, alpha=1.0)
        assert_valid(a, alpha=1.5)  # relaxed bound passes


class TestReport:
    def test_summarize(self):
        g = square()
        g.name = "sq"
        a = PartitionAssignment(g, 2, np.array([0, 0, 1, 1]))
        report = summarize(TimedResult(a, 0.5, "X"))
        assert report == PartitionReport(
            partitioner="X",
            graph="sq",
            k=2,
            replication_factor=report.replication_factor,
            alpha=1.0,
            vertex_balance=0.0,
            runtime_s=0.5,
        )
        assert report.replication_factor == pytest.approx(6 / 4)

    def test_row_without_memory(self):
        r = PartitionReport("X", "g", 2, 1.5, 1.0, 0.1, 2.0)
        assert "mem_MiB" not in r.row()

    def test_row_with_memory(self):
        r = PartitionReport("X", "g", 2, 1.5, 1.0, 0.1, 2.0, memory_bytes=2**20)
        assert r.row()["mem_MiB"] == 1.0

    def test_format_table(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z", "c": 3}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "c" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

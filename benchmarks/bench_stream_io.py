"""Bench: in-memory HEP vs out-of-core HEP (wall-clock and peak heap).

The out-of-core pipeline trades extra passes over the edge file for a
bounded working set.  This bench measures both sides of that trade on a
file-backed R-MAT graph: wall-clock through pytest-benchmark, and a
peak-RSS proxy via ``tracemalloc`` (pure-Python heap peaks — interpreter
overhead cancels out of the comparison since both sides pay it).

It also reports the two new I/O knobs:

* **prefetch on/off** — the background reader thread can only buy back
  the GIL-*free* fraction of each pass (file reads, fsync waits); the
  comparison runs the binary reader cold (``posix_fadvise DONTNEED``
  where available) against the spill-writing split pass, the pipeline
  stage where reads genuinely overlap writes.  On a warm page cache the
  gain shrinks toward zero — the assertion is therefore "identical
  results, bounded overhead", with the measured times printed.
* **compressed vs raw spill** — bytes on disk vs round-trip time for
  the zlib-framed spill format.
* **single-file vs sharded(K=4) vs mmap** — read throughput of the
  three reader families over identical edge content, written as a
  ``BENCH_stream_io.json`` record under ``results/``.

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_io.py \
        -o python_functions=bench_ --benchmark-only
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from repro.core.hep import HepPartitioner
from repro.graph import generators, read_binary_edgelist, write_binary_edgelist
from repro.stream import (
    BinaryFileEdgeSource,
    MmapEdgeSource,
    OutOfCoreHep,
    PrefetchingEdgeSource,
    ShardedEdgeSource,
    SpillFile,
    scan_source,
    write_sharded_edges,
)

_K = 16
_TAU = 1.0
_CHUNK = 1 << 12


def _drop_page_cache(path) -> None:
    """Best-effort eviction so reads hit the device like real OOC runs."""
    if not hasattr(os, "posix_fadvise"):
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = generators.rmat(scale=12, edge_factor=8, seed=42, name="bench-rmat")
    path = tmp_path_factory.mktemp("stream-io") / "rmat.bin"
    write_binary_edgelist(graph, path)
    return path


def bench_in_memory_hep(benchmark, edge_file):
    def run():
        graph = read_binary_edgelist(edge_file)
        return HepPartitioner(tau=_TAU).partition(graph, _K)

    assignment = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert assignment.num_unassigned == 0


def bench_out_of_core_hep(benchmark, edge_file):
    pipeline = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK)
    result = benchmark.pedantic(
        pipeline.partition, args=(edge_file, _K), rounds=2, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_unassigned == 0
    assert result.breakdown.num_h2h_edges > 0


def bench_out_of_core_hep_buffered(benchmark, edge_file):
    pipeline = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK, buffer_size=1024)
    result = benchmark.pedantic(
        pipeline.partition, args=(edge_file, _K), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_unassigned == 0


def bench_out_of_core_hep_compressed_spill(benchmark, edge_file):
    """zlib-framed spill: same parts, smaller disk footprint."""
    raw = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK).partition(edge_file, _K)
    pipeline = OutOfCoreHep(
        tau=_TAU, chunk_size=_CHUNK, spill_compression="zlib"
    )
    result = benchmark.pedantic(
        pipeline.partition, args=(edge_file, _K), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert (result.parts == raw.parts).all()
    assert result.spill_bytes < raw.spill_bytes


def bench_spill_format_comparison(benchmark, edge_file, capsys):
    """Raw vs zlib spill: round-trip wall-clock and bytes on disk."""
    source = BinaryFileEdgeSource(edge_file, _CHUNK)

    def roundtrip(compression):
        start = time.perf_counter()
        with SpillFile(compression=compression) as spill:
            for chunk in source:
                spill.append(chunk.pairs, chunk.eids)
            edges = sum(p.shape[0] for p, _ in spill.chunks(_CHUNK))
            nbytes = spill.nbytes
        return time.perf_counter() - start, nbytes, edges

    def measure():
        return {c: roundtrip(c) for c in (None, "zlib")}

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nspill round-trip (append + chunked read-back):")
        for comp, (elapsed, nbytes, edges) in rows.items():
            name = comp or "raw"
            print(f"  {name:<5} {elapsed * 1000:8.1f} ms  "
                  f"{nbytes:>12,} bytes  {edges:,} edges")
    assert rows[None][2] == rows["zlib"][2]
    assert rows["zlib"][1] < rows[None][1]


def bench_prefetch_comparison(benchmark, edge_file, capsys):
    """Prefetch on/off over the binary reader, cold cache, split-pass load.

    The consumer is the durable spill-writing split pass — the stage
    where the reader's I/O can genuinely overlap the writer's.  Chunk
    content must be bit-identical either way; the wall-clock comparison
    is printed (improvement tracks how slow the underlying storage is).
    """
    plain = BinaryFileEdgeSource(edge_file, _CHUNK)
    prefetched = PrefetchingEdgeSource(plain, depth=4)

    def durable_split(src):
        with SpillFile() as spill:
            for chunk in src:
                spill.append(chunk.pairs, chunk.eids)
                spill.sync()
            return len(spill)

    def timed(src, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            _drop_page_cache(edge_file)
            start = time.perf_counter()
            count = durable_split(src)
            best = min(best, time.perf_counter() - start)
        return best, count

    def measure():
        return {"plain": timed(plain), "prefetch": timed(prefetched)}

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nbinary reader + durable split pass (cold cache, best of 3):")
        for name, (elapsed, count) in rows.items():
            print(f"  {name:<9} {elapsed * 1000:8.1f} ms  {count:,} edges")
        speedup = rows["plain"][0] / rows["prefetch"][0]
        print(f"  speedup   {speedup:8.3f}x")
    # Identical edge count and — checked cheaply here — identical stats.
    # No timing assertion: fsync/IO latency is environment-dependent, so
    # the printed ratio is the artifact (it trends > 1x as storage slows).
    assert rows["plain"][1] == rows["prefetch"][1]
    assert scan_source(plain).num_edges == scan_source(prefetched).num_edges


def bench_reader_throughput_comparison(benchmark, edge_file, capsys):
    """Single-file vs sharded(K=4) vs mmap read throughput.

    All three readers deliver the identical chunk stream (asserted); the
    comparison is pure I/O + decode.  The measured rows land in
    ``results/BENCH_stream_io.json`` so CI and later sessions can track
    reader throughput as a machine-readable record.
    """
    import json
    from pathlib import Path

    chunk = 1 << 14
    manifest = write_sharded_edges(
        edge_file, edge_file.parent / "rmat.manifest.json", num_shards=4,
        chunk_size=chunk,
    )
    # Fresh source per round (a reused MmapEdgeSource would keep its
    # mapping resident) and cache eviction for *every* file a reader
    # touches, so all three families start equally cold.
    readers = {
        "single-file": lambda: BinaryFileEdgeSource(edge_file, chunk),
        "sharded-k4": lambda: ShardedEdgeSource(manifest, chunk),
        "mmap": lambda: MmapEdgeSource(edge_file, chunk),
    }
    cold_paths = [edge_file, manifest.path, *manifest.shard_paths]

    def sweep(src):
        # Consume every chunk; touch the data so mmap actually pages in.
        edges = 0
        checksum = 0
        for c in src:
            edges += c.num_edges
            checksum += int(c.pairs[0, 0]) + int(c.pairs[-1, 1])
        return edges, checksum

    def timed(make_source, rounds=3):
        best = float("inf")
        result = None
        for _ in range(rounds):
            for path in cold_paths:
                _drop_page_cache(path)
            start = time.perf_counter()
            result = sweep(make_source())
            best = min(best, time.perf_counter() - start)
        return best, result

    def measure():
        return {name: timed(make) for name, make in readers.items()}

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    num_edges = rows["single-file"][1][0]
    record = {
        "bench": "stream_io_readers",
        "edges": num_edges,
        "chunk_size": chunk,
        "shards": manifest.num_shards,
        "rows": [
            {
                "reader": name,
                "seconds": elapsed,
                "edges_per_s": num_edges / elapsed if elapsed else None,
            }
            for name, (elapsed, _) in rows.items()
        ],
    }
    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_stream_io.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    with capsys.disabled():
        print("\nreader throughput (full sweep, cold cache, best of 3):")
        for name, (elapsed, _) in rows.items():
            print(f"  {name:<12} {elapsed * 1000:8.1f} ms  "
                  f"{num_edges / elapsed / 1e6:8.2f} Medges/s")
    # Identical content across all three reader families.
    assert len({result for _, result in rows.values()}) == 1
    # The new readers must at least keep pace with the buffered
    # single-file reader (generous slack: CI storage is noisy).
    best_new = min(rows["sharded-k4"][0], rows["mmap"][0])
    assert best_new <= rows["single-file"][0] * 1.5


def bench_peak_heap_comparison(benchmark, edge_file, capsys):
    """One traced run of each side; the table is the artifact."""

    def measure():
        rows = []
        tracemalloc.start()
        graph = read_binary_edgelist(edge_file)
        in_mem = HepPartitioner(tau=_TAU).partition(graph, _K)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(("in-memory HEP", peak, in_mem.replication_factor()))
        del graph, in_mem

        tracemalloc.start()
        result = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK).partition(
            edge_file, _K
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(("out-of-core HEP", peak, result.replication_factor))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\npeak traced heap (tau=%g, k=%d):" % (_TAU, _K))
        for name, peak, rf in rows:
            print(f"  {name:<18} {peak / 2**20:8.2f} MiB  rf={rf:.4f}")
    in_mem_peak = rows[0][1]
    ooc_peak = rows[1][1]
    # The bounded pipeline must not exceed the in-memory peak: chunks
    # plus the pruned CSR are strictly smaller than the full edge array
    # plus the same CSR.
    assert ooc_peak < in_mem_peak

"""Tests for the baseline NE partitioner (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.generators import chung_lu, erdos_renyi, grid2d, ring, star
from repro.metrics import assert_valid, replication_factor
from repro.partition import HdrfPartitioner, RandomStreamPartitioner
from repro.partition.ne import NePartitioner


@pytest.fixture(scope="module")
def social_graph() -> Graph:
    return chung_lu(500, mean_degree=10, exponent=2.3, seed=11, name="soc")


class TestNeBasics:
    def test_valid_complete_assignment(self, social_graph):
        a = NePartitioner().partition(social_graph, 4)
        assert_valid(a, alpha=1.3)
        assert a.num_unassigned == 0

    def test_every_edge_exactly_once(self, social_graph):
        a = NePartitioner().partition(social_graph, 4)
        assert (a.parts >= 0).all()
        assert a.partition_sizes().sum() == social_graph.num_edges

    def test_deterministic_given_seed(self, social_graph):
        a = NePartitioner(seed=5).partition(social_graph, 4)
        b = NePartitioner(seed=5).partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_seed_changes_result(self, social_graph):
        a = NePartitioner(seed=5).partition(social_graph, 4)
        b = NePartitioner(seed=6).partition(social_graph, 4)
        assert not np.array_equal(a.parts, b.parts)

    def test_k2(self, social_graph):
        a = NePartitioner().partition(social_graph, 2)
        assert_valid(a, alpha=1.3)

    def test_disconnected_components(self):
        # Two rings that share no vertices force re-initialization.
        r1 = ring(30).edges
        r2 = ring(30).edges + 30
        g = Graph.from_edges(np.vstack([r1, r2]), num_vertices=60)
        a = NePartitioner().partition(g, 4)
        assert_valid(a, alpha=1.5)

    def test_grid_low_rf(self):
        # A mesh partitions into contiguous patches: RF should be near 1.
        g = grid2d(20, 20)
        a = NePartitioner().partition(g, 4)
        assert replication_factor(a) < 1.35

    def test_star_graph(self):
        g = star(64)
        a = NePartitioner().partition(g, 4)
        assert_valid(a, alpha=1.3)


class TestNeQuality:
    def test_beats_random_streaming(self, social_graph):
        rf_ne = replication_factor(NePartitioner().partition(social_graph, 8))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(social_graph, 8)
        )
        assert rf_ne < rf_rand

    def test_beats_hdrf_on_community_graph(self):
        """The paper's core premise: in-memory NE beats streaming HDRF,
        especially on graphs with locality."""
        from repro.graph.generators import community_web

        g = community_web(10, 60, intra_mean_degree=8, inter_fraction=0.02, seed=9)
        rf_ne = replication_factor(NePartitioner().partition(g, 8))
        rf_hdrf = replication_factor(HdrfPartitioner().partition(g, 8))
        assert rf_ne < rf_hdrf

    def test_balanced_partitions(self, social_graph):
        a = NePartitioner().partition(social_graph, 8)
        sizes = a.partition_sizes()
        cap = -(-social_graph.num_edges // 8)
        # All partitions at most capacity + small spill allowance.
        assert sizes.max() <= cap * 1.3


class TestNeHistory:
    def test_history_disabled_by_default(self, social_graph):
        p = NePartitioner()
        p.partition(social_graph, 4)
        assert p.history is None

    def test_secondary_degrees_exceed_core_degrees(self, social_graph):
        """Figure 5's phenomenon: vertices remaining in S have much higher
        average degree than vertices moved to C."""
        p = NePartitioner(record_history=True)
        p.partition(social_graph, 8)
        h = p.history
        assert h is not None and h.core_degrees and h.secondary_end_degrees
        mean_deg = social_graph.mean_degree
        assert h.normalized_secondary_degree(mean_deg) > h.normalized_core_degree(
            mean_deg
        )

    def test_normalized_degree_empty_history(self):
        from repro.partition.ne import NeHistory

        h = NeHistory()
        assert h.normalized_core_degree(5.0) == 0.0
        assert h.normalized_secondary_degree(0.0) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(6, 40),
    m=st.integers(8, 120),
    k=st.sampled_from([2, 3, 4, 8]),
    seed=st.integers(0, 4),
)
def test_ne_property_random_graphs(n, m, k, seed):
    """Property: NE produces a complete, exactly-once assignment on
    arbitrary random graphs (including disconnected ones)."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return
    a = NePartitioner(seed=seed).partition(g, k)
    assert (a.parts >= 0).all()
    assert a.partition_sizes().sum() == g.num_edges
    # Spill-over may overshoot by one expansion step; alpha stays sane.
    assert_valid(a, alpha=3.0)

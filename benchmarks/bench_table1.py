"""Bench: empirical scaling behind Table 1's complexity comparison."""

from repro.experiments import table1


def bench_table1_scaling(benchmark, record_experiment):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    assert any("near-linearly in |E|: True" in n for n in result.notes)

"""Bench: regenerate Figure 8 (the headline RF/run-time/memory sweep).

Default sweep: OK + IT at k in {4, 32} over all ten partitioner
configurations; set ``REPRO_BENCH_FULL=1`` for the paper's full grid.
"""

from repro.experiments import figure8


def bench_figure8_partitioner_sweep(benchmark, record_experiment):
    result = benchmark.pedantic(figure8.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # Every headline ordering the paper plots must hold on every cell.
    chains = [n for n in result.notes if "RF chain" in n]
    assert chains and all("holds=True" in n for n in chains), chains

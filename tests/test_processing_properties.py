"""Property-based tests for the processing algorithms' mathematical
invariants, independent of any particular graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi
from repro.partition import DbhPartitioner, RandomStreamPartitioner
from repro.processing import VertexCutEngine, bfs, connected_components, pagerank


def _engine(n, m, seed, k=4):
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return None
    return VertexCutEngine(DbhPartitioner().partition(g, k))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(6, 40), m=st.integers(8, 120), seed=st.integers(0, 5))
def test_pagerank_is_a_distribution(n, m, seed):
    """Ranks are positive and sum to ~1 (damped walk conservation)."""
    engine = _engine(n, m, seed)
    if engine is None:
        return
    result = pagerank(engine, iterations=50)
    ranks = result.values
    assert (ranks > 0).all()
    assert ranks.sum() == pytest.approx(1.0, abs=0.05)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(6, 40), m=st.integers(8, 120), seed=st.integers(0, 5))
def test_bfs_distances_respect_edges(n, m, seed):
    """Adjacent vertices' BFS levels differ by at most one."""
    engine = _engine(n, m, seed)
    if engine is None:
        return
    graph = engine.graph
    sources = np.flatnonzero(graph.degrees > 0)[:1]
    if sources.size == 0:
        return
    result = bfs(engine, seeds=sources.tolist())
    dist = result.values[0]
    for u, v in graph.edges.tolist():
        if dist[u] >= 0 and dist[v] >= 0:
            assert abs(dist[u] - dist[v]) <= 1
        else:
            # Reachability is symmetric along an edge.
            assert dist[u] == dist[v] == -1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(6, 40), m=st.integers(8, 120), seed=st.integers(0, 5))
def test_cc_labels_are_component_minima(n, m, seed):
    """Every vertex's label equals the smallest vertex id reachable from
    it, and endpoints of every edge share a label."""
    engine = _engine(n, m, seed)
    if engine is None:
        return
    graph = engine.graph
    labels = connected_components(engine).values
    for u, v in graph.edges.tolist():
        assert labels[u] == labels[v]
    # Labels are idempotent: the label's label is itself.
    for v in range(graph.num_vertices):
        assert labels[labels[v]] == labels[v]
        assert labels[v] <= v


@settings(max_examples=15, deadline=None)
@given(n=st.integers(6, 30), m=st.integers(8, 80), seed=st.integers(0, 4))
def test_costs_are_partitioning_independent_values(n, m, seed):
    """Algorithm *values* must not depend on the partitioning; only the
    simulated costs may."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < 4:
        return
    e1 = VertexCutEngine(DbhPartitioner().partition(g, 4))
    e2 = VertexCutEngine(RandomStreamPartitioner(seed=seed).partition(g, 4))
    r1 = pagerank(e1, iterations=10)
    r2 = pagerank(e2, iterations=10)
    assert np.allclose(r1.values, r2.values)
    c1 = connected_components(e1)
    c2 = connected_components(e2)
    assert np.array_equal(c1.values, c2.values)

"""Quality metrics for edge partitionings (Section 2 definitions)."""

from repro.metrics.balance import edge_balance, load_distribution, vertex_balance
from repro.metrics.communication import (
    boundary_vertices_per_partition,
    communication_volume,
    num_cut_vertices,
)
from repro.metrics.replication import (
    replicas_per_vertex,
    replication_factor,
    rf_by_degree_bucket,
)
from repro.metrics.report import PartitionReport, format_table, summarize
from repro.metrics.validity import assert_valid, is_valid

__all__ = [
    "replication_factor",
    "replicas_per_vertex",
    "rf_by_degree_bucket",
    "edge_balance",
    "vertex_balance",
    "load_distribution",
    "assert_valid",
    "is_valid",
    "PartitionReport",
    "summarize",
    "format_table",
    "communication_volume",
    "num_cut_vertices",
    "boundary_vertices_per_partition",
]

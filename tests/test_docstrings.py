"""Docstring lint for the documented public API.

The ``repro.stream``, ``repro.partition``, ``repro.graph``, ``repro.
core``, ``repro.parallel``, ``repro.metrics``, ``repro.obs`` and
``repro.runtime`` packages are the
repo's documented surface (see docs/): every module and every public
class, function, method and property there must carry a docstring.  CI additionally runs
``ruff check`` with the pydocstyle ``D1`` rules over the same paths
(see .github/workflows/ci.yml and the ``[tool.ruff]`` table in
pyproject.toml); this AST-based test enforces the same contract without
requiring ruff locally.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro

_SRC = Path(repro.__file__).resolve().parent
_LINTED_PACKAGES = (
    "stream", "partition", "graph", "core", "parallel", "metrics", "obs",
    "runtime", "serve",
)


def _linted_files():
    for pkg in _LINTED_PACKAGES:
        yield from sorted((_SRC / pkg).rglob("*.py"))


def _public_defs(tree: ast.Module):
    """Yield (node, qualname) for module/class-level public defs."""
    def walk(body, prefix):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                qualname = f"{prefix}{node.name}"
                yield node, qualname
                if isinstance(node, ast.ClassDef):
                    yield from walk(node.body, f"{qualname}.")

    yield from walk(tree.body, "")


@pytest.mark.parametrize(
    "path", list(_linted_files()), ids=lambda p: str(p.relative_to(_SRC))
)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if not ast.get_docstring(tree):
        missing.append("<module docstring>")
    for node, qualname in _public_defs(tree):
        if not ast.get_docstring(node):
            missing.append(f"{qualname} (line {node.lineno})")
    assert not missing, (
        f"{path.relative_to(_SRC.parent)}: missing docstrings on public "
        f"API: {', '.join(missing)}"
    )


def test_lint_scope_is_nonempty():
    """Guard against the path layout silently drifting."""
    files = list(_linted_files())
    assert len(files) > 10

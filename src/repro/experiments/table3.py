"""Table 3: the dataset corpus — paper originals vs synthetic stand-ins."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.graph import describe
from repro.graph.datasets import DATASETS

__all__ = ["run"]


def run(scale: float | None = None) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for name, spec in DATASETS.items():
        graph = spec.build(scale) if scale else spec.build()
        stats = describe(graph)
        rows.append(
            {
                "graph": name,
                "type": spec.kind,
                "paper_|V|": spec.paper_vertices,
                "paper_|E|": spec.paper_edges,
                "standin_|V|": stats.num_vertices,
                "standin_|E|": stats.num_edges,
                "mean_deg": round(stats.mean_degree, 1),
                "max_deg": stats.max_degree,
                "skew(p99/med)": round(stats.skew, 1),
                "size_MiB": round(stats.binary_size_bytes / 2**20, 2),
            }
        )
    result = ExperimentResult(
        experiment_id="table3",
        title="Dataset corpus: Table 3 originals and their stand-ins",
        rows=rows,
        paper_shape="social graphs heavy-tailed; web graphs skewed with"
        " community locality; BR dense",
    )
    result.notes.append(
        "stand-ins are seeded synthetic graphs at laptop scale; see"
        " DESIGN.md section 4 for the substitution rationale"
    )
    return result

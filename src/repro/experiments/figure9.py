"""Figure 9: HEP vs. the simple hybrid baseline (Section 5.4).

Same ``tau`` split, different machinery: HEP runs NE++ + informed HDRF,
the baseline runs plain NE + random streaming.  The paper normalizes the
baseline to HEP; values above 1.0 mean HEP wins that metric.  The last
panel reports the h2h/rest edge-mass split per ``tau``.
"""

from __future__ import annotations

import time

from repro.core import HepPartitioner, hep_memory_bytes, ne_memory_bytes
from repro.experiments.common import ExperimentResult, dataset_list, load_dataset
from repro.experiments.paper_reference import SHAPES
from repro.graph.pruned import split_edges
from repro.metrics import replication_factor
from repro.partition import SimpleHybridPartitioner

__all__ = ["run"]

_DEFAULT_GRAPHS = ("OK", "IT")
_FULL_GRAPHS = ("OK", "IT", "TW", "FR", "UK")
_TAUS = (100.0, 10.0, 1.0)


def run(
    graphs: tuple[str, ...] | None = None,
    taus: tuple[float, ...] = _TAUS,
    k: int = 32,
) -> ExperimentResult:
    names = list(graphs) if graphs else dataset_list(_DEFAULT_GRAPHS, _FULL_GRAPHS)
    rows: list[dict[str, object]] = []
    for name in names:
        graph = load_dataset(name)
        for tau in taus:
            start = time.perf_counter()
            hep = HepPartitioner(tau=tau).partition(graph, k)
            hep_time = time.perf_counter() - start

            start = time.perf_counter()
            hybrid = SimpleHybridPartitioner(tau=tau).partition(graph, k)
            hybrid_time = time.perf_counter() - start

            rf_hep = replication_factor(hep)
            rf_hybrid = replication_factor(hybrid)
            # Memory: HEP per Section 4.2; the baseline holds the full NE
            # structures for the REST subgraph.
            rest = graph.subgraph_edges(~split_edges(graph, tau).h2h_mask)
            mem_hep = hep_memory_bytes(graph, tau, k)
            mem_hybrid = ne_memory_bytes(rest, k)
            h2h_fraction = split_edges(graph, tau).h2h_fraction()
            rows.append(
                {
                    "graph": name,
                    "tau": tau,
                    "norm_RF(baseline/HEP)": round(rf_hybrid / rf_hep, 3),
                    "norm_time": round(hybrid_time / max(hep_time, 1e-9), 3),
                    "norm_memory": round(mem_hybrid / mem_hep, 3),
                    "H2H_share": round(h2h_fraction, 4),
                    "REST_share": round(1.0 - h2h_fraction, 4),
                }
            )
    result = ExperimentResult(
        experiment_id="figure9",
        title=f"Simple hybrid (NE + random) normalized to HEP (k={k})",
        rows=rows,
        paper_shape=SHAPES["figure9"],
    )
    for name in names:
        per_graph = [r for r in rows if r["graph"] == name]
        rf_ratios = [float(r["norm_RF(baseline/HEP)"]) for r in per_graph]
        shares = [float(r["H2H_share"]) for r in per_graph]
        # 5% tolerance: at high tau almost nothing streams, so the two
        # systems coincide up to NE-vs-NE++ seeding noise.
        growing = all(b >= a * 0.95 for a, b in zip(rf_ratios, rf_ratios[1:]))
        result.notes.append(
            f"{name}: HDRF-phase advantage grows as tau drops={growing}; "
            f"h2h share grows as tau drops={shares == sorted(shares)}"
        )
    return result

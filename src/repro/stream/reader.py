"""Chunked edge sources: bounded-memory iteration over edge streams.

Every source yields :class:`EdgeChunk` blocks of at most ``chunk_size``
edges and can be iterated multiple times (the out-of-core pipeline makes
one counting pass and one splitting pass).  Edge ids are the stream
positions, which for canonical input match the canonical ids a full
in-memory :class:`~repro.graph.edgelist.Graph` would assign — the basis
of the out-of-core ≡ in-memory equivalence property.

File sources assume *canonical* input (no self-loops, no duplicate
undirected edges) — exactly what :func:`repro.graph.edgelist.
write_text_edgelist` / ``write_binary_edgelist`` and the CLI's
``datasets --export`` produce.  Self-loops are detected per chunk and
rejected; global duplicate detection would require unbounded state and
is deliberately not attempted.

Chunk order is pluggable:

* in-memory sources accept every :data:`repro.graph.ordering.ORDERINGS`
  strategy (the full permutation is computed via ``edge_order``),
* binary file sources additionally support ``"shuffled"`` — a seeded
  permutation of *chunk* read order plus a within-chunk shuffle, which
  approximates a random stream order with O(chunk) memory,
* text file sources are sequential-only (``"natural"``).
"""

from __future__ import annotations

import abc
import os
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph.edgelist import Graph
from repro.graph.ordering import ORDERINGS, edge_order

__all__ = [
    "EdgeChunk",
    "EdgeChunkSource",
    "InMemoryEdgeSource",
    "BinaryFileEdgeSource",
    "TextFileEdgeSource",
    "PrefetchingEdgeSource",
    "open_edge_source",
    "sniff_edge_format",
    "require_edge_format",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_PREFETCH_DEPTH",
]

#: default number of edges per chunk (1 MiB of binary uint32 pairs)
DEFAULT_CHUNK_SIZE = 1 << 17

_BINARY_DTYPE = np.dtype("<u4")  # matches repro.graph.edgelist

#: suffixes that declare the flat binary uint32 pair format
BINARY_SUFFIXES = (".bin", ".edges", ".bel")


@dataclass(frozen=True)
class EdgeChunk:
    """One bounded block of an edge stream."""

    pairs: np.ndarray  # (c, 2) integer oriented endpoints (int64, or
                       # read-only uint32 views from an mmap source)
    eids: np.ndarray   # (c,) int64 canonical edge ids

    @property
    def num_edges(self) -> int:
        """Number of edges in this chunk."""
        return int(self.pairs.shape[0])


class EdgeChunkSource(abc.ABC):
    """Restartable iterable of :class:`EdgeChunk` blocks."""

    chunk_size: int

    @abc.abstractmethod
    def __iter__(self) -> Iterator[EdgeChunk]:
        """Yield the stream from the beginning (restartable)."""

    @property
    def num_edges(self) -> int | None:
        """Total edge count if knowable without a pass, else ``None``."""
        return None

    @property
    def num_vertices(self) -> int | None:
        """Vertex-universe size if known upfront, else ``None``.

        File sources return ``None`` (the counting pass derives
        ``max id + 1``, matching what ``read_*_edgelist`` would assign);
        in-memory sources report the graph's universe so trailing
        isolated vertices keep the same mean degree as the in-memory
        path.
        """
        return None

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        return type(self).__name__

    def stats(self) -> dict[str, float] | None:
        """Cumulative read counters, or ``None`` when the source keeps none.

        Sources with background reader machinery
        (:class:`PrefetchingEdgeSource`,
        :class:`~repro.stream.shard.ShardedEdgeSource`) return a dict of
        numeric counters — chunks/edges/bytes served and ``stall_s``,
        the consumer-side seconds spent waiting on reader threads —
        which drivers fold into trace output as a ``source_read`` event.
        Counters accumulate across iterations until ``close()``.
        """
        return None

    def close(self) -> None:
        """Release any live resources (threads, handles, maps).

        The base implementation is a no-op: plain file sources open and
        close their handle inside each ``__iter__`` call.  Sources that
        keep background threads or maps alive between ``next()`` calls
        (:class:`PrefetchingEdgeSource`,
        :class:`~repro.stream.shard.ShardedEdgeSource`,
        :class:`~repro.stream.shard.MmapEdgeSource`) override this; it
        must be idempotent and safe to call mid-iteration.
        """


def _check_chunk_size(chunk_size: int) -> int:
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return int(chunk_size)


class InMemoryEdgeSource(EdgeChunkSource):
    """Chunked view of an already-loaded :class:`Graph`.

    ``order`` is any :data:`~repro.graph.ordering.ORDERINGS` strategy;
    the permutation is realized through :func:`~repro.graph.ordering.
    edge_order`, so "degree-aware" chunk orders come for free.
    """

    def __init__(
        self,
        graph: Graph,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        order: str = "natural",
        seed: int = 0,
    ) -> None:
        if order not in ORDERINGS:
            raise ConfigurationError(
                f"unknown ordering {order!r}; available: {', '.join(ORDERINGS)}"
            )
        self.graph = graph
        self.chunk_size = _check_chunk_size(chunk_size)
        self.order = order
        self.seed = seed
        self._perm = edge_order(graph, order, seed=seed)

    def __iter__(self) -> Iterator[EdgeChunk]:
        edges = self.graph.edges
        perm = self._perm
        for start in range(0, perm.size, self.chunk_size):
            ids = perm[start : start + self.chunk_size]
            yield EdgeChunk(pairs=edges[ids], eids=ids)

    @property
    def num_edges(self) -> int:
        """Edge count of the wrapped graph."""
        return self.graph.num_edges

    @property
    def num_vertices(self) -> int:
        """Vertex universe of the wrapped graph."""
        return self.graph.num_vertices

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        name = self.graph.name or "graph"
        return f"in-memory {name} ({self.order} order)"


class BinaryFileEdgeSource(EdgeChunkSource):
    """Chunked reader over a binary uint32 edge list on disk.

    The file format is the paper's (and ``write_binary_edgelist``'s):
    flat little-endian uint32 pairs.  Each chunk is one bounded
    ``np.fromfile`` read; ``order="shuffled"`` permutes the chunk read
    order (seekable) and shuffles within each chunk.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        order: str = "natural",
        seed: int = 0,
    ) -> None:
        if order not in ("natural", "shuffled"):
            raise ConfigurationError(
                f"binary file sources support 'natural' or 'shuffled' order, "
                f"got {order!r}"
            )
        self.path = Path(path)
        self.chunk_size = _check_chunk_size(chunk_size)
        self.order = order
        self.seed = seed
        size = self.path.stat().st_size
        if size % 8 != 0:
            raise GraphFormatError(
                f"{path}: binary edge list length {size} is not a multiple of 8"
            )
        self._num_edges = size // 8

    def __iter__(self) -> Iterator[EdgeChunk]:
        num_chunks = -(-self._num_edges // self.chunk_size) if self._num_edges else 0
        chunk_ids = np.arange(num_chunks)
        rng = None
        if self.order == "shuffled":
            rng = np.random.default_rng(self.seed)
            rng.shuffle(chunk_ids)
        size = self.path.stat().st_size
        if size != self._num_edges * 8:
            raise GraphFormatError(
                f"{self.path}: file is {size} bytes but held "
                f"{self._num_edges * 8} at open "
                f"({self._num_edges} edges); it changed on disk"
            )
        with open(self.path, "rb") as fh:
            for c in chunk_ids.tolist():
                start = c * self.chunk_size
                count = min(self.chunk_size, self._num_edges - start)
                fh.seek(start * 8)
                flat = np.fromfile(fh, dtype=_BINARY_DTYPE, count=count * 2)
                if flat.size != count * 2:
                    # Short read: the file shrank between chunks (or an
                    # odd tail appeared) — never hand back a chunk whose
                    # pairs do not parallel its eids.
                    raise GraphFormatError(
                        f"{self.path}: truncated read at edge {start}: "
                        f"expected {count} edges, got {flat.size // 2} "
                        f"({flat.size} uint32 values); the file was "
                        f"truncated during iteration"
                    )
                pairs = flat.reshape(-1, 2).astype(np.int64)
                eids = np.arange(start, start + count, dtype=np.int64)
                if rng is not None:
                    inner = rng.permutation(count)
                    pairs, eids = pairs[inner], eids[inner]
                _validate_chunk(pairs, self.path)
                yield EdgeChunk(pairs=pairs, eids=eids)

    @property
    def num_edges(self) -> int:
        """Edge count derived from the file size (pairs of uint32)."""
        return self._num_edges

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        return f"binary file {self.path} ({self.order} order)"


class TextFileEdgeSource(EdgeChunkSource):
    """Chunked reader over a ``u v``-per-line text edge list.

    Lines are parsed lazily; ``#``-prefixed lines and blanks are skipped.
    Edge ids number the *edges* (not the lines), matching what
    :func:`~repro.graph.edgelist.read_text_edgelist` would assign.
    """

    def __init__(
        self, path: str | os.PathLike, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        self.path = Path(path)
        self.chunk_size = _check_chunk_size(chunk_size)

    def __iter__(self) -> Iterator[EdgeChunk]:
        buf: list[tuple[int, int]] = []
        next_eid = 0
        with open(self.path, "r", encoding="ascii") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                if len(fields) != 2:
                    raise GraphFormatError(
                        f"{self.path}:{lineno}: expected 'u v', got {line!r}"
                    )
                try:
                    u, v = int(fields[0]), int(fields[1])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{self.path}:{lineno}: non-integer id"
                    ) from exc
                if u < 0 or v < 0:
                    # The in-memory Graph constructor rejects negatives;
                    # accepting them here would negative-index degree
                    # arrays downstream instead of raising.
                    raise GraphFormatError(
                        f"{self.path}:{lineno}: negative vertex id "
                        f"({u} {v})"
                    )
                buf.append((u, v))
                if len(buf) >= self.chunk_size:
                    yield self._emit(buf, next_eid)
                    next_eid += len(buf)
                    buf = []
        if buf:
            yield self._emit(buf, next_eid)

    def _emit(self, buf: list[tuple[int, int]], first_eid: int) -> EdgeChunk:
        pairs = np.asarray(buf, dtype=np.int64).reshape(-1, 2)
        _validate_chunk(pairs, self.path)
        return EdgeChunk(
            pairs=pairs,
            eids=np.arange(first_eid, first_eid + pairs.shape[0], dtype=np.int64),
        )

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        return f"text file {self.path}"


#: default number of decoded chunks held ahead of the consumer
#: (2 = classic double-buffering: one being consumed, one in flight)
DEFAULT_PREFETCH_DEPTH = 2

#: queue sentinel marking the clean end of a prefetched stream
_STREAM_END = object()


class _PrefetchError:
    """Envelope carrying a worker-thread exception to the consumer."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class PrefetchingEdgeSource(EdgeChunkSource):
    """Background-thread prefetch wrapper around any edge source.

    A reader thread iterates the inner source and pushes decoded
    :class:`EdgeChunk` blocks into a bounded queue of ``depth`` entries,
    so file I/O and decoding overlap with downstream scoring.  Chunk
    *content and order* are exactly the inner source's — prefetching is
    a pure latency optimization and never changes results.

    Each ``__iter__`` call spawns a fresh worker (the wrapper stays
    restartable, so multi-pass algorithms re-read through it freely).
    Worker exceptions are re-raised in the consumer; abandoning the
    iterator mid-stream stops and joins the worker.
    """

    def __init__(
        self,
        inner: EdgeChunkSource,
        depth: int = DEFAULT_PREFETCH_DEPTH,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"prefetch depth must be >= 1, got {depth}")
        self.inner = inner
        self.depth = int(depth)
        self.chunk_size = inner.chunk_size
        self._live: list[tuple[threading.Event, queue.Queue, threading.Thread]] = []
        self._chunks_served = 0
        self._edges_served = 0
        self._bytes_served = 0
        self._stall_s = 0.0

    @staticmethod
    def _shut_down(
        stop: threading.Event, chunks: queue.Queue, worker: threading.Thread
    ) -> None:
        """Stop and reap one iteration's reader thread. Idempotent."""
        stop.set()
        # Drain so a blocked _put wakes up, then reap the worker.
        while worker.is_alive():
            try:
                chunks.get_nowait()
            except queue.Empty:
                pass
            worker.join(timeout=0.05)

    def __iter__(self) -> Iterator[EdgeChunk]:
        chunks: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item) -> bool:
            """Enqueue, polling for consumer abandonment; False = stop."""
            while not stop.is_set():
                try:
                    chunks.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _worker() -> None:
            try:
                for chunk in self.inner:
                    if not _put(chunk):
                        return
                _put(_STREAM_END)
            except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
                _put(_PrefetchError(exc))

        worker = threading.Thread(
            target=_worker, name="edge-chunk-prefetch", daemon=True
        )
        live = (stop, chunks, worker)
        self._live.append(live)
        worker.start()
        try:
            while True:
                stall_start = time.perf_counter()
                while True:
                    try:
                        item = chunks.get(timeout=0.05)
                        break
                    except queue.Empty:
                        # Poll so an external close() surfaces instead of
                        # blocking on a queue no reader feeds anymore.
                        if stop.is_set():
                            raise ValueError(
                                f"{self.describe()}: closed during iteration"
                            ) from None
                        continue
                self._stall_s += time.perf_counter() - stall_start
                if item is _STREAM_END:
                    return
                if isinstance(item, _PrefetchError):
                    raise item.exc
                self._chunks_served += 1
                self._edges_served += item.num_edges
                self._bytes_served += item.pairs.nbytes + item.eids.nbytes
                yield item
        finally:
            self._shut_down(*live)
            if live in self._live:
                self._live.remove(live)

    def close(self) -> None:
        """Stop every in-flight iteration: join the reader, release fds.

        Safe mid-iteration; resuming a closed iterator raises
        ``ValueError`` while fresh ``__iter__`` calls keep working.
        Also closes the wrapped inner source.  Idempotent.
        """
        for live in list(self._live):
            self._shut_down(*live)
            # Drop queued chunks and the iteration state now rather than
            # waiting for the abandoned generator to be finalized (its
            # own finally guards against the double removal).
            while True:
                try:
                    live[1].get_nowait()
                except queue.Empty:
                    break
        self._live.clear()
        self.inner.close()

    @property
    def num_edges(self) -> int | None:
        """Edge count of the wrapped source (``None`` if unknown)."""
        return self.inner.num_edges

    @property
    def num_vertices(self) -> int | None:
        """Vertex universe of the wrapped source (``None`` if unknown)."""
        return self.inner.num_vertices

    def describe(self) -> str:
        """Human-readable description including the prefetch depth."""
        return f"{self.inner.describe()} [prefetch x{self.depth}]"

    def stats(self) -> dict[str, float]:
        """Chunks/edges/bytes served and consumer stall seconds.

        ``stall_s`` is the time the consumer spent blocked on the
        prefetch queue — near zero when the reader thread keeps ahead,
        approaching the read time of the inner source when it cannot.
        """
        return {
            "chunks": self._chunks_served,
            "edges": self._edges_served,
            "bytes": self._bytes_served,
            "stall_s": self._stall_s,
        }


def _validate_chunk(pairs: np.ndarray, path: Path) -> None:
    """Per-chunk stream validation shared by every file-backed source.

    Rejects self-loops (chunked sources require canonical input) and
    negative vertex ids (which the in-memory :class:`Graph` constructor
    rejects; letting them through would silently negative-index degree
    arrays).  Unsigned payloads skip the sign check for free.
    """
    if pairs.size == 0:
        return
    if pairs.dtype.kind != "u" and int(pairs.min()) < 0:
        raise GraphFormatError(
            f"{path}: negative vertex id in edge stream — ids must be "
            f"non-negative, matching the in-memory Graph contract"
        )
    if (pairs[:, 0] == pairs[:, 1]).any():
        raise GraphFormatError(
            f"{path}: self-loop in edge stream — chunked sources require "
            f"canonical input (see repro.graph.edgelist.canonical_edges)"
        )


#: bytes legal in a text edge list: digits, signs, whitespace, comments
#: (comment lines may carry any printable ASCII)
_TEXT_BYTES = frozenset(range(0x20, 0x7F)) | {0x09, 0x0A, 0x0D}

#: how many leading bytes the format sniff inspects
_SNIFF_BYTES = 1024


def sniff_edge_format(path: "str | os.PathLike") -> str | None:
    """Classify an edge file's *content* as ``"text"`` or ``"binary"``.

    Reads the first :data:`_SNIFF_BYTES` bytes: a file consisting purely
    of printable ASCII plus whitespace is a text edge list (the SNAP
    convention); anything with control or high bytes is binary — flat
    uint32 pairs contain ``0x00`` high bytes for every realistic vertex
    id.  An empty file is ambiguous and returns ``None``.
    """
    with open(path, "rb") as fh:
        head = fh.read(_SNIFF_BYTES)
    if not head:
        return None
    return "text" if all(b in _TEXT_BYTES for b in head) else "binary"


def require_edge_format(path: "str | os.PathLike", declared: str) -> None:
    """Raise when a file's sniffed content contradicts its suffix.

    Suffix alone used to decide text-vs-binary, so a text edge list
    named ``*.edges`` was parsed as flat uint32 and silently partitioned
    garbage.  A mismatch is now a :class:`GraphFormatError` instead.
    """
    path = Path(path)
    sniffed = sniff_edge_format(path)
    if sniffed is not None and sniffed != declared:
        expect = (
            f"its suffix {path.suffix!r} declares flat binary uint32 pairs"
            if declared == "binary"
            else f"its suffix {path.suffix!r} implies a 'u v' text edge list"
        )
        raise GraphFormatError(
            f"{path}: content looks like a {sniffed} edge list but "
            f"{expect}; rename the file ({', '.join(BINARY_SUFFIXES)} "
            f"for binary) or convert it"
        )


def open_edge_source(
    source: "str | os.PathLike | Graph | EdgeChunkSource",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    order: str = "natural",
    seed: int = 0,
    mmap: bool = False,
) -> EdgeChunkSource:
    """One front door for every edge-stream shape.

    * an :class:`EdgeChunkSource` passes through unchanged,
    * a :class:`Graph` becomes an :class:`InMemoryEdgeSource`,
    * a Table 3 dataset name is generated then wrapped in-memory,
    * a ``*.manifest.json`` path becomes a concurrent
      :class:`~repro.stream.shard.ShardedEdgeSource`,
    * a ``.bin``/``.edges``/``.bel`` path becomes a
      :class:`BinaryFileEdgeSource` — or, with ``mmap=True``, a
      zero-copy :class:`~repro.stream.shard.MmapEdgeSource`,
    * any other existing path a :class:`TextFileEdgeSource`.

    File contents are sniffed against the suffix's declared format
    (:func:`sniff_edge_format`); a mismatch — e.g. a text edge list
    named ``*.edges`` — raises :class:`GraphFormatError` instead of
    silently parsing garbage.
    """
    if isinstance(source, EdgeChunkSource):
        return source
    if isinstance(source, Graph):
        return InMemoryEdgeSource(source, chunk_size, order=order, seed=seed)
    from repro.graph import datasets

    text = str(source)
    if text.upper() in datasets.available():
        graph = datasets.load(text)
        return InMemoryEdgeSource(graph, chunk_size, order=order, seed=seed)
    path = Path(source)
    if not path.exists():
        raise ConfigurationError(
            f"{text!r} is neither a dataset name "
            f"({', '.join(datasets.available())}) nor a file"
        )
    from repro.stream.shard import (
        MmapEdgeSource,
        ShardedEdgeSource,
        is_manifest_path,
    )

    if is_manifest_path(path):
        if order != "natural":
            raise ConfigurationError(
                "sharded sources are sequential-only (order='natural')"
            )
        if mmap:
            raise ConfigurationError(
                "mmap=True applies to single uncompressed binary edge "
                "files, not shard manifests"
            )
        return ShardedEdgeSource(path, chunk_size)
    if path.suffix in BINARY_SUFFIXES:
        require_edge_format(path, "binary")
        if mmap:
            if order != "natural":
                raise ConfigurationError(
                    "mmap sources are sequential-only (order='natural')"
                )
            return MmapEdgeSource(path, chunk_size)
        return BinaryFileEdgeSource(path, chunk_size, order=order, seed=seed)
    require_edge_format(path, "text")
    if mmap:
        raise ConfigurationError(
            "mmap=True requires a flat binary edge file "
            f"({', '.join(BINARY_SUFFIXES)})"
        )
    if order != "natural":
        raise ConfigurationError(
            "text file sources are sequential-only (order='natural')"
        )
    return TextFileEdgeSource(path, chunk_size)

#!/usr/bin/env python
"""Partitioning under a hard memory budget (the paper's Section 4.4).

Scenario: a machine with a fixed memory budget must partition a graph
whose unpruned CSR would not fit.  The Section 4.4 workflow:

1. profile HEP's projected footprint over a grid of tau values
   (a cheap degree-array pass — Table 2 shows it is negligible),
2. pick the *largest* tau that fits the budget (largest = best quality),
3. partition with that tau and verify the projection.

Run:  python examples/memory_budget.py [budget_kib]
"""

import sys

from repro import (
    HepPartitioner,
    datasets,
    hep_memory_bytes,
    precompute_profile,
    replication_factor,
    select_tau,
)


def main() -> None:
    graph = datasets.load("UK")   # web graph: prunes extremely well
    k = 32
    unpruned = hep_memory_bytes(graph, 1e9, k)
    budget = (
        int(sys.argv[1]) * 1024 if len(sys.argv) > 1 else int(unpruned * 0.6)
    )
    print(f"graph: {graph!r}")
    print(f"unpruned footprint : {unpruned / 2**20:.2f} MiB")
    print(f"memory budget      : {budget / 2**20:.2f} MiB")

    profile = precompute_profile(graph, k)
    print(f"\ntau profile (precomputed in {profile.precompute_seconds*1000:.1f} ms):")
    for row in profile.rows():
        marker = " <- fits" if int(row["bytes"]) <= budget else ""
        print(f"  tau={row['tau']:>7} -> {row['MiB']:>8.3f} MiB{marker}")

    tau, projected = select_tau(graph, budget, k)
    print(f"\nselected tau={tau:g} (projected {projected / 2**20:.2f} MiB)")

    partitioner = HepPartitioner(tau=tau)
    assignment = partitioner.partition(graph, k)
    print(f"replication factor at that budget: {replication_factor(assignment):.3f}")
    print(f"streamed edge share              : "
          f"{partitioner.last_breakdown.h2h_fraction:.1%}")


if __name__ == "__main__":
    main()

"""Bench: regenerate Figure 2 (degree vs. replication factor, k=32)."""

from repro.experiments import figure2


def bench_figure2_degree_vs_rf(benchmark, record_experiment):
    result = benchmark.pedantic(figure2.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows, "figure2 produced no rows"
    # Shape: within every (graph, partitioner) series RF rises with degree.
    assert all("True" in note for note in result.notes if "RF rises" in note)

"""Bench: regenerate Figure 7 (clean-up removal fraction, k=32)."""

from repro.experiments import figure7


def bench_figure7_cleanup_fraction(benchmark, record_experiment):
    result = benchmark.pedantic(figure7.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    for row in result.rows:
        fraction = float(row["removed_fraction"])
        assert 0.0 < fraction < 1.0, row

"""Out-of-core reruns of the paper's streaming comparison (Tables 2-4).

The paper's core claim is comparative: HEP's quality/memory trade-off
versus the streaming baselines.  PR 1 made HEP's side honest (chunked
reading, disk spill, a real byte budget); this experiment makes the
*baselines'* side honest too.  Every streaming baseline is run twice on
the same dataset:

* **in-memory** — the seed path, full edge list resident, and
* **out-of-core** — from a binary edge *file* through the runtime
  layer (:func:`~repro.runtime.spec.make_job` →
  :func:`~repro.runtime.api.run_job`), with only ``O(n + k)`` state
  plus one chunk in memory,

and the table reports both quality metrics plus whether the streamed
assignment is bit-identical (for natural order it must be).  HEP itself
runs as a ``JobSpec`` under an explicit byte budget, so the whole
comparison finally happens under the memory constraint the paper's
title promises.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import select_tau
from repro.experiments.common import (
    ExperimentResult,
    dataset_list,
    load_dataset,
    make_partitioner,
)
from repro.graph.edgelist import write_binary_edgelist
from repro.runtime import make_job, run_job
from repro.stream import chunked_quality, open_edge_source, scan_source

__all__ = ["run"]

_DEFAULT = ("WI",)
_FULL = ("WI", "LJ", "OK")

#: baselines with an out-of-core driver adapter (paper Table 1 names)
_BASELINES = ("HDRF", "Greedy", "DBH", "Grid", "Restreaming")

_CHUNK = 1 << 14


#: worker processes for the counting/metrics passes (bit-identical to
#: the sequential sweeps — re-verified per run in the notes)
_METRICS_WORKERS = 2


def run(
    graphs: tuple[str, ...] | None = None,
    k: int = 32,
    budget_fraction: float = 0.5,
    metrics_workers: int = _METRICS_WORKERS,
) -> ExperimentResult:
    """Compare every streaming baseline in-memory vs out-of-core.

    ``budget_fraction`` scales HEP's byte budget relative to the
    HEP-10 projected footprint, so the budgeted run genuinely has to
    pick a smaller tau on skewed inputs.  ``metrics_workers`` fans the
    counting/metrics sweeps out over worker processes (the reported
    quality is bit-identical either way; the equality note checks it).
    """
    names = list(graphs) if graphs else dataset_list(_DEFAULT, _FULL)
    rows: list[dict[str, object]] = []
    identical_everywhere = True
    scan_identical = True
    with tempfile.TemporaryDirectory(prefix="ooc-exp-") as tmp:
        for name in names:
            graph = load_dataset(name)
            path = Path(tmp) / f"{name}.bin"
            write_binary_edgelist(graph, path)
            for algo in _BASELINES:
                in_mem = make_partitioner(algo).partition(graph, k)
                ooc = run_job(make_job(
                    algo, path, k, chunk_size=_CHUNK,
                    metrics_workers=metrics_workers,
                ))
                same = bool(np.array_equal(ooc.parts, in_mem.parts))
                identical_everywhere &= same
                rows.append(
                    {
                        "graph": name,
                        "partitioner": ooc.algorithm,
                        "rf_in_mem": round(in_mem.replication_factor(), 4),
                        "rf_ooc": round(ooc.replication_factor, 4),
                        "alpha_ooc": round(ooc.edge_balance, 4),
                        "ooc_runtime_s": round(ooc.runtime_s, 3),
                        "identical": same,
                    }
                )
            # HEP under a genuine byte budget, from the same edge file.
            _, footprint = select_tau(graph, 10**12, k)
            budget = max(1, int(footprint * budget_fraction))
            result = run_job(make_job(
                "HEP", path, k, chunk_size=_CHUNK, memory_budget=budget,
                metrics_workers=metrics_workers, shared_memory=False,
            ))
            # One equality probe per graph: the worker-parallel metrics
            # pass must match the sequential sweep bit for bit.
            seq_rf, seq_alpha = chunked_quality(
                open_edge_source(path, _CHUNK),
                scan_source(open_edge_source(path, _CHUNK)),
                k,
                result.parts,
            )
            scan_identical &= (
                result.replication_factor == seq_rf
                and result.edge_balance == seq_alpha
            )
            hep_in_mem = make_partitioner(f"HEP-{result.tau:g}").partition(
                graph, k
            )
            hep_same = bool(np.array_equal(result.parts, hep_in_mem.parts))
            identical_everywhere &= hep_same
            rows.append(
                {
                    "graph": name,
                    "partitioner": f"HEP-{result.tau:g} (budget)",
                    "rf_in_mem": round(hep_in_mem.replication_factor(), 4),
                    "rf_ooc": round(result.replication_factor, 4),
                    "alpha_ooc": round(result.edge_balance, 4),
                    "ooc_runtime_s": round(result.runtime_s, 3),
                    "identical": hep_same,
                }
            )
    result = ExperimentResult(
        experiment_id="out_of_core",
        title="streaming baselines: in-memory vs out-of-core (natural order)",
        rows=rows,
        paper_shape="same quality ranking as Tables 2-4, now under a real "
        "memory budget",
    )
    result.notes.append(
        f"streamed == in-memory for every baseline: {identical_everywhere}"
    )
    result.notes.append(
        f"{metrics_workers}-worker metrics pass == sequential sweep: "
        f"{scan_identical}"
    )
    return result

"""Tests for the partitioner framework (base, state, scoring)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import Graph
from repro.partition import PartitionAssignment, StreamingState, capacity_bound
from repro.partition.scoring import greedy_choose, hdrf_scores


def triangle() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3)


class TestCapacityBound:
    def test_exact_division(self):
        assert capacity_bound(100, 4) == 25

    def test_rounds_up(self):
        assert capacity_bound(101, 4) == 26

    def test_alpha_scales(self):
        assert capacity_bound(100, 4, alpha=1.1) == 28

    def test_feasibility(self):
        # k * bound >= m always, so a balanced assignment exists.
        for m in (1, 7, 99, 1000):
            for k in (2, 3, 7, 32):
                assert k * capacity_bound(m, k) >= m

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            capacity_bound(10, 0)
        with pytest.raises(ConfigurationError):
            capacity_bound(10, 2, alpha=0.5)


class TestPartitionAssignment:
    def test_empty_starts_unassigned(self):
        a = PartitionAssignment.empty(triangle(), 2)
        assert a.num_unassigned == 3

    def test_partition_sizes(self):
        a = PartitionAssignment(triangle(), 2, np.array([0, 0, 1]))
        assert a.partition_sizes().tolist() == [2, 1]

    def test_partition_edges(self):
        a = PartitionAssignment(triangle(), 2, np.array([0, 1, 0]))
        assert a.partition_edges(0).tolist() == [0, 2]

    def test_cover_matrix(self):
        a = PartitionAssignment(triangle(), 2, np.array([0, 1, 1]))
        cover = a.cover_matrix()
        # p0 has edge (0,1): covers 0,1. p1 has (1,2),(2,0): covers all.
        assert cover[0].tolist() == [True, True, False]
        assert cover[1].tolist() == [True, True, True]

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            PartitionAssignment(triangle(), 2, np.array([0, 1]))

    def test_replication_factor_convenience(self):
        a = PartitionAssignment(triangle(), 2, np.array([0, 1, 1]))
        assert a.replication_factor() == pytest.approx(5 / 3)


class TestStreamingState:
    def test_place_updates(self):
        s = StreamingState(4, k=2, capacity=10)
        s.place(0, 1, 1)
        assert s.loads.tolist() == [0, 1]
        assert s.replicas[1, 0] and s.replicas[1, 1]
        assert not s.replicas[0, 0]

    def test_partial_degrees(self):
        g = triangle()
        s = StreamingState.fresh(g, 2, capacity=10, use_exact_degrees=False)
        assert s.degrees.sum() == 0
        s.observe_edge(0, 1)
        assert s.degrees.tolist() == [1, 1, 0]

    def test_exact_degrees_not_mutated_by_observe(self):
        g = triangle()
        s = StreamingState.fresh(g, 2, capacity=10, use_exact_degrees=True)
        s.observe_edge(0, 1)
        assert s.degrees.tolist() == [2, 2, 2]

    def test_open_mask(self):
        s = StreamingState(2, k=2, capacity=1)
        s.place(0, 1, 0)
        assert s.open_mask().tolist() == [False, True]

    def test_informed_seeding(self):
        g = triangle()
        replicas = np.array([[True, True, False], [False, False, True]])
        s = StreamingState.informed(g, 2, 10, replicas, np.array([2, 1]))
        assert s.replicas[0, 0]
        assert s.loads.tolist() == [2, 1]
        assert s.degrees.tolist() == [2, 2, 2]

    def test_informed_shape_validation(self):
        g = triangle()
        with pytest.raises(ConfigurationError):
            StreamingState.informed(g, 2, 10, np.zeros((3, 3), bool), np.zeros(2))
        with pytest.raises(ConfigurationError):
            StreamingState.informed(g, 2, 10, np.zeros((2, 3), bool), np.zeros(3))


class TestHdrfScore:
    def test_prefers_partition_with_both_replicas(self):
        s = StreamingState(4, k=3, capacity=100, exact_degrees=np.array([2, 2, 2, 2]))
        s.replicas[1, 0] = True
        s.replicas[1, 1] = True
        s.replicas[2, 0] = True
        scores = hdrf_scores(s, 0, 1)
        assert np.argmax(scores) == 1

    def test_degree_term_prefers_replicating_high_degree(self):
        # Partition 0 holds the low-degree endpoint, partition 1 the
        # high-degree one.  HDRF prefers to cut through the high-degree
        # vertex, i.e. place the edge where the LOW-degree vertex lives.
        s = StreamingState(2, k=2, capacity=100, exact_degrees=np.array([100, 2]))
        s.replicas[0, 1] = True   # p0 has low-degree v=1
        s.replicas[1, 0] = True   # p1 has high-degree v=0
        scores = hdrf_scores(s, 0, 1)
        assert scores[0] > scores[1]

    def test_balance_term_breaks_ties(self):
        s = StreamingState(4, k=2, capacity=100, exact_degrees=np.ones(4, dtype=int))
        s.loads[0] = 50
        scores = hdrf_scores(s, 0, 1)
        assert scores[1] > scores[0]

    def test_full_partitions_masked(self):
        s = StreamingState(4, k=2, capacity=1, exact_degrees=np.ones(4, dtype=int))
        s.place(2, 3, 0)
        scores = hdrf_scores(s, 0, 1)
        assert scores[0] == -np.inf
        assert np.isfinite(scores[1])

    def test_zero_degree_safe(self):
        s = StreamingState(2, k=2, capacity=10)
        scores = hdrf_scores(s, 0, 1)  # partial degrees all zero
        assert np.isfinite(scores).all()


class TestGreedyChoose:
    def _state(self, k=3, capacity=100):
        return StreamingState(6, k=k, capacity=capacity)

    def test_common_partition_wins(self):
        s = self._state()
        s.replicas[2, 0] = True
        s.replicas[2, 1] = True
        s.replicas[0, 0] = True
        assert greedy_choose(s, 0, 1, 5, 5) == 2

    def test_intersection_least_loaded(self):
        s = self._state()
        for p in (0, 1):
            s.replicas[p, 0] = True
            s.replicas[p, 1] = True
        s.loads[0] = 10
        assert greedy_choose(s, 0, 1, 5, 5) == 1

    def test_disjoint_follows_higher_remaining(self):
        s = self._state()
        s.replicas[0, 0] = True
        s.replicas[1, 1] = True
        assert greedy_choose(s, 0, 1, remaining_u=9, remaining_v=2) == 0
        assert greedy_choose(s, 0, 1, remaining_u=1, remaining_v=2) == 1

    def test_single_side(self):
        s = self._state()
        s.replicas[1, 1] = True
        assert greedy_choose(s, 0, 1, 1, 1) == 1

    def test_both_new_least_loaded(self):
        s = self._state()
        s.loads[:] = [5, 3, 9]
        assert greedy_choose(s, 0, 1, 1, 1) == 1

    def test_all_full_returns_minus_one(self):
        s = self._state(k=2, capacity=1)
        s.place(2, 3, 0)
        s.place(4, 5, 1)
        assert greedy_choose(s, 0, 1, 1, 1) == -1

    def test_full_common_partition_skipped(self):
        s = self._state(k=2, capacity=1)
        s.replicas[0, 0] = True
        s.replicas[0, 1] = True
        s.loads[0] = 1  # full
        assert greedy_choose(s, 0, 1, 1, 1) == 1

"""Bench: regenerate Figure 5 (degree of C vs S\\C under NE, k=32)."""

from repro.experiments import figure5


def bench_figure5_core_vs_secondary_degree(benchmark, record_experiment):
    result = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    for row in result.rows:
        assert float(row["norm_deg_S_minus_C"]) > float(row["norm_deg_C"]), row

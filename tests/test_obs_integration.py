"""Integration tests for repro.obs across the streaming/worker stack.

The load-bearing properties:

* worker-side spans ship over the BSP pipes and land re-parented under
  the coordinator's ``pool_run`` span — one coherent tree per run,
* enabling tracing never changes partition assignments (bit-identity,
  pinned as a Hypothesis property over graphs and BSP schedules),
* per-worker busy/wait timings are reported even *without* tracing,
* edge sources expose read counters that surface in the trace.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import bsp_schedules, power_law_graphs

from repro.graph.generators import chung_lu
from repro.obs import Tracer, phase_breakdown, read_trace, set_tracer, tracing
from repro.stream import (
    MultiWorkerHep,
    MultiWorkerStreamingDriver,
    OutOfCoreHep,
    StreamingPartitionerDriver,
    write_sharded_edges,
)
from repro.stream.reader import PrefetchingEdgeSource, open_edge_source
from repro.stream.shard import ShardedEdgeSource
from repro.stream.workers import WorkerTimings


@pytest.fixture(scope="module")
def graph():
    return chung_lu(400, mean_degree=8, exponent=2.1, seed=23, name="obs")


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("obs") / "obs.manifest.json"
    return write_sharded_edges(graph, out, num_shards=4)


def _collected_run(driver, source, k=8):
    """Run ``driver`` under a collect-mode tracer; return (result, spans)."""
    tracer = Tracer(None)
    previous = set_tracer(tracer)
    try:
        result = driver.partition(source, k)
    finally:
        set_tracer(previous)
    return result, tracer.drain()


class TestWorkerSpanForwarding:
    @pytest.mark.parametrize(
        "shared_memory,pool_name", [(True, "bsp-shm"), (False, "bsp")]
    )
    def test_two_worker_run_builds_one_tree(
        self, manifest, shared_memory, pool_name
    ):
        driver = MultiWorkerStreamingDriver(
            workers=2, batch=8, shared_memory=shared_memory
        )
        _, spans = _collected_run(driver, manifest.path)
        by_id = {s["id"]: s for s in spans}
        roots = [s for s in spans if s["parent"] is None]
        assert [r["name"] for r in roots] == ["partition"]
        root_id = roots[0]["id"]

        def root_of(span):
            while span["parent"] is not None:
                span = by_id[span["parent"]]
            return span["id"]

        # Every span — including the adopted worker spans — reaches the
        # single partition root, so the run is one coherent tree.
        assert all(root_of(s) == root_id for s in spans)

        streams = [s for s in spans if s["name"] == "worker_stream"]
        assert len(streams) == 2
        assert sorted(s["attrs"]["worker"] for s in streams) == [0, 1]
        for stream in streams:
            parent = by_id[stream["parent"]]
            assert parent["name"] == "pool_run"
            assert parent["attrs"]["pool"] == pool_name
            assert stream["counters"]["edges_scanned"] > 0
            assert stream["counters"]["busy_s"] >= 0.0

        # The counting/metrics fan-outs forward their worker spans too.
        assert sum(s["name"] == "worker_count" for s in spans) == 2
        assert sum(s["name"] == "worker_cover" for s in spans) == 2

    def test_shared_memory_run_records_shm_spans(self, manifest):
        driver = MultiWorkerStreamingDriver(workers=2, batch=8)
        _, spans = _collected_run(driver, manifest.path)
        attaches = [s for s in spans if s["name"] == "shm_attach"]
        # One coordinator-side create plus one attach per worker.
        assert sum("worker" not in s["attrs"] for s in attaches) == 1
        assert sorted(
            s["attrs"]["worker"] for s in attaches if "worker" in s["attrs"]
        ) == [0, 1]
        assert all(s["counters"]["shm_bytes"] > 0 for s in attaches)
        commits = [s for s in spans if s["name"] == "superstep_commit"]
        assert len(commits) == 1
        assert commits[0]["counters"]["supersteps"] > 0

    @pytest.mark.parametrize(
        "shared_memory,pool_name", [(True, "bsp-shm"), (False, "bsp")]
    )
    def test_pool_run_carries_coordinator_counters(
        self, manifest, shared_memory, pool_name
    ):
        driver = MultiWorkerStreamingDriver(
            workers=2, batch=8, shared_memory=shared_memory
        )
        _, spans = _collected_run(driver, manifest.path)
        bsp = next(
            s for s in spans
            if s["name"] == "pool_run" and s["attrs"]["pool"] == pool_name
        )
        counters = bsp["counters"]
        assert counters["supersteps"] > 0
        assert counters["frames_sent"] > 0
        assert counters["bytes_piped"] > 0
        assert counters["recv_wait_s"] >= 0.0

    def test_worker_edges_sum_to_stream_total(self, graph, manifest):
        driver = MultiWorkerStreamingDriver(workers=2, batch=8)
        _, spans = _collected_run(driver, manifest.path)
        streamed = sum(
            s["counters"]["edges_scanned"]
            for s in spans if s["name"] == "worker_stream"
        )
        assert streamed == graph.num_edges

    def test_phase_breakdown_attributes_most_of_the_run(self, manifest):
        driver = MultiWorkerStreamingDriver(workers=2, batch=8)
        _, spans = _collected_run(driver, manifest.path)
        out = phase_breakdown(spans)
        assert out["wall_s"] > 0
        # The acceptance bar bench_profile enforces at >= 0.9 on the
        # bench host; keep a looser floor here so a loaded CI runner
        # cannot flake the tier-1 suite.
        assert out["attributed"] >= 0.6
        assert out["seconds"]["spawn"] > 0.0

    def test_untraced_run_stays_on_the_null_tracer(self, manifest):
        from repro.obs import NULL_TRACER, get_tracer

        assert get_tracer() is NULL_TRACER
        result = MultiWorkerStreamingDriver(workers=2, batch=8).partition(
            manifest.path, 8
        )
        assert get_tracer() is NULL_TRACER
        assert get_tracer().num_spans == 0
        assert result.report.supersteps > 0


class TestTracingNeverChangesResults:
    @settings(max_examples=4, deadline=None)
    @given(graph=power_law_graphs(max_vertices=60), schedule=bsp_schedules())
    def test_multi_worker_assignments_bit_identical(
        self, tmp_path_factory, graph, schedule
    ):
        workers, batch, num_shards = schedule
        out = tmp_path_factory.mktemp("obs-prop") / "g.manifest.json"
        manifest = write_sharded_edges(graph, out, num_shards=num_shards)

        plain = MultiWorkerStreamingDriver(
            workers=workers, batch=batch
        ).partition(manifest.path, 4)

        trace_path = out.parent / "run.trace.jsonl"
        with tracing(trace_path):
            traced = MultiWorkerStreamingDriver(
                workers=workers, batch=batch
            ).partition(manifest.path, 4)

        np.testing.assert_array_equal(plain.parts, traced.parts)
        assert plain.replication_factor == traced.replication_factor
        assert plain.edge_balance == traced.edge_balance
        # And the trace actually recorded the run.
        spans = [
            r for r in read_trace(trace_path) if r.get("type") == "span"
        ]
        assert sum(s["name"] == "worker_stream" for s in spans) == workers

    def test_hep_pipeline_bit_identical_under_tracing(
        self, manifest, tmp_path
    ):
        plain = OutOfCoreHep(tau=2.0).partition(manifest.path, 8)
        with tracing(tmp_path / "hep.trace.jsonl"):
            traced = OutOfCoreHep(tau=2.0).partition(manifest.path, 8)
        np.testing.assert_array_equal(plain.parts, traced.parts)

    def test_multi_worker_hep_bit_identical_under_tracing(
        self, manifest, tmp_path
    ):
        plain = MultiWorkerHep(workers=2, batch=8, tau=2.0).partition(
            manifest.path, 8
        )
        with tracing(tmp_path / "mwhep.trace.jsonl"):
            traced = MultiWorkerHep(workers=2, batch=8, tau=2.0).partition(
                manifest.path, 8
            )
        np.testing.assert_array_equal(plain.parts, traced.parts)

    def test_sequential_driver_bit_identical_under_tracing(
        self, manifest, tmp_path
    ):
        plain = StreamingPartitionerDriver("HDRF").partition(manifest.path, 8)
        with tracing(tmp_path / "seq.trace.jsonl"):
            traced = StreamingPartitionerDriver("HDRF").partition(
                manifest.path, 8
            )
        np.testing.assert_array_equal(plain.parts, traced.parts)


class TestWorkerTimingsWithoutTrace:
    def test_report_carries_per_worker_timings(self, manifest):
        result = MultiWorkerStreamingDriver(workers=2, batch=8).partition(
            manifest.path, 8
        )
        timings = result.report.timings
        assert isinstance(timings, WorkerTimings)
        assert len(timings.busy_s) == 2
        assert all(b > 0.0 for b in timings.busy_s)
        assert all(w >= 0.0 for w in timings.wait_s)
        assert timings.max_busy_s == max(timings.busy_s)
        assert timings.mean_busy_s == pytest.approx(
            sum(timings.busy_s) / 2
        )
        assert timings.skew >= 1.0
        assert timings.coordinator_recv_s >= 0.0
        assert timings.coordinator_merge_s >= 0.0

    def test_skew_degenerate_cases(self):
        zero = WorkerTimings(
            busy_s=(0.0,), wait_s=(0.0,), send_s=(0.0,),
            coordinator_recv_s=0.0, coordinator_merge_s=0.0,
            coordinator_send_s=0.0,
        )
        assert zero.skew == 1.0
        skewed = WorkerTimings(
            busy_s=(3.0, 1.0), wait_s=(0.0, 0.0), send_s=(0.0, 0.0),
            coordinator_recv_s=0.0, coordinator_merge_s=0.0,
            coordinator_send_s=0.0,
        )
        assert skewed.skew == pytest.approx(1.5)


class TestSourceReadCounters:
    def test_sharded_source_stats(self, manifest):
        src = ShardedEdgeSource(manifest.path)
        assert src.stats()["chunks"] == 0
        total = sum(chunk.num_edges for chunk in src)
        stats = src.stats()
        assert stats["edges"] == total
        assert stats["chunks"] > 0
        assert stats["bytes"] > 0
        assert stats["stall_s"] >= 0.0

    def test_prefetching_source_stats(self, manifest):
        inner = open_edge_source(manifest.path, 4096)
        src = PrefetchingEdgeSource(inner, depth=2)
        total = sum(chunk.num_edges for chunk in src)
        stats = src.stats()
        assert stats["edges"] == total
        assert stats["chunks"] > 0
        assert stats["stall_s"] >= 0.0

    def test_plain_source_stats_is_none(self, graph, tmp_path):
        from repro.graph.edgelist import write_binary_edgelist

        path = tmp_path / "plain.bin"
        write_binary_edgelist(graph, path)
        src = open_edge_source(path, 4096)
        assert not isinstance(src, ShardedEdgeSource)
        assert src.stats() is None

    def test_source_read_event_lands_in_trace(self, manifest, tmp_path):
        trace_path = tmp_path / "src.trace.jsonl"
        with tracing(trace_path):
            StreamingPartitionerDriver("HDRF", prefetch=2).partition(
                manifest.path, 8
            )
        events = [
            r for r in read_trace(trace_path)
            if r.get("type") == "span" and r["name"] == "source_read"
        ]
        assert len(events) == 1
        assert events[0]["counters"]["edges"] > 0
        assert events[0]["counters"]["chunks"] > 0

"""Out-of-core HEP pipeline: equivalence, budgeting, buffering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hep import HepPartitioner
from repro.errors import ConfigurationError, PartitioningError
from repro.graph import Graph, generators, write_binary_edgelist
from repro.metrics import assert_valid
from repro.stream import InMemoryEdgeSource, OutOfCoreHep, SpillFile, scan_source
from strategies import graphs, power_law_graphs


@pytest.fixture(scope="module")
def skewed_graph():
    return generators.chung_lu(600, mean_degree=8, exponent=2.1, seed=11)


class TestScanSource:
    def test_counts_match_graph(self, skewed_graph):
        stats = scan_source(InMemoryEdgeSource(skewed_graph, 97))
        assert stats.num_edges == skewed_graph.num_edges
        assert stats.num_vertices == skewed_graph.num_vertices
        assert np.array_equal(stats.degrees, skewed_graph.degrees)
        assert stats.mean_degree == pytest.approx(skewed_graph.mean_degree)

    def test_isolated_trailing_vertices_kept(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=10)
        stats = scan_source(InMemoryEdgeSource(g, 10))
        assert stats.num_vertices == 10
        assert stats.degrees.size == 10


class TestEquivalence:
    """Out-of-core ≡ in-memory, the pipeline's defining property."""

    @settings(max_examples=30, deadline=None)
    @given(
        graph=graphs(min_edges=2, max_edges=50, max_vertices=16),
        chunk_size=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=2, max_value=4),
        tau=st.sampled_from([0.5, 1.0, 2.0, 10.0]),
    )
    def test_property_identical_parts(self, graph, chunk_size, k, tau):
        expected = HepPartitioner(tau=tau).partition(graph, k)
        result = OutOfCoreHep(tau=tau, chunk_size=chunk_size).partition(graph, k)
        assert np.array_equal(result.parts, expected.parts)

    @settings(max_examples=10, deadline=None)
    @given(graph=power_law_graphs(max_vertices=80), chunk_size=st.integers(1, 40))
    def test_property_power_law_tau_one(self, graph, chunk_size):
        """tau=1 pushes real edge mass through the spill path."""
        expected = HepPartitioner(tau=1.0).partition(graph, 3)
        result = OutOfCoreHep(tau=1.0, chunk_size=chunk_size).partition(graph, 3)
        assert np.array_equal(result.parts, expected.parts)

    def test_file_source_identical(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        expected = HepPartitioner(tau=1.0).partition(skewed_graph, 8)
        result = OutOfCoreHep(tau=1.0, chunk_size=123).partition(path, 8)
        assert np.array_equal(result.parts, expected.parts)
        assert result.replication_factor == pytest.approx(
            expected.replication_factor()
        )
        assert result.edge_balance == pytest.approx(expected.balance())

    def test_assignment_is_valid(self, skewed_graph):
        result = OutOfCoreHep(tau=1.0, chunk_size=64).partition(skewed_graph, 4)
        assignment = result.to_assignment(skewed_graph)
        assert_valid(assignment)
        assert result.num_unassigned == 0


class TestSpillBehavior:
    def test_spill_nonempty_for_tau_one(self, skewed_graph, tmp_path):
        """Acceptance: for tau=1 the h2h edges really hit the disk."""
        spill_dir = tmp_path / "spills"
        pipeline = OutOfCoreHep(tau=1.0, chunk_size=64, spill_dir=str(spill_dir))
        result = pipeline.partition(skewed_graph, 4)
        assert result.breakdown.num_h2h_edges > 0
        assert result.spill_bytes == result.breakdown.num_h2h_edges * 24
        # The spill file itself is cleaned up after the run.
        assert list(spill_dir.glob("h2h-spill-*")) == []

    def test_compressed_spill_identical_parts(self, skewed_graph):
        """Compression changes the spill encoding, never the assignment."""
        raw = OutOfCoreHep(tau=1.0, chunk_size=64).partition(skewed_graph, 4)
        zlibbed = OutOfCoreHep(
            tau=1.0, chunk_size=64, spill_compression="zlib"
        ).partition(skewed_graph, 4)
        assert np.array_equal(raw.parts, zlibbed.parts)
        assert zlibbed.spill_bytes < raw.spill_bytes

    def test_prefetch_identical_parts(self, skewed_graph, tmp_path):
        from repro.graph import write_binary_edgelist

        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        plain = OutOfCoreHep(tau=1.0, chunk_size=91).partition(path, 4)
        prefetched = OutOfCoreHep(
            tau=1.0, chunk_size=91, prefetch=3
        ).partition(path, 4)
        assert np.array_equal(plain.parts, prefetched.parts)

    def test_spill_chunks_bounded(self, skewed_graph, tmp_path):
        """No spill read-back block may exceed the chunk size."""
        with SpillFile(dir=tmp_path) as spill:
            stats = scan_source(InMemoryEdgeSource(skewed_graph, 50))
            high = stats.degrees > stats.mean_degree
            src = InMemoryEdgeSource(skewed_graph, 50)
            for chunk in src:
                h2h = high[chunk.pairs[:, 0]] & high[chunk.pairs[:, 1]]
                spill.append(chunk.pairs[h2h], chunk.eids[h2h])
            assert len(spill) > 0
            for pairs, _ in spill.chunks(37):
                assert pairs.shape[0] <= 37


class TestBudget:
    def test_budget_selects_tau(self, skewed_graph):
        generous = OutOfCoreHep(memory_budget=10**9).partition(skewed_graph, 4)
        tight_budget = 60_000
        tight = OutOfCoreHep(memory_budget=tight_budget).partition(skewed_graph, 4)
        assert tight.tau <= generous.tau
        assert tight.projected_memory_bytes <= tight_budget

    def test_budget_matches_in_memory_selection(self, skewed_graph):
        """Streaming tau selection must agree with core.tau.select_tau."""
        from repro.core import select_tau

        budget = 80_000
        tau, projected = select_tau(skewed_graph, budget, 4)
        result = OutOfCoreHep(memory_budget=budget).partition(skewed_graph, 4)
        assert result.tau == tau
        assert result.projected_memory_bytes == projected

    def test_impossible_budget_errors(self, skewed_graph):
        with pytest.raises(ConfigurationError):
            OutOfCoreHep(memory_budget=16).partition(skewed_graph, 4)

    def test_explicit_tau_wins_over_budget(self, skewed_graph):
        result = OutOfCoreHep(tau=1.0, memory_budget=10**9).partition(
            skewed_graph, 4
        )
        assert result.tau == 1.0


class TestBuffered:
    @pytest.mark.parametrize("buffer_size", [1, 16, 500])
    def test_buffered_completes_and_validates(self, skewed_graph, buffer_size):
        result = OutOfCoreHep(
            tau=1.0, chunk_size=64, buffer_size=buffer_size
        ).partition(skewed_graph, 4)
        assert result.num_unassigned == 0
        assert_valid(result.to_assignment(skewed_graph))

    def test_buffer_size_one_equals_plain(self, skewed_graph):
        """A one-edge window can never reorder, so it matches exactly."""
        plain = OutOfCoreHep(tau=1.0, chunk_size=64).partition(skewed_graph, 4)
        one = OutOfCoreHep(tau=1.0, chunk_size=64, buffer_size=1).partition(
            skewed_graph, 4
        )
        assert np.array_equal(plain.parts, one.parts)

    def test_hep_partitioner_spill_and_buffer_params(self, skewed_graph, tmp_path):
        base = HepPartitioner(tau=1.0).partition(skewed_graph, 4)
        spilled = HepPartitioner(
            tau=1.0, spill_dir=str(tmp_path), chunk_size=91
        ).partition(skewed_graph, 4)
        assert np.array_equal(base.parts, spilled.parts)
        buffered = HepPartitioner(tau=1.0, buffer_size=32).partition(
            skewed_graph, 4
        )
        assert buffered.num_unassigned == 0

    def test_bad_buffer_config_rejected(self, skewed_graph):
        with pytest.raises(ConfigurationError):
            HepPartitioner(streaming="greedy", buffer_size=8)


class TestErrors:
    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(PartitioningError):
            OutOfCoreHep(tau=1.0).partition(path, 2)

    def test_k_too_small(self, skewed_graph):
        with pytest.raises(ConfigurationError):
            OutOfCoreHep(tau=1.0).partition(skewed_graph, 1)

    def test_bad_tau(self):
        with pytest.raises(ConfigurationError):
            OutOfCoreHep(tau=-1.0)

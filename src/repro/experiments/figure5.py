"""Figure 5: average degree of cored vs. remaining-secondary vertices.

The empirical basis for NE++'s "no expansion via a high-degree vertex"
rule: during NE at k=32, vertices that stay in the secondary set have a
normalized average degree far above 1, vertices moved to the core far
below the secondary average.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, dataset_list, load_dataset
from repro.experiments.paper_reference import SHAPES
from repro.partition import NePartitioner

__all__ = ["run"]

_DEFAULT = ("LJ", "OK", "WI", "IT", "TW")
_FULL = ("LJ", "OK", "BR", "WI", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(graphs: tuple[str, ...] | None = None, k: int = 32) -> ExperimentResult:
    names = list(graphs) if graphs else dataset_list(_DEFAULT, _FULL)
    rows: list[dict[str, object]] = []
    for name in names:
        graph = load_dataset(name)
        partitioner = NePartitioner(record_history=True)
        partitioner.partition(graph, k)
        history = partitioner.history
        assert history is not None
        mean = graph.mean_degree
        rows.append(
            {
                "graph": name,
                "norm_deg_C": round(history.normalized_core_degree(mean), 3),
                "norm_deg_S_minus_C": round(
                    history.normalized_secondary_degree(mean), 3
                ),
            }
        )
    result = ExperimentResult(
        experiment_id="figure5",
        title=f"Normalized average degree of C vs S\\C (NE, k={k})",
        rows=rows,
        paper_shape=SHAPES["figure5"],
    )
    holds = all(
        float(r["norm_deg_S_minus_C"]) > float(r["norm_deg_C"]) for r in rows
    )
    result.notes.append(f"S\\C degree exceeds C degree on every graph: {holds}")
    return result

"""End-to-end self-exercise of the service, over real HTTP.

``python -m repro serve --self-test <source>`` starts the full service
on an ephemeral port, then acts as its own client: it submits the same
job twice (asserting exactly one execution and a dedup hit), waits for
completion while reading the progress-event stream, resubmits after
completion (asserting the answer comes from the finished record, not a
re-partition), exercises the ``edge → part`` / ``vertex → parts`` /
quality endpoints, and shuts the service down cleanly.  CI runs this
verbatim from the README quickstart; any violated expectation exits
non-zero.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError
from repro.runtime.store import ArtifactStore
from repro.serve.app import create_app, run_app
from repro.serve.artifacts import ArtifactCache
from repro.serve.queue import JobManager, JobState

__all__ = ["http_request", "run_self_test"]


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: "dict | None" = None,
) -> tuple[int, bytes]:
    """One ``Connection: close`` HTTP exchange; ``(status, body bytes)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_bytes = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split(" ", 2)[1])
    return status, body_bytes


def _check(condition: bool, what: str) -> None:
    """Raise a :class:`ReproError` naming the violated expectation."""
    if not condition:
        raise ReproError(f"serve self-test failed: {what}")


async def _json_request(host: str, port: int, method: str, path: str,
                        body: "dict | None" = None) -> tuple[int, Any]:
    """An :func:`http_request` whose body parses as one JSON document."""
    status, blob = await http_request(host, port, method, path, body)
    return status, (json.loads(blob) if blob.strip() else {})


async def run_self_test(
    source: str,
    cache_dir: str,
    algo: str = "HDRF",
    k: int = 8,
    workers: int = 2,
) -> int:
    """Start the service, run the scripted client against it, tear down."""
    loop = asyncio.get_running_loop()
    store = ArtifactStore(cache_dir)
    manager = JobManager(store, loop=loop)
    cache = ArtifactCache(store)
    app = create_app(manager, cache)
    await manager.start()
    server = await run_app(app, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"repro serve: self-test against http://{host}:{port}", flush=True)
    payload = {"source": source, "algo": algo, "k": k, "workers": workers}
    try:
        status, first = await _json_request(host, port, "POST", "/jobs",
                                            payload)
        _check(status == 201, f"first submit returned {status}")
        job_id = first["id"]
        status, second = await _json_request(host, port, "POST", "/jobs",
                                             payload)
        _check(status == 200, f"second submit returned {status}")
        _check(second["id"] == job_id, "dedup returned a different job id")
        _check(second["deduped"], "second submit did not dedup")
        deadline = loop.time() + 300.0
        while True:
            status, doc = await _json_request(host, port, "GET",
                                              f"/jobs/{job_id}")
            _check(status == 200, f"poll returned {status}")
            if doc["state"] in JobState.TERMINAL:
                break
            _check(loop.time() < deadline, "job did not finish in 300s")
            await asyncio.sleep(0.2)
        _check(
            doc["state"] == JobState.SUCCEEDED,
            f"job finished {doc['state']}: {doc.get('error')}",
        )
        _check(manager.executions == 1,
               f"{manager.executions} executions for 2 submits")
        status, blob = await http_request(
            host, port, "GET", f"/jobs/{job_id}/events?wait=0"
        )
        _check(status == 200, f"events returned {status}")
        events = [json.loads(line) for line in blob.splitlines() if line]
        spans = [e for e in events if e.get("event") == "span"]
        dedups = [e for e in events if e.get("event") == "dedup"]
        partitions = [e for e in spans if e.get("span") == "partition"]
        _check(len(partitions) == 1,
               f"{len(partitions)} partition spans for one execution")
        _check(len(dedups) >= 1, "no dedup progress event recorded")
        status, third = await _json_request(host, port, "POST", "/jobs",
                                            payload)
        _check(status == 200 and third["deduped"],
               "post-completion resubmit did not reuse the finished job")
        _check(manager.executions == 1,
               "post-completion resubmit re-executed the pipeline")
        status, edge = await _json_request(
            host, port, "GET", f"/jobs/{job_id}/edge/0"
        )
        _check(status == 200 and 0 <= edge["part"] < k,
               f"edge lookup answered {edge}")
        status, vertex = await _json_request(
            host, port, "GET", f"/jobs/{job_id}/vertex/0"
        )
        _check(status == 200 and isinstance(vertex["parts"], list),
               f"vertex lookup answered {vertex}")
        status, quality = await _json_request(
            host, port, "GET", f"/jobs/{job_id}/quality"
        )
        _check(status == 200 and quality["replication_factor"] >= 1.0,
               f"quality lookup answered {quality}")
        status, health = await _json_request(host, port, "GET", "/healthz")
        _check(status == 200 and health["status"] == "ok",
               f"healthz answered {health}")
        print(
            f"serve self-test: ok (1 execution, {len(dedups)} dedup "
            f"hit(s), rf={quality['replication_factor']:.4f}, "
            f"balance={quality['edge_balance']:.4f})",
            flush=True,
        )
    finally:
        server.close()
        await server.wait_closed()
        await manager.shutdown()
    return 0

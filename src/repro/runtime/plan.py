"""The planner: lower a :class:`~repro.runtime.spec.JobSpec` to stages.

A plan is an explicit, ordered stage DAG.  Two pipeline shapes exist
today, both expressed over the same stage registry:

* ``hep``    — ``count -> select_tau -> split -> phase_one -> stream ->
  metrics`` (the two-phase pipeline; ``select_tau`` resolves the
  threshold from a fixed ``tau``, the §4.4 budget sweep, or the 10.0
  default),
* ``stream`` — ``count -> stream -> metrics`` (every streaming
  baseline and the multi-worker informed-HDRF run).

Stages are declared via :func:`register_stage` in
:mod:`repro.runtime.stages`, so future passes — the ROADMAP's
``refine`` post-pass or the buffered HeiStream-style algorithm — slot
in by registering a stage and inserting its name into a pipeline,
without touching any driver.  Executors
(:mod:`repro.runtime.executor`) supply the stage *strategies* (in
process vs worker pool); the plan itself is execution-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.runtime.spec import JobSpec

__all__ = [
    "PIPELINES",
    "Plan",
    "STAGE_REGISTRY",
    "Stage",
    "pipeline_kind",
    "plan_job",
    "register_stage",
]


@dataclass(frozen=True)
class Stage:
    """One registered pipeline stage: a name plus its implementation.

    ``fn(spec, ctx, executor)`` mutates the run context; ``provides``
    documents the context keys the stage is responsible for (the
    planner's contract with downstream stages).
    """

    name: str
    fn: Callable
    provides: tuple[str, ...] = ()


#: every registered stage, by name (populated by repro.runtime.stages)
STAGE_REGISTRY: dict[str, Stage] = {}

#: stage order per pipeline shape
PIPELINES: dict[str, tuple[str, ...]] = {
    "hep": ("count", "select_tau", "split", "phase_one", "stream", "metrics"),
    "stream": ("count", "stream", "metrics"),
}


def register_stage(name: str, provides: tuple[str, ...] = ()):
    """Function decorator: register a stage implementation under ``name``."""

    def decorate(fn: Callable) -> Callable:
        if name in STAGE_REGISTRY:
            raise ConfigurationError(f"stage {name!r} is already registered")
        STAGE_REGISTRY[name] = Stage(name=name, fn=fn, provides=provides)
        return fn

    return decorate


@dataclass(frozen=True)
class Plan:
    """An ordered stage sequence for one spec (what the executor runs)."""

    kind: str
    stages: tuple[Stage, ...]

    def stage_names(self) -> tuple[str, ...]:
        """The stage names in execution order."""
        return tuple(stage.name for stage in self.stages)

    def describe(self) -> str:
        """``count -> select_tau -> ...`` (CLI/debug convenience)."""
        return " -> ".join(self.stage_names())


def pipeline_kind(spec: JobSpec) -> str:
    """``"hep"`` for the two-phase pipeline, ``"stream"`` otherwise."""
    return "hep" if spec.algo.upper() == "HEP" else "stream"


def plan_job(spec: JobSpec) -> Plan:
    """Lower ``spec`` to its explicit stage DAG."""
    from repro.runtime import stages  # noqa: F401  (registers the stages)

    kind = pipeline_kind(spec)
    return Plan(
        kind=kind,
        stages=tuple(STAGE_REGISTRY[name] for name in PIPELINES[kind]),
    )

"""Multi-worker shard-parallel partitioning vs its in-process oracle.

The paper's closing future-work direction is parallelism; the ROADMAP's
concrete step is multi-*worker* partitioning over the PR 3 shard
format.  This experiment runs multi-worker ``JobSpec``\\ s through the
runtime layer (:func:`~repro.runtime.spec.make_job` →
:func:`~repro.runtime.api.run_job`, which lowers to N OS processes,
one per shard assignment) for N ∈ {1, 2, 4} on a sharded export and
verifies, per row, that the multi-process run is **bit-identical** to
the in-process BSP schedule
(:func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream`) with the same
workers/batch and the same shard-derived streams — the executable
oracle.  It also reports the replication-factor cost of staleness as
``workers x batch`` grows, and the HEP variant (``algo="HEP"`` with
``workers``) against
:class:`~repro.parallel.bsp_streaming.ParallelHepPartitioner`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.common import ExperimentResult, dataset_list, load_dataset
from repro.graph.edgelist import write_binary_edgelist
from repro.parallel import ParallelHepPartitioner, bsp_hdrf_stream
from repro.partition.base import capacity_bound
from repro.partition.state import StreamingState
from repro.runtime import make_job, run_job
from repro.stream import (
    open_edge_source,
    parallel_scan_source,
    plan_worker_segments,
    scan_source,
    write_sharded_edges,
)

__all__ = ["run"]

_DEFAULT = ("WI",)
_FULL = ("WI", "LJ")

_WORKER_COUNTS = (1, 2, 4)
_BATCH = 8
_SHARDS = 4
_K = 8
_TAU = 1.0


def run(graphs: tuple[str, ...] | None = None, k: int = _K) -> ExperimentResult:
    """Compare multi-process shard-parallel runs to the in-process oracle."""
    names = list(graphs) if graphs else dataset_list(_DEFAULT, _FULL)
    rows: list[dict[str, object]] = []
    identical_everywhere = True
    scan_identical = True
    with tempfile.TemporaryDirectory(prefix="mw-exp-") as tmp:
        for name in names:
            graph = load_dataset(name)
            manifest = Path(tmp) / f"{name}.manifest.json"
            write_sharded_edges(graph, manifest, num_shards=_SHARDS)
            # The counting pass the drivers run on their worker count
            # must equal the sequential sweep bit for bit.
            seq_stats = scan_source(open_edge_source(manifest))
            par_stats = parallel_scan_source(manifest, workers=2)
            scan_identical &= (
                seq_stats.num_vertices == par_stats.num_vertices
                and seq_stats.num_edges == par_stats.num_edges
                and bool(np.array_equal(seq_stats.degrees, par_stats.degrees))
            )
            for workers in _WORKER_COUNTS:
                result = run_job(make_job(
                    "HDRF", manifest, k, workers=workers, batch=_BATCH,
                ))
                _, streams, _, _ = plan_worker_segments(manifest, workers)
                capacity = capacity_bound(graph.num_edges, k, 1.0)
                state = StreamingState(
                    graph.num_vertices, k, capacity,
                    exact_degrees=graph.degrees,
                )
                oracle = np.full(graph.num_edges, -1, dtype=np.int32)
                bsp_hdrf_stream(
                    state, graph.edges, np.arange(graph.num_edges), oracle,
                    workers, batch=_BATCH, streams=streams,
                )
                same = bool(np.array_equal(result.parts, oracle))
                identical_everywhere &= same
                rows.append(
                    {
                        "graph": name,
                        "driver": result.algorithm,
                        "workers": workers,
                        "batch": _BATCH,
                        "supersteps": result.report.supersteps,
                        "rf": round(result.replication_factor, 4),
                        "alpha": round(result.edge_balance, 4),
                        "runtime_s": round(result.runtime_s, 3),
                        "identical_to_bsp": same,
                    }
                )
            # HEP: the multi-process phase two vs ParallelHepPartitioner.
            binary = Path(tmp) / f"{name}.bin"
            write_binary_edgelist(graph, binary)
            hep_result = run_job(make_job(
                "HEP", binary, k, workers=2, batch=_BATCH, tau=_TAU,
            ))
            hep_oracle = ParallelHepPartitioner(
                tau=_TAU, workers=2, batch=_BATCH
            ).partition(graph, k)
            hep_same = bool(
                np.array_equal(hep_result.parts, hep_oracle.parts)
            )
            identical_everywhere &= hep_same
            rows.append(
                {
                    "graph": name,
                    "driver": f"HEP-{_TAU:g}-mw2",
                    "workers": 2,
                    "batch": _BATCH,
                    "supersteps": (
                        hep_result.report.supersteps if hep_result.report
                        else 0
                    ),
                    "rf": round(hep_result.replication_factor, 4),
                    "alpha": round(hep_result.edge_balance, 4),
                    "runtime_s": round(hep_result.runtime_s, 3),
                    "identical_to_bsp": hep_same,
                }
            )
    result = ExperimentResult(
        experiment_id="multi_worker",
        title="multi-worker shard-parallel partitioning vs in-process BSP",
        rows=rows,
        paper_shape="staleness (workers x batch) trades a little RF for "
        "parallel throughput; every multi-process run equals its "
        "in-process schedule bit for bit",
    )
    result.notes.append(
        f"multi-process == in-process BSP everywhere: {identical_everywhere}"
    )
    result.notes.append(
        f"worker-parallel counting pass == sequential scan: {scan_identical}"
    )
    return result

"""Tests for the streaming partitioners: HDRF, Greedy, DBH, Grid, Random,
ADWISE — validity, balance, determinism and quality relationships."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PartitioningError
from repro.graph import Graph
from repro.graph.generators import chung_lu, erdos_renyi, ring, star
from repro.metrics import assert_valid, edge_balance, replication_factor
from repro.partition import (
    AdwisePartitioner,
    DbhPartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HdrfPartitioner,
    RandomStreamPartitioner,
)
from repro.partition.grid import grid_shape

ALL_STREAMING = [
    HdrfPartitioner(),
    GreedyPartitioner(),
    DbhPartitioner(),
    GridPartitioner(),
    RandomStreamPartitioner(),
    AdwisePartitioner(window=16),
]


@pytest.fixture(scope="module")
def social_graph() -> Graph:
    return chung_lu(600, mean_degree=10, exponent=2.2, seed=42, name="social")


@pytest.mark.parametrize("partitioner", ALL_STREAMING, ids=lambda p: p.name)
@pytest.mark.parametrize("k", [2, 4, 8])
class TestAllStreamingValid:
    def test_valid_and_balanced(self, partitioner, k, social_graph):
        assignment = partitioner.partition(social_graph, k)
        assert_valid(assignment, alpha=1.0)

    def test_replication_factor_bounds(self, partitioner, k, social_graph):
        assignment = partitioner.partition(social_graph, k)
        rf = replication_factor(assignment)
        assert 1.0 <= rf <= k


@pytest.mark.parametrize("partitioner", ALL_STREAMING, ids=lambda p: p.name)
def test_deterministic(partitioner, social_graph):
    a = partitioner.partition(social_graph, 4)
    b = partitioner.partition(social_graph, 4)
    assert np.array_equal(a.parts, b.parts)


@pytest.mark.parametrize("partitioner", ALL_STREAMING, ids=lambda p: p.name)
def test_rejects_k_below_two(partitioner, social_graph):
    with pytest.raises(ConfigurationError):
        partitioner.partition(social_graph, 1)


@pytest.mark.parametrize("partitioner", ALL_STREAMING, ids=lambda p: p.name)
def test_rejects_empty_graph(partitioner):
    g = Graph.from_edges(np.empty((0, 2)), num_vertices=4)
    with pytest.raises(PartitioningError):
        partitioner.partition(g, 2)


class TestHdrf:
    def test_star_graph_hub_replicated_leaves_not(self):
        g = star(64)
        assignment = HdrfPartitioner().partition(g, 4)
        assert_valid(assignment, alpha=1.0)
        from repro.metrics import replicas_per_vertex

        replicas = replicas_per_vertex(assignment)
        assert replicas[0] == 4          # hub on every partition
        assert (replicas[1:] == 1).all()  # leaves never replicated

    def test_beats_random_on_powerlaw(self, social_graph):
        rf_hdrf = replication_factor(HdrfPartitioner().partition(social_graph, 8))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(social_graph, 8)
        )
        assert rf_hdrf < rf_rand

    def test_exact_degrees_mode(self, social_graph):
        a = HdrfPartitioner(exact_degrees=True).partition(social_graph, 4)
        assert_valid(a, alpha=1.0)

    def test_shuffle_mode_differs(self, social_graph):
        a = HdrfPartitioner().partition(social_graph, 4)
        b = HdrfPartitioner(shuffle=True, seed=3).partition(social_graph, 4)
        assert not np.array_equal(a.parts, b.parts)
        assert_valid(b, alpha=1.0)

    def test_alpha_relaxation_respected(self, social_graph):
        a = HdrfPartitioner(alpha=1.2).partition(social_graph, 4)
        assert_valid(a, alpha=1.2)

    def test_lambda_zero_ignores_balance_softly(self):
        # With lam=0 the balance term vanishes; capacity still enforced.
        g = ring(40)
        a = HdrfPartitioner(lam=0.0).partition(g, 4)
        assert_valid(a, alpha=1.0)


class TestGreedy:
    def test_ring_locality(self):
        # On a ring, greedy should chain edges onto the partitions of
        # their endpoints, giving far lower RF than random.
        g = ring(200)
        rf_greedy = replication_factor(GreedyPartitioner().partition(g, 4))
        rf_rand = replication_factor(RandomStreamPartitioner().partition(g, 4))
        assert rf_greedy < rf_rand

    def test_hdrf_not_worse_than_greedy_on_powerlaw(self, social_graph):
        rf_hdrf = replication_factor(HdrfPartitioner().partition(social_graph, 8))
        rf_greedy = replication_factor(GreedyPartitioner().partition(social_graph, 8))
        # The paper: "the Greedy strategy is clearly outperformed by HDRF".
        assert rf_hdrf <= rf_greedy * 1.1


class TestDbh:
    def test_low_degree_endpoint_hashed(self):
        g = star(32)
        a = DbhPartitioner().partition(g, 4)
        # Every edge hashes its leaf (degree 1 < hub degree); leaves with
        # the same hash land together, hub spreads over partitions.
        from repro.metrics import replicas_per_vertex

        assert (replicas_per_vertex(a)[1:] == 1).all()

    def test_fully_deterministic_under_salt(self, social_graph):
        a = DbhPartitioner(salt=1).partition(social_graph, 4)
        b = DbhPartitioner(salt=2).partition(social_graph, 4)
        assert not np.array_equal(a.parts, b.parts)

    def test_near_balanced_before_repair(self, social_graph):
        a = DbhPartitioner().partition(social_graph, 4)
        assert edge_balance(a) <= 1.0 + 4 / social_graph.num_edges * 4


class TestGrid:
    def test_grid_shape(self):
        assert grid_shape(4) == (2, 2)
        assert grid_shape(32) == (4, 8)
        assert grid_shape(256) == (16, 16)
        assert grid_shape(7) == (1, 7)

    def test_replication_bounded_by_row_plus_col(self, social_graph):
        k = 16
        rows, cols = grid_shape(k)
        a = GridPartitioner().partition(social_graph, k)
        from repro.metrics import replicas_per_vertex

        assert replicas_per_vertex(a).max() <= rows + cols


class TestAdwise:
    def test_window_one_still_valid(self, social_graph):
        a = AdwisePartitioner(window=1).partition(social_graph, 4)
        assert_valid(a, alpha=1.0)

    def test_larger_window_not_worse(self, social_graph):
        rf1 = replication_factor(
            AdwisePartitioner(window=1).partition(social_graph, 8)
        )
        rf64 = replication_factor(
            AdwisePartitioner(window=64).partition(social_graph, 8)
        )
        assert rf64 <= rf1 * 1.15

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdwisePartitioner(window=0)


class TestRandom:
    def test_seed_controls_result(self, social_graph):
        a = RandomStreamPartitioner(seed=1).partition(social_graph, 4)
        b = RandomStreamPartitioner(seed=2).partition(social_graph, 4)
        assert not np.array_equal(a.parts, b.parts)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(8, 60),
    m=st.integers(10, 150),
    k=st.sampled_from([2, 3, 5, 8]),
    seed=st.integers(0, 5),
)
def test_streaming_partitioners_random_graphs(n, m, k, seed):
    """Property: every streaming partitioner yields a complete, balanced,
    in-range assignment on arbitrary random graphs."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges == 0:
        return
    for partitioner in (
        HdrfPartitioner(),
        GreedyPartitioner(),
        DbhPartitioner(),
        GridPartitioner(),
        RandomStreamPartitioner(seed=seed),
        AdwisePartitioner(window=8),
    ):
        assignment = partitioner.partition(g, k)
        assert_valid(assignment, alpha=1.0)

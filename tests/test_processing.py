"""Tests for the graph-processing simulator: algorithm correctness
(against networkx) and the cost model's paper-shaped behavior."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import Graph
from repro.graph.generators import chung_lu, community_web, erdos_renyi, ring
from repro.partition import (
    DbhPartitioner,
    HdrfPartitioner,
    PartitionAssignment,
    RandomStreamPartitioner,
)
from repro.partition.ne import NePartitioner
from repro.processing import (
    CostModel,
    VertexCutEngine,
    bfs,
    connected_components,
    pagerank,
)


@pytest.fixture(scope="module")
def graph() -> Graph:
    return chung_lu(300, mean_degree=8, exponent=2.3, seed=55, name="g")


@pytest.fixture(scope="module")
def engine(graph) -> VertexCutEngine:
    assignment = HdrfPartitioner().partition(graph, 4)
    return VertexCutEngine(assignment)


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(map(tuple, graph.edges.tolist()))
    return g


class TestEngineSetup:
    def test_cover_and_replicas(self, graph, engine):
        assert engine.cover.shape == (4, graph.num_vertices)
        covered = graph.degrees > 0
        assert (engine.replicas[covered] >= 1).all()
        assert (engine.replicas[~covered] == 0).all()

    def test_local_degrees_sum_to_degrees(self, graph, engine):
        assert np.array_equal(engine.local_degree.sum(axis=0), graph.degrees)

    def test_replication_factor_matches_metric(self, graph, engine):
        from repro.metrics import replication_factor

        assert engine.replication_factor() == pytest.approx(
            replication_factor(engine.assignment)
        )

    def test_superstep_cost_empty(self, graph, engine):
        seconds, messages = engine.superstep_cost(
            np.zeros(graph.num_vertices, dtype=bool)
        )
        assert seconds == engine.cost.barrier_cost
        assert messages == 0

    def test_superstep_cost_monotone_in_active(self, graph, engine):
        n = graph.num_vertices
        some = np.zeros(n, dtype=bool)
        some[np.flatnonzero(graph.degrees > 0)[:10]] = True
        all_active = graph.degrees > 0
        s_some, m_some = engine.superstep_cost(some)
        s_all, m_all = engine.superstep_cost(all_active)
        assert s_some <= s_all
        assert m_some <= m_all


class TestPageRank:
    def test_matches_networkx(self, graph, engine):
        result = pagerank(engine, iterations=60)
        expected = nx.pagerank(to_networkx(graph), alpha=0.85, max_iter=200, tol=1e-10)
        ours = result.values / result.values.sum()
        theirs = np.array([expected[v] for v in range(graph.num_vertices)])
        assert np.allclose(ours, theirs, atol=5e-4)

    def test_supersteps_equal_iterations(self, engine):
        assert pagerank(engine, iterations=7).supersteps == 7

    def test_costs_accumulate(self, engine):
        r10 = pagerank(engine, iterations=10)
        r20 = pagerank(engine, iterations=20)
        assert r20.sim_seconds == pytest.approx(2 * r10.sim_seconds, rel=1e-6)
        assert r20.total_messages == 2 * r10.total_messages


class TestBfs:
    def test_distances_match_networkx(self, graph, engine):
        result = bfs(engine, seeds=[1, 5])
        g = to_networkx(graph)
        for run, source in enumerate([1, 5]):
            expected = nx.single_source_shortest_path_length(g, source)
            dist = result.values[run]
            for v in range(graph.num_vertices):
                if v in expected:
                    assert dist[v] == expected[v], (source, v)
                else:
                    assert dist[v] == -1

    def test_ring_diameter_steps(self):
        g = ring(40)
        engine = VertexCutEngine(RandomStreamPartitioner().partition(g, 4))
        result = bfs(engine, seeds=[0])
        # A 40-ring explored from one vertex needs 20 frontier waves; the
        # final wave with no new vertices ends the loop.
        assert 20 <= result.supersteps <= 21

    def test_multi_seed_accumulates(self, engine):
        one = bfs(engine, seeds=[3])
        two = bfs(engine, seeds=[3, 3])
        assert two.sim_seconds == pytest.approx(2 * one.sim_seconds, rel=1e-6)


class TestConnectedComponents:
    def test_labels_match_networkx(self, graph, engine):
        result = connected_components(engine)
        g = to_networkx(graph)
        for component in nx.connected_components(g):
            members = sorted(component)
            labels = {int(result.values[v]) for v in members}
            assert len(labels) == 1
            assert labels.pop() == min(members)

    def test_two_rings(self):
        r1 = ring(20).edges
        r2 = ring(20).edges + 20
        g = Graph.from_edges(np.vstack([r1, r2]), num_vertices=40)
        engine = VertexCutEngine(RandomStreamPartitioner().partition(g, 2))
        result = connected_components(engine)
        assert set(result.values[:20].tolist()) == {0}
        assert set(result.values[20:].tolist()) == {20}

    def test_terminates_and_goes_quiet(self, engine):
        result = connected_components(engine)
        assert result.supersteps < 60


class TestCostShape:
    """The paper's Table 4 phenomena must fall out of the cost model."""

    def test_lower_rf_means_faster_pagerank(self):
        g = community_web(8, 60, intra_mean_degree=8, inter_fraction=0.02, seed=66)
        k = 8
        a_ne = NePartitioner().partition(g, k)
        a_rand = RandomStreamPartitioner().partition(g, k)
        t_ne = pagerank(VertexCutEngine(a_ne), iterations=20).sim_seconds
        t_rand = pagerank(VertexCutEngine(a_rand), iterations=20).sim_seconds
        from repro.metrics import replication_factor

        assert replication_factor(a_ne) < replication_factor(a_rand)
        assert t_ne < t_rand

    def test_cc_cheaper_than_pagerank(self, engine):
        t_cc = connected_components(engine).sim_seconds
        t_pr = pagerank(engine, iterations=100).sim_seconds
        assert t_cc < t_pr

    def test_custom_cost_model_scales(self, graph):
        a = DbhPartitioner().partition(graph, 4)
        cheap = VertexCutEngine(a, CostModel(barrier_cost=0.0))
        costly = VertexCutEngine(
            a,
            CostModel(
                edge_cost=2e-3, vertex_cost=1e-3, message_cost=2e-3, barrier_cost=0.0
            ),
        )
        t1 = pagerank(cheap, iterations=5).sim_seconds
        t2 = pagerank(costly, iterations=5).sim_seconds
        assert t2 == pytest.approx(10 * t1, rel=1e-6)

    def test_vertex_balance_affects_runtime(self):
        """Two assignments with identical RF but different vertex balance
        must cost differently (the IT-graph effect of Table 5)."""
        g = erdos_renyi(60, 150, seed=8)
        m = g.num_edges
        # Balanced: stripe edges round-robin.  Skewed: contiguous halves
        # (first partition sees a denser induced region).
        balanced = PartitionAssignment(g, 2, np.arange(m, dtype=np.int32) % 2)
        halves = np.zeros(m, dtype=np.int32)
        halves[m // 2 :] = 1
        skewed = PartitionAssignment(g, 2, halves)
        t_bal = pagerank(VertexCutEngine(balanced), iterations=5).sim_seconds
        t_skew = pagerank(VertexCutEngine(skewed), iterations=5).sim_seconds
        assert t_bal != t_skew

"""Chunked edge sources: bounded blocks, restartability, orderings, prefetch."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph import Graph, write_binary_edgelist, write_text_edgelist
from repro.stream import (
    BinaryFileEdgeSource,
    InMemoryEdgeSource,
    PrefetchingEdgeSource,
    TextFileEdgeSource,
    open_edge_source,
)


@pytest.fixture()
def graph():
    return Graph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)], num_vertices=6
    )


def _collect(source):
    pairs, eids = [], []
    for chunk in source:
        assert chunk.num_edges <= source.chunk_size
        pairs.append(chunk.pairs)
        eids.append(chunk.eids)
    return np.vstack(pairs), np.concatenate(eids)


class TestInMemorySource:
    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 100])
    def test_natural_order_covers_stream(self, graph, chunk_size):
        src = InMemoryEdgeSource(graph, chunk_size)
        pairs, eids = _collect(src)
        assert np.array_equal(pairs, graph.edges)
        assert np.array_equal(eids, np.arange(graph.num_edges))

    def test_restartable(self, graph):
        src = InMemoryEdgeSource(graph, 3)
        a = _collect(src)
        b = _collect(src)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    @pytest.mark.parametrize("order", ["random", "degree", "bfs", "adversarial"])
    def test_orderings_permute_but_cover(self, graph, order):
        src = InMemoryEdgeSource(graph, 2, order=order, seed=3)
        pairs, eids = _collect(src)
        assert sorted(eids.tolist()) == list(range(graph.num_edges))
        # Every yielded pair is the edge its eid names.
        assert np.array_equal(pairs, graph.edges[eids])

    def test_universe_reported(self, graph):
        src = InMemoryEdgeSource(graph, 4)
        assert src.num_vertices == 6
        assert src.num_edges == graph.num_edges

    def test_unknown_order_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            InMemoryEdgeSource(graph, 4, order="sorted-by-vibes")

    def test_zero_chunk_size_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            InMemoryEdgeSource(graph, 0)


class TestFileSources:
    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_binary_matches_writer(self, graph, tmp_path, chunk_size):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, chunk_size)
        pairs, eids = _collect(src)
        assert np.array_equal(pairs, graph.edges)
        assert np.array_equal(eids, np.arange(graph.num_edges))
        assert src.num_edges == graph.num_edges

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_text_matches_writer(self, graph, tmp_path, chunk_size):
        path = tmp_path / "g.txt"
        write_text_edgelist(graph, path)
        pairs, eids = _collect(TextFileEdgeSource(path, chunk_size))
        assert np.array_equal(pairs, graph.edges)
        assert np.array_equal(eids, np.arange(graph.num_edges))

    def test_text_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n0 1\n\n1 2\n# trailing\n2 0\n")
        pairs, eids = _collect(TextFileEdgeSource(path, 2))
        assert pairs.tolist() == [[0, 1], [1, 2], [2, 0]]
        assert eids.tolist() == [0, 1, 2]

    def test_binary_shuffled_covers_stream(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, 2, order="shuffled", seed=1)
        pairs, eids = _collect(src)
        assert sorted(eids.tolist()) == list(range(graph.num_edges))
        assert np.array_equal(pairs, graph.edges[eids])

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 2\n")
        with pytest.raises(GraphFormatError):
            _collect(TextFileEdgeSource(path, 10))

    def test_truncated_binary_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"\x00" * 12)  # not a multiple of 8
        with pytest.raises(GraphFormatError):
            BinaryFileEdgeSource(path, 10)

    def test_negative_id_rejected_with_lineno(self, tmp_path):
        """Regression: the in-memory Graph rejects negatives; the text
        source must too, instead of negative-indexing degree arrays."""
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n-3 4\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:3: negative"):
            _collect(TextFileEdgeSource(path, 10))

    def test_binary_truncated_before_iteration(self, graph, tmp_path):
        """Regression: the edge count is computed at construction; a file
        truncated before iteration must raise, not yield short chunks."""
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, 2)
        with open(path, "r+b") as fh:
            fh.truncate(graph.num_edges * 8 - 16)  # drop two edges
        with pytest.raises(GraphFormatError, match=r"g\.bin"):
            _collect(src)

    def test_binary_truncated_to_odd_tail(self, graph, tmp_path):
        """An odd-length tail must raise GraphFormatError naming the
        file, not a bare ValueError out of reshape."""
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, 1000)
        with open(path, "r+b") as fh:
            fh.truncate(graph.num_edges * 8 - 4)  # half an edge
        with pytest.raises(GraphFormatError, match=r"g\.bin"):
            _collect(src)


class TestMultiPassReiteration:
    """Restreaming's contract: every source re-reads identically.

    Multi-pass algorithms (restreaming, and the pipeline's repeated
    counting/splitting/metrics sweeps) require that iterating a source
    N times yields the same chunk sequence each time — from text,
    binary and in-memory sources alike.
    """

    def _passes(self, source, n=3):
        return [_collect(source) for _ in range(n)]

    def _assert_all_equal(self, passes):
        first_pairs, first_eids = passes[0]
        for pairs, eids in passes[1:]:
            assert np.array_equal(pairs, first_pairs)
            assert np.array_equal(eids, first_eids)

    def test_text_source_three_passes(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        write_text_edgelist(graph, path)
        self._assert_all_equal(self._passes(TextFileEdgeSource(path, 3)))

    def test_binary_source_three_passes(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        self._assert_all_equal(self._passes(BinaryFileEdgeSource(path, 2)))

    def test_binary_shuffled_repasses_identically(self, graph, tmp_path):
        """Seeded shuffle must replay the same permutation every pass."""
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, 2, order="shuffled", seed=9)
        self._assert_all_equal(self._passes(src))

    def test_in_memory_source_three_passes(self, graph):
        self._assert_all_equal(self._passes(InMemoryEdgeSource(graph, 3)))

    def test_prefetching_source_three_passes(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = PrefetchingEdgeSource(BinaryFileEdgeSource(path, 2), depth=2)
        self._assert_all_equal(self._passes(src))

    def test_interleaved_iterators_do_not_corrupt(self, graph, tmp_path):
        """Two concurrent sweeps over one source must stay independent."""
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = BinaryFileEdgeSource(path, 2)
        a, b = iter(src), iter(src)
        got_a = [next(a).pairs, next(a).pairs]
        got_b = [c.pairs for c in b]
        assert np.array_equal(np.vstack(got_b), graph.edges)
        assert np.array_equal(np.vstack(got_a), graph.edges[:4])


class TestPrefetchingSource:
    def test_matches_inner_source(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        inner = BinaryFileEdgeSource(path, 2)
        pairs, eids = _collect(PrefetchingEdgeSource(inner, depth=3))
        assert np.array_equal(pairs, graph.edges)
        assert np.array_equal(eids, np.arange(graph.num_edges))

    def test_wraps_any_source(self, graph):
        src = PrefetchingEdgeSource(InMemoryEdgeSource(graph, 3), depth=1)
        pairs, _ = _collect(src)
        assert np.array_equal(pairs, graph.edges)

    def test_metadata_delegates(self, graph):
        inner = InMemoryEdgeSource(graph, 4)
        src = PrefetchingEdgeSource(inner, depth=2)
        assert src.num_edges == inner.num_edges
        assert src.num_vertices == inner.num_vertices
        assert src.chunk_size == inner.chunk_size
        assert "prefetch" in src.describe()

    def test_propagates_worker_errors(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2 2\n")  # self-loop -> GraphFormatError
        src = PrefetchingEdgeSource(TextFileEdgeSource(path, 1), depth=2)
        with pytest.raises(GraphFormatError):
            _collect(src)

    def test_abandoned_iteration_stops_worker(self, graph, tmp_path):
        """Breaking out mid-stream must not leak a blocked thread."""
        import threading

        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        src = PrefetchingEdgeSource(BinaryFileEdgeSource(path, 1), depth=1)
        before = threading.active_count()
        for _ in range(5):
            for chunk in src:
                break  # abandon immediately
        assert threading.active_count() <= before + 1

    def test_bad_depth_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            PrefetchingEdgeSource(InMemoryEdgeSource(graph, 4), depth=0)


class TestOpenEdgeSource:
    def test_graph_passthrough(self, graph):
        src = open_edge_source(graph, 4)
        assert isinstance(src, InMemoryEdgeSource)

    def test_source_passthrough(self, graph):
        src = InMemoryEdgeSource(graph, 4)
        assert open_edge_source(src) is src

    def test_dataset_name(self):
        src = open_edge_source("LJ", 1024)
        assert isinstance(src, InMemoryEdgeSource)
        assert src.num_edges > 0

    def test_binary_by_suffix(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        assert isinstance(open_edge_source(path, 4), BinaryFileEdgeSource)

    def test_text_fallback(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        write_text_edgelist(graph, path)
        assert isinstance(open_edge_source(path, 4), TextFileEdgeSource)

    def test_missing_path_errors(self):
        with pytest.raises(ConfigurationError):
            open_edge_source("/nonexistent/elsewhere.txt", 4)

    def test_text_reorder_rejected(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        write_text_edgelist(graph, path)
        with pytest.raises(ConfigurationError):
            open_edge_source(path, 4, order="shuffled")


class TestFormatSniffing:
    """Regression: suffix alone used to decide text-vs-binary, so a text
    edge list named ``*.edges`` (the SNAP convention) was parsed as flat
    uint32 pairs and silently partitioned garbage."""

    def test_text_content_with_binary_suffix_rejected(self, graph, tmp_path):
        path = tmp_path / "snap.edges"
        write_text_edgelist(graph, path)
        with pytest.raises(GraphFormatError, match="text"):
            open_edge_source(path, 4)

    def test_binary_content_with_text_suffix_rejected(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        write_binary_edgelist(graph, path)
        with pytest.raises(GraphFormatError, match="binary"):
            open_edge_source(path, 4)

    def test_matching_formats_pass(self, graph, tmp_path):
        bin_path = tmp_path / "g.bin"
        write_binary_edgelist(graph, bin_path)
        txt_path = tmp_path / "g.txt"
        write_text_edgelist(graph, txt_path)
        assert isinstance(open_edge_source(bin_path, 4), BinaryFileEdgeSource)
        assert isinstance(open_edge_source(txt_path, 4), TextFileEdgeSource)

    def test_empty_file_is_ambiguous_and_follows_suffix(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        src = open_edge_source(path, 4)
        assert isinstance(src, BinaryFileEdgeSource)
        assert src.num_edges == 0

    def test_sniffed_garbage_partition_becomes_error(self, graph, tmp_path):
        """The original failure mode end to end: a text file named
        .edges fed to the out-of-core driver must raise, not produce a
        garbage partition."""
        from repro.stream import StreamingPartitionerDriver

        path = tmp_path / "snap.edges"
        write_text_edgelist(graph, path)
        with pytest.raises(GraphFormatError):
            StreamingPartitionerDriver("HDRF", chunk_size=4).partition(path, 2)


class TestPrefetchClose:
    """Regression: PrefetchingEdgeSource.close() mid-iteration must join
    the reader thread (which releases the inner source's handles)."""

    @pytest.fixture()
    def big_file(self, tmp_path):
        n = 600
        g = Graph.from_edges(
            [(i, i + 1) for i in range(n - 1)], num_vertices=n
        )
        path = tmp_path / "chain.bin"
        write_binary_edgelist(g, path)
        return path

    def test_close_joins_reader_thread(self, big_file):
        import threading

        before = set(threading.enumerate())
        src = PrefetchingEdgeSource(
            BinaryFileEdgeSource(big_file, 32), depth=2
        )
        it = iter(src)
        next(it)
        assert any(
            t.name == "edge-chunk-prefetch" for t in threading.enumerate()
        )
        src.close()
        assert set(threading.enumerate()) == before

    def test_resuming_closed_iterator_raises(self, big_file):
        src = PrefetchingEdgeSource(
            BinaryFileEdgeSource(big_file, 16), depth=1
        )
        it = iter(src)
        next(it)
        src.close()
        with pytest.raises(ValueError, match="closed during iteration"):
            for _ in it:
                pass

    def test_fresh_iteration_after_close(self, big_file):
        src = PrefetchingEdgeSource(
            BinaryFileEdgeSource(big_file, 64), depth=2
        )
        expected_pairs, expected_eids = _collect(src)
        it = iter(src)
        next(it)
        src.close()
        pairs, eids = _collect(src)
        assert np.array_equal(pairs, expected_pairs)
        assert np.array_equal(eids, expected_eids)

    def test_close_idempotent_and_base_noop(self, big_file, graph):
        src = PrefetchingEdgeSource(
            BinaryFileEdgeSource(big_file, 16), depth=1
        )
        src.close()
        src.close()
        # Base sources expose close() as a safe no-op.
        InMemoryEdgeSource(graph, 4).close()
        BinaryFileEdgeSource(big_file, 16).close()

"""Graph container and edge-list input/output.

The paper's partitioners consume the graph as a *binary edge list with
32-bit vertex ids* (Appendix A).  This module provides that format, a
human-readable text format, and the in-memory :class:`Graph` container all
partitioners operate on.

A :class:`Graph` is an undirected, unweighted simple graph.  Edges keep
the *orientation* they had in the input stream — NE++'s last-partition
sweep (Algorithm 3) assigns low/low edges "from the perspective of the
left-hand side vertex of the edge in the original edge list", so the
stored ``(u, v)`` order is semantically meaningful even though the graph
is undirected.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError

__all__ = [
    "Graph",
    "canonical_edges",
    "read_binary_edgelist",
    "write_binary_edgelist",
    "read_text_edgelist",
    "write_text_edgelist",
]

_BINARY_DTYPE = np.dtype("<u4")  # little-endian unsigned 32-bit, per paper


class Graph:
    """Undirected simple graph stored as an oriented edge array.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer array.  Must already be canonical (no
        self-loops, no duplicate undirected edges); use
        :meth:`Graph.from_edges` for raw input.
    num_vertices:
        Universe size ``n``; vertex ids are ``0 .. n-1``.
    name:
        Optional label used in reports.
    """

    __slots__ = ("_edges", "_num_vertices", "name", "_degrees")

    def __init__(self, edges: np.ndarray, num_vertices: int, name: str = "") -> None:
        edges = np.ascontiguousarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphFormatError(f"edges must be (m, 2), got shape {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
            raise GraphFormatError("edge endpoint outside [0, num_vertices)")
        self._edges = edges
        self._edges.setflags(write=False)
        self._num_vertices = int(num_vertices)
        self.name = name
        self._degrees: np.ndarray | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray | list[tuple[int, int]],
        num_vertices: int | None = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from a raw edge stream.

        Self-loops are dropped and duplicate undirected edges are removed,
        keeping the *first* occurrence (and its orientation) so that the
        canonical order still reflects the input stream.
        """
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(f"edges must be (m, 2), got shape {arr.shape}")
        if arr.size and arr.min() < 0:
            raise GraphFormatError("negative vertex id")
        n = int(num_vertices) if num_vertices is not None else (
            int(arr.max()) + 1 if arr.size else 0
        )
        return cls(canonical_edges(arr), n, name=name)

    # -- basic properties ----------------------------------------------------

    @property
    def edges(self) -> np.ndarray:
        """The canonical ``(m, 2)`` oriented edge array (read-only)."""
        return self._edges

    @property
    def num_vertices(self) -> int:
        """Number of vertex ids in the universe (``n``)."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (``m``)."""
        return int(self._edges.shape[0])

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex (computed once, then cached)."""
        if self._degrees is None:
            deg = np.bincount(
                self._edges.ravel(), minlength=self._num_vertices
            ).astype(np.int64)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    @property
    def mean_degree(self) -> float:
        """Average degree over all ``n`` vertices (the paper's ``d̄``)."""
        if self._num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_vertices

    @property
    def num_covered_vertices(self) -> int:
        """Number of vertices with degree >= 1 (used to normalize RF)."""
        return int((self.degrees > 0).sum())

    def subgraph_edges(self, edge_mask: np.ndarray, name: str = "") -> "Graph":
        """Graph over the same vertex universe keeping ``edge_mask`` edges."""
        return Graph(self._edges[edge_mask], self._num_vertices, name=name)

    def binary_size_bytes(self) -> int:
        """Size of this graph as a binary 32-bit edge list (Table 3 'Size')."""
        return self.num_edges * 2 * 4

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Graph({label} n={self.num_vertices:,} m={self.num_edges:,} "
            f"mean_degree={self.mean_degree:.2f})"
        )


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Drop self-loops and duplicate undirected edges from an edge array.

    The first occurrence of each undirected edge wins and keeps its
    original orientation and (relative) stream position.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.size == 0:
        return edges.reshape(0, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    # Collapse the unordered pair into one sortable key.
    key = lo * (hi.max() + 1) + hi
    _, first_idx = np.unique(key, return_index=True)
    first_idx.sort()
    return edges[first_idx]


# -- binary format (paper Appendix A) ----------------------------------------


def write_binary_edgelist(graph: Graph, path: str | os.PathLike) -> int:
    """Write ``graph`` as a flat little-endian uint32 pair stream.

    Returns the number of bytes written.  This is the on-disk format the
    paper feeds to HEP, HDRF, DBH, NE and SNE.
    """
    if graph.num_vertices > 2**32:
        raise GraphFormatError("binary format supports at most 2^32 vertices")
    data = graph.edges.astype(_BINARY_DTYPE)
    with open(path, "wb") as fh:
        data.tofile(fh)
    return data.nbytes


def read_binary_edgelist(
    path: str | os.PathLike, num_vertices: int | None = None, name: str = ""
) -> Graph:
    """Read a binary uint32 edge list written by :func:`write_binary_edgelist`."""
    size = Path(path).stat().st_size
    if size % 8 != 0:
        raise GraphFormatError(
            f"{path}: binary edge list length {size} is not a multiple of 8"
        )
    with open(path, "rb") as fh:
        flat = np.fromfile(fh, dtype=_BINARY_DTYPE)
    return Graph.from_edges(flat.reshape(-1, 2), num_vertices, name=name)


# -- text format ---------------------------------------------------------------


def write_text_edgelist(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` as whitespace-separated ``u v`` lines."""
    with open(path, "w", encoding="ascii") as fh:
        for u, v in graph.edges:
            fh.write(f"{u} {v}\n")


def read_text_edgelist(
    path: str | os.PathLike, num_vertices: int | None = None, name: str = ""
) -> Graph:
    """Read a text edge list; ``#``-prefixed lines are comments."""
    pairs: list[tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer id") from exc
    if not pairs:
        return Graph.from_edges(np.empty((0, 2), dtype=np.int64), num_vertices, name)
    return Graph.from_edges(np.asarray(pairs), num_vertices, name=name)


def edges_from_string(text: str) -> np.ndarray:
    """Parse ``u v`` lines from a string (testing convenience)."""
    buf = io.StringIO(text)
    pairs = []
    for line in buf:
        line = line.strip()
        if line and not line.startswith("#"):
            u, v = line.split()
            pairs.append((int(u), int(v)))
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)

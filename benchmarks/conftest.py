"""Benchmark-suite plumbing.

Each bench runs one experiment (``repro.experiments``) under
pytest-benchmark timing and registers the resulting paper-vs-measured
table.  The tables are written to ``results/<experiment>.txt`` and
printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures both the timing table
and the reproduced artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_RESULTS: list = []
_RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def record_experiment():
    """Fixture: benches call this with their ExperimentResult."""

    def _record(result):
        _RESULTS.append(result)
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.format() + "\n", encoding="utf-8")
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REPRODUCED PAPER ARTIFACTS (paper-vs-measured; also in results/)")
    write("=" * 78)
    for result in _RESULTS:
        write("")
        for line in result.format().splitlines():
            write(line)

"""End-to-end integration tests across module boundaries.

These exercise the full pipelines a user runs: file -> graph -> partition
-> metrics -> processing/paging, and the cross-module consistency the
experiment harness depends on.
"""

import numpy as np
import pytest

from repro import (
    HepPartitioner,
    assert_valid,
    datasets,
    hep_memory_bytes,
    read_binary_edgelist,
    replication_factor,
    select_tau,
    write_binary_edgelist,
)
from repro.core import run_ne_plus_plus
from repro.core.memory_model import pruned_column_entries
from repro.experiments.common import make_partitioner, run_partitioner
from repro.graph import build_pruned_csr
from repro.graph.generators import chung_lu
from repro.memsim import PAGE_BYTES, run_paged_ne_plus_plus
from repro.metrics import edge_balance, vertex_balance
from repro.partition import PartitionAssignment
from repro.processing import VertexCutEngine, pagerank


class TestFileToPartitionPipeline:
    def test_binary_roundtrip_then_hep(self, tmp_path):
        """The paper's exact input path: binary 32-bit edge list -> HEP."""
        original = chung_lu(300, mean_degree=8, exponent=2.3, seed=91, name="g")
        path = tmp_path / "graph.bin"
        write_binary_edgelist(original, path)
        graph = read_binary_edgelist(path, num_vertices=300, name="g")
        assignment = HepPartitioner(tau=2.0).partition(graph, 4)
        assert_valid(assignment, alpha=1.0)
        # Same input file -> same partitioning (full determinism).
        again = HepPartitioner(tau=2.0).partition(
            read_binary_edgelist(path, num_vertices=300), 4
        )
        assert np.array_equal(assignment.parts, again.parts)

    def test_budget_to_partition_pipeline(self):
        """select_tau -> HepPartitioner honors the projected footprint."""
        graph = datasets.load("LJ")
        k = 16
        generous = hep_memory_bytes(graph, 1e9, k)
        budget = int(generous * 0.7)
        tau, projected = select_tau(graph, budget, k)
        assert projected <= budget
        partitioner = HepPartitioner(tau=tau)
        assignment = partitioner.partition(graph, k)
        assert_valid(assignment, alpha=1.0)
        # The projection equals the model for the chosen tau.
        assert projected == hep_memory_bytes(graph, tau, k)


class TestCrossModuleConsistency:
    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(400, mean_degree=10, exponent=2.2, seed=92, name="x")

    def test_phase_one_loads_match_assignment_sizes(self, graph):
        result = run_ne_plus_plus(graph, 8, tau=1.0)
        assignment = PartitionAssignment(graph, 8, result.parts)
        sizes = assignment.partition_sizes()
        assert np.array_equal(sizes, result.loads)

    def test_memory_model_matches_built_csr(self, graph):
        for tau in (0.5, 2.0, 50.0):
            csr = build_pruned_csr(graph, tau)
            assert pruned_column_entries(graph, tau) == csr.col.size

    def test_engine_rf_equals_metric_rf(self, graph):
        assignment = HepPartitioner(tau=1.0).partition(graph, 4)
        engine = VertexCutEngine(assignment)
        assert engine.replication_factor() == pytest.approx(
            replication_factor(assignment)
        )

    def test_report_row_matches_direct_metrics(self, graph):
        report = run_partitioner("HEP-10", graph, 4)
        assignment = HepPartitioner(tau=10.0).partition(graph, 4)
        assert report.replication_factor == pytest.approx(
            replication_factor(assignment)
        )
        assert report.alpha == pytest.approx(edge_balance(assignment))
        assert report.vertex_balance == pytest.approx(vertex_balance(assignment))

    def test_make_partitioner_names_round_trip(self, graph):
        for name in ("HEP-100", "HEP-1", "HDRF", "DBH", "NE", "NE++", "SNE"):
            partitioner = make_partitioner(name)
            # Table name must reproduce so Figure 8 rows stay addressable.
            assert partitioner.name.upper().startswith(name.split("-")[0].upper())

    def test_make_partitioner_unknown(self, graph):
        with pytest.raises(KeyError):
            make_partitioner("NOPE")


class TestFullEvaluationSlice:
    """A miniature of the whole evaluation on one small graph: every
    partitioner family, one processing job, one paging run."""

    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(250, mean_degree=8, exponent=2.3, seed=93, name="mini")

    @pytest.mark.parametrize(
        "name",
        ["HEP-10", "HEP-1", "HDRF", "Greedy", "DBH", "Grid", "ADWISE",
         "Random", "NE", "NE++", "SNE", "DNE", "METIS"],
    )
    def test_partitioner_to_processing(self, graph, name):
        partitioner = make_partitioner(name)
        assignment = partitioner.partition(graph, 4)
        assert assignment.num_unassigned == 0
        engine = VertexCutEngine(assignment)
        job = pagerank(engine, iterations=3)
        assert job.sim_seconds > 0
        assert job.total_messages >= 0

    def test_paging_slice(self, graph):
        result = run_paged_ne_plus_plus(graph, 4, memory_limit_bytes=1 << 22)
        assert result.page_faults >= result.working_set_pages * 0  # sane
        tight = run_paged_ne_plus_plus(
            graph, 4, memory_limit_bytes=max(PAGE_BYTES * 4, PAGE_BYTES)
        )
        assert tight.page_faults >= result.page_faults

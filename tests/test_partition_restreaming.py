"""Tests for the restreaming (multi-pass HDRF) extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.generators import chung_lu, erdos_renyi
from repro.metrics import assert_valid, replication_factor
from repro.partition import HdrfPartitioner
from repro.partition.restreaming import RestreamingHdrfPartitioner


@pytest.fixture(scope="module")
def graph():
    return chung_lu(500, mean_degree=10, exponent=2.2, seed=61)


class TestRestreaming:
    def test_valid_assignment(self, graph):
        a = RestreamingHdrfPartitioner(passes=2).partition(graph, 4)
        assert_valid(a, alpha=1.0)

    def test_single_pass_close_to_hdrf(self, graph):
        """One pass with exact degrees ~ standalone exact-degree HDRF."""
        rf_restream = replication_factor(
            RestreamingHdrfPartitioner(passes=1).partition(graph, 8)
        )
        rf_hdrf = replication_factor(
            HdrfPartitioner(exact_degrees=True).partition(graph, 8)
        )
        assert rf_restream == pytest.approx(rf_hdrf, rel=0.1)

    def test_more_passes_not_worse(self, graph):
        """Restreaming's whole point: later passes refine early mistakes."""
        k = 8
        rf = {
            passes: replication_factor(
                RestreamingHdrfPartitioner(passes=passes).partition(graph, k)
            )
            for passes in (1, 3)
        }
        assert rf[3] <= rf[1] * 1.02

    def test_beats_single_pass_hdrf(self, graph):
        k = 8
        rf_multi = replication_factor(
            RestreamingHdrfPartitioner(passes=3).partition(graph, k)
        )
        rf_single = replication_factor(HdrfPartitioner().partition(graph, k))
        assert rf_multi < rf_single

    def test_rejects_zero_passes(self):
        with pytest.raises(ConfigurationError):
            RestreamingHdrfPartitioner(passes=0)

    def test_name_encodes_passes(self):
        assert RestreamingHdrfPartitioner(passes=4).name == "ReHDRF-4"

    def test_deterministic(self, graph):
        a = RestreamingHdrfPartitioner(passes=2).partition(graph, 4)
        b = RestreamingHdrfPartitioner(passes=2).partition(graph, 4)
        assert np.array_equal(a.parts, b.parts)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(8, 40),
    m=st.integers(10, 100),
    k=st.sampled_from([2, 4]),
    passes=st.sampled_from([1, 2, 3]),
    seed=st.integers(0, 3),
)
def test_restreaming_property(n, m, k, passes, seed):
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return
    a = RestreamingHdrfPartitioner(passes=passes).partition(g, k)
    assert_valid(a, alpha=1.0)

"""Tests for edge-stream orderings and partition persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph import Graph, read_binary_edgelist
from repro.graph.generators import chung_lu, erdos_renyi, ring, star
from repro.graph.ordering import ORDERINGS, edge_order, reorder_edges
from repro.graph.partition_io import (
    read_assignment,
    write_assignment,
    write_partition_edgelists,
)
from repro.metrics import replication_factor
from repro.metrics.communication import (
    boundary_vertices_per_partition,
    communication_volume,
    num_cut_vertices,
)
from repro.partition import HdrfPartitioner, PartitionAssignment


@pytest.fixture(scope="module")
def graph():
    return chung_lu(300, mean_degree=8, exponent=2.3, seed=41, name="g")


class TestEdgeOrder:
    @pytest.mark.parametrize("strategy", ORDERINGS)
    def test_is_permutation(self, graph, strategy):
        perm = edge_order(graph, strategy, seed=3)
        assert sorted(perm.tolist()) == list(range(graph.num_edges))

    def test_natural_is_identity(self, graph):
        assert np.array_equal(
            edge_order(graph, "natural"), np.arange(graph.num_edges)
        )

    def test_random_depends_on_seed(self, graph):
        a = edge_order(graph, "random", seed=1)
        b = edge_order(graph, "random", seed=2)
        assert not np.array_equal(a, b)

    def test_degree_order_keys_on_min_endpoint(self):
        g = Graph.from_edges([(0, 1), (2, 3), (0, 2), (0, 3)], num_vertices=4)
        perm = edge_order(g, "degree")
        # "Hubs first" means both endpoints high: the edge whose weaker
        # endpoint has degree 1 — (0,1) — must stream last.
        assert g.edges[perm[-1]].tolist() == [0, 1]

    def test_adversarial_puts_hub_edges_last(self):
        g = star(20)
        extra = Graph.from_edges(
            np.vstack([g.edges, [[1, 2]]]), num_vertices=20
        )
        perm = edge_order(extra, "adversarial")
        # Edge (1,2) touches only low-degree vertices: must stream first.
        assert extra.edges[perm[0]].tolist() == [1, 2]

    def test_bfs_groups_neighborhoods(self):
        g = ring(30)
        perm = edge_order(g, "bfs")
        # BFS expands the ring from one start in both directions, so each
        # streamed edge touches a vertex seen within the last few edges
        # (window locality) — unlike a random shuffle.
        def window_locality(edges, window=4):
            hits = 0
            for i in range(1, len(edges)):
                recent = {
                    x
                    for e in edges[max(0, i - window) : i]
                    for x in e.tolist()
                }
                if set(edges[i].tolist()) & recent:
                    hits += 1
            return hits / (len(edges) - 1)

        bfs_locality = window_locality(g.edges[perm])
        random_locality = window_locality(
            g.edges[edge_order(g, "random", seed=1)]
        )
        assert bfs_locality > 0.9
        assert bfs_locality > random_locality

    def test_unknown_strategy(self, graph):
        with pytest.raises(ConfigurationError):
            edge_order(graph, "sorted-by-vibes")


class TestReorder:
    def test_round_trip_assignment_mapping(self, graph):
        perm = edge_order(graph, "random", seed=5)
        reordered = reorder_edges(graph, perm)
        a = HdrfPartitioner().partition(reordered, 4)
        # Map back to canonical order and check metric equivalence.
        parts = np.empty(graph.num_edges, dtype=np.int32)
        parts[perm] = a.parts
        back = PartitionAssignment(graph, 4, parts)
        assert replication_factor(back) == pytest.approx(replication_factor(a))

    def test_rejects_partial_permutation(self, graph):
        with pytest.raises(ConfigurationError):
            reorder_edges(graph, np.zeros(graph.num_edges, dtype=np.int64))


class TestCommunicationMetrics:
    def test_star_figure1_numbers(self):
        g = star(7)
        parts = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        a = PartitionAssignment(g, 2, parts)
        assert communication_volume(a) == 1   # the hub's one extra replica
        assert num_cut_vertices(a) == 1
        assert boundary_vertices_per_partition(a).tolist() == [1, 1]

    def test_single_partition_no_communication(self, graph):
        a = PartitionAssignment(
            graph, 1, np.zeros(graph.num_edges, dtype=np.int32)
        )
        assert communication_volume(a) == 0
        assert num_cut_vertices(a) == 0

    def test_volume_consistent_with_rf(self, graph):
        a = HdrfPartitioner().partition(graph, 8)
        covered = int((graph.degrees > 0).sum())
        expected = replication_factor(a) * covered - covered
        assert communication_volume(a) == pytest.approx(expected)


class TestPartitionIo:
    def test_assignment_round_trip(self, graph, tmp_path):
        a = HdrfPartitioner().partition(graph, 4)
        path = tmp_path / "parts.txt"
        write_assignment(a, path)
        back = read_assignment(graph, path)
        assert back.k == 4
        assert np.array_equal(back.parts, a.parts)

    def test_read_detects_wrong_graph(self, graph, tmp_path):
        a = HdrfPartitioner().partition(graph, 4)
        path = tmp_path / "parts.txt"
        write_assignment(a, path)
        other = erdos_renyi(50, 60, seed=1)
        with pytest.raises(GraphFormatError):
            read_assignment(other, path)

    def test_read_missing_sidecar(self, graph, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_assignment(graph, path)

    def test_partition_edgelists_cover_graph(self, graph, tmp_path):
        a = HdrfPartitioner().partition(graph, 4)
        paths = write_partition_edgelists(a, tmp_path / "shards")
        assert len(paths) == 4
        total = 0
        for p, path in enumerate(paths):
            shard = read_binary_edgelist(path, num_vertices=graph.num_vertices)
            assert shard.num_edges == int((a.parts == p).sum())
            total += shard.num_edges
        assert total == graph.num_edges

    def test_empty_partition_file_exists(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        a = PartitionAssignment(g, 3, np.array([0, 0], dtype=np.int32))
        paths = write_partition_edgelists(a, tmp_path / "shards")
        assert paths[2].exists() and paths[2].stat().st_size == 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(5, 40),
    m=st.integers(5, 100),
    strategy=st.sampled_from(ORDERINGS),
    seed=st.integers(0, 4),
)
def test_ordering_permutation_property(n, m, strategy, seed):
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges == 0:
        return
    perm = edge_order(g, strategy, seed=seed)
    assert sorted(perm.tolist()) == list(range(g.num_edges))
    reordered = reorder_edges(g, perm)
    # Same multiset of undirected edges.
    canon = lambda E: sorted((min(u, v), max(u, v)) for u, v in E.tolist())
    assert canon(reordered.edges) == canon(g.edges)

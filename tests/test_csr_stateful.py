"""Stateful property test: the CSR under arbitrary removal sequences.

A hypothesis rule-based state machine drives the two removal paths
(the clean-up's ``remove_marked`` and NE's ``remove_edge_entry``)
against a dict-of-sets reference model, checking after every step that
valid adjacency, edge-id pairing and window invariants all hold.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.graph import CsrGraph, Graph
from repro.graph.generators import erdos_renyi


class CsrRemovalMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 100))
    def setup(self, seed):
        self.graph = erdos_renyi(12, 30, seed=seed)
        self.csr = CsrGraph.build(self.graph)
        # Reference model: per vertex, the set of (neighbor, eid) entries.
        self.model: dict[int, set[tuple[int, int]]] = {
            v: set() for v in range(self.graph.num_vertices)
        }
        for e, (u, v) in enumerate(self.graph.edges.tolist()):
            self.model[u].add((v, e))
            self.model[v].add((u, e))

    @rule(data=st.data())
    def remove_marked(self, data):
        n = self.graph.num_vertices
        v = data.draw(st.integers(0, n - 1), label="vertex")
        flags = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n), label="marked"
        )
        marked = np.asarray(flags, dtype=bool)
        removed = self.csr.remove_marked(v, marked)
        expected = {(w, e) for (w, e) in self.model[v] if marked[w]}
        assert removed == len(expected)
        self.model[v] -= expected

    @rule(data=st.data())
    def remove_single_entry(self, data):
        n = self.graph.num_vertices
        v = data.draw(st.integers(0, n - 1), label="vertex")
        if self.model[v]:
            w, e = sorted(self.model[v])[0]
            assert self.csr.remove_edge_entry(v, w, e)
            self.model[v].discard((w, e))
        else:
            assert not self.csr.remove_edge_entry(v, 0, 0)

    @invariant()
    def csr_matches_model(self):
        if not hasattr(self, "csr"):
            return
        for v in range(self.graph.num_vertices):
            out_n, out_e = self.csr.out_view(v)
            in_n, in_e = self.csr.in_view(v)
            entries = set(zip(out_n.tolist(), out_e.tolist())) | set(
                zip(in_n.tolist(), in_e.tolist())
            )
            assert entries == self.model[v], f"vertex {v}"

    @invariant()
    def windows_stay_bounded(self):
        if not hasattr(self, "csr"):
            return
        self.csr.check_invariants()


TestCsrRemoval = CsrRemovalMachine.TestCase
TestCsrRemoval.settings = settings(max_examples=25, stateful_step_count=30,
                                   deadline=None)

"""Universal out-of-core driver: streamed ≡ in-memory per baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PartitioningError
from repro.graph import generators, write_binary_edgelist, write_text_edgelist
from repro.metrics import assert_valid
from repro.partition import (
    DbhPartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HdrfPartitioner,
    RestreamingHdrfPartitioner,
)
from repro.stream import (
    STREAMING_ALGORITHMS,
    StreamingPartitionerDriver,
    make_streaming_algorithm,
)
from strategies import graphs

#: (algo name, equivalent in-memory partitioner factory, driver kwargs)
_CASES = [
    ("HDRF", lambda: HdrfPartitioner(), {}),
    ("Greedy", lambda: GreedyPartitioner(), {}),
    ("DBH", lambda: DbhPartitioner(), {}),
    ("Grid", lambda: GridPartitioner(), {}),
    ("Restreaming", lambda: RestreamingHdrfPartitioner(passes=2), {"passes": 2}),
]


@pytest.fixture(scope="module")
def skewed_graph():
    return generators.chung_lu(500, mean_degree=7, exponent=2.1, seed=23)


class TestEquivalence:
    """Acceptance: every baseline is bit-identical streamed vs in-memory."""

    @pytest.mark.parametrize("name,make_inmem,kwargs", _CASES)
    @settings(max_examples=15, deadline=None)
    @given(
        graph=graphs(min_edges=2, max_edges=60, max_vertices=16),
        chunk_size=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=2, max_value=4),
    )
    def test_property_identical_parts(
        self, graph, chunk_size, k, name, make_inmem, kwargs
    ):
        expected = make_inmem().partition(graph, k)
        driver = StreamingPartitionerDriver(name, chunk_size=chunk_size, **kwargs)
        result = driver.partition(graph, k)
        assert np.array_equal(result.parts, expected.parts)

    @pytest.mark.parametrize("name,make_inmem,kwargs", _CASES)
    def test_binary_file_identical(
        self, skewed_graph, tmp_path, name, make_inmem, kwargs
    ):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        expected = make_inmem().partition(skewed_graph, 5)
        result = StreamingPartitionerDriver(
            name, chunk_size=173, **kwargs
        ).partition(path, 5)
        assert np.array_equal(result.parts, expected.parts)
        assert result.replication_factor == pytest.approx(
            expected.replication_factor()
        )
        assert result.edge_balance == pytest.approx(expected.balance())

    def test_text_file_identical(self, skewed_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_text_edgelist(skewed_graph, path)
        expected = HdrfPartitioner().partition(skewed_graph, 4)
        result = StreamingPartitionerDriver("HDRF", chunk_size=64).partition(
            path, 4
        )
        assert np.array_equal(result.parts, expected.parts)

    def test_prefetch_does_not_change_results(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        for name, _, kwargs in _CASES:
            plain = StreamingPartitionerDriver(
                name, chunk_size=97, **kwargs
            ).partition(path, 4)
            prefetched = StreamingPartitionerDriver(
                name, chunk_size=97, prefetch=3, **kwargs
            ).partition(path, 4)
            assert np.array_equal(plain.parts, prefetched.parts), name


class TestResult:
    def test_result_fields_and_validity(self, skewed_graph):
        driver = StreamingPartitionerDriver("Greedy", chunk_size=50)
        result = driver.partition(skewed_graph, 4)
        assert result.algorithm == "Greedy"
        assert result.num_unassigned == 0
        assert result.num_edges == skewed_graph.num_edges
        assert result.loads.sum() == skewed_graph.num_edges
        assert_valid(result.to_assignment(skewed_graph))
        assert driver.last_result is result

    def test_restreaming_reports_passes(self, skewed_graph):
        result = StreamingPartitionerDriver(
            "Restreaming", passes=2, chunk_size=64
        ).partition(skewed_graph, 3)
        assert result.passes == 2
        assert result.algorithm == "ReHDRF-2"

    def test_driver_name(self):
        assert StreamingPartitionerDriver("DBH").name == "DBH-ooc"


class TestConfiguration:
    def test_case_insensitive_lookup(self):
        for spelled in ("hdrf", "HDRF", "Hdrf"):
            assert make_streaming_algorithm(spelled).name == "HDRF"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            make_streaming_algorithm("NE")

    def test_registry_covers_paper_baselines(self):
        assert set(STREAMING_ALGORITHMS) >= {
            "HDRF", "Greedy", "DBH", "Grid", "Restreaming"
        }

    def test_instance_with_kwargs_rejected(self):
        algo = make_streaming_algorithm("HDRF")
        with pytest.raises(ConfigurationError):
            StreamingPartitionerDriver(algo, lam=1.5)

    def test_k_too_small(self, skewed_graph):
        with pytest.raises(ConfigurationError):
            StreamingPartitionerDriver("HDRF").partition(skewed_graph, 1)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(PartitioningError):
            StreamingPartitionerDriver("HDRF").partition(path, 2)

    def test_bad_passes(self):
        with pytest.raises(ConfigurationError):
            make_streaming_algorithm("Restreaming", passes=0)

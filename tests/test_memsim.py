"""Tests for the paging simulator: LRU semantics, inclusion property,
trace construction, and the Table 6 blow-up shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.generators import chung_lu
from repro.memsim import (
    PAGE_BYTES,
    LruPageCache,
    build_page_trace,
    replay_trace,
    run_paged_ne_plus_plus,
)
from repro.core.ne_plus_plus import run_ne_plus_plus


class TestLruCache:
    def test_cold_miss_then_hit(self):
        c = LruPageCache(2)
        assert not c.access(1)
        assert c.access(1)
        assert c.faults == 1 and c.hits == 1

    def test_eviction_order(self):
        c = LruPageCache(2)
        c.access(1)
        c.access(2)
        c.access(1)      # 1 becomes most recent
        c.access(3)      # evicts 2
        assert c.access(1)
        assert not c.access(2)

    def test_capacity_respected(self):
        c = LruPageCache(3)
        for p in range(10):
            c.access(p)
        assert c.resident_pages == 3

    def test_access_range(self):
        c = LruPageCache(10)
        assert c.access_range(0, 4) == 5
        assert c.access_range(0, 4) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            LruPageCache(0)

    def test_total_accesses(self):
        c = LruPageCache(1)
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.total_accesses == 3


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(0, 20), max_size=300),
    small=st.integers(1, 8),
    extra=st.integers(1, 8),
)
def test_lru_inclusion_property(trace, small, extra):
    """LRU is a stack algorithm: a larger cache never faults more."""
    c_small = LruPageCache(small)
    c_large = LruPageCache(small + extra)
    for page in trace:
        c_small.access(page)
        c_large.access(page)
    assert c_large.faults <= c_small.faults


@settings(max_examples=30, deadline=None)
@given(trace=st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_lru_matches_reference_simulation(trace):
    """Cross-check against a list-based reference LRU."""
    cache = LruPageCache(4)
    reference: list[int] = []
    expected_faults = 0
    for page in trace:
        if page in reference:
            reference.remove(page)
            reference.append(page)
        else:
            expected_faults += 1
            if len(reference) >= 4:
                reference.pop(0)
            reference.append(page)
        cache.access(page)
    assert cache.faults == expected_faults


class TestPageTrace:
    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(400, mean_degree=10, exponent=2.3, seed=77)

    def test_trace_covers_walked_vertices(self, graph):
        walks: list[int] = []
        run_ne_plus_plus(graph, 4, trace_walk=walks.append)
        trace = build_page_trace(graph, walks, tau=float("inf"))
        assert trace.num_accesses >= len(walks)
        assert trace.working_set_pages() <= trace.total_pages

    def test_address_space_matches_csr(self, graph):
        trace = build_page_trace(graph, [0, 1], tau=float("inf"))
        expected = 4 * graph.num_vertices * 4 + 2 * graph.num_edges * 4
        assert trace.address_space_bytes == expected

    def test_pruned_trace_smaller_address_space(self, graph):
        full = build_page_trace(graph, [0], tau=float("inf"))
        pruned = build_page_trace(graph, [0], tau=1.0)
        assert pruned.address_space_bytes < full.address_space_bytes

    def test_ranges_in_bounds(self, graph):
        walks: list[int] = []
        run_ne_plus_plus(graph, 4, trace_walk=walks.append)
        trace = build_page_trace(graph, walks, tau=float("inf"))
        for first, last in trace.ranges:
            assert 0 <= first <= last < trace.total_pages


class TestPagedNePlusPlus:
    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(600, mean_degree=12, exponent=2.2, seed=78)

    def test_generous_memory_no_capacity_faults(self, graph):
        result = run_paged_ne_plus_plus(graph, 4, memory_limit_bytes=1 << 26)
        # With everything resident, faults equal the cold working set.
        assert result.page_faults == result.working_set_pages

    def test_fault_blowup_as_memory_shrinks(self, graph):
        """The Table 6 shape: faults and runtime increase monotonically as
        the limit shrinks, exploding below the working set."""
        working_bytes = (
            run_paged_ne_plus_plus(graph, 4, 1 << 26).working_set_pages * PAGE_BYTES
        )
        limits = [
            int(working_bytes * f) for f in (1.2, 0.8, 0.5, 0.3, 0.15)
        ]
        faults = [
            run_paged_ne_plus_plus(graph, 4, max(lim, PAGE_BYTES)).page_faults
            for lim in limits
        ]
        assert faults == sorted(faults)
        assert faults[-1] > 3 * faults[0]

    def test_runtime_model_increases_with_faults(self, graph):
        big = run_paged_ne_plus_plus(graph, 4, 1 << 26)
        small = run_paged_ne_plus_plus(
            graph, 4, max(big.working_set_pages * PAGE_BYTES // 5, PAGE_BYTES)
        )
        assert small.page_faults > big.page_faults
        penalty_delta = (small.page_faults - big.page_faults) * 300e-6
        assert small.modeled_runtime_seconds >= penalty_delta

    def test_rejects_sub_page_limit(self, graph):
        with pytest.raises(ConfigurationError):
            run_paged_ne_plus_plus(graph, 4, memory_limit_bytes=100)

    def test_thrashing_ratio(self, graph):
        tight = run_paged_ne_plus_plus(graph, 4, PAGE_BYTES * 8)
        roomy = run_paged_ne_plus_plus(graph, 4, 1 << 26)
        assert tight.thrashing_ratio > roomy.thrashing_ratio

"""Nestable-span tracer with JSONL output and a no-op default.

Design notes
------------

A :class:`Tracer` records **spans** — named, timed regions with
arbitrary JSON attributes, additive counters, and (optionally) a memory
delta.  Spans nest: the innermost open span on the current thread is
the parent of the next one opened.  Each finished span becomes one JSON
record; a tracer either appends records to a JSONL file (coordinator
mode, ``path=...``) or buffers them in memory (worker/collect mode,
``path=None``) so a forked worker can :meth:`~Tracer.drain` its records
and ship them over a pipe to the coordinator, which re-parents them
with :meth:`~Tracer.adopt`.

Timestamps: ``start`` is wall-clock epoch seconds (``time.time``) so
records from different processes line up on one axis, while durations
come from ``time.perf_counter`` for resolution.

The process-global tracer defaults to :data:`NULL_TRACER` whose
``span()`` returns one shared no-op handle — instrumentation in hot
paths reduces to an attribute lookup and a no-op context manager when
tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "NULL_TRACER",
    "TRACE_VERSION",
    "MEMORY_MODES",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "install_collecting_tracer",
    "set_tracer",
    "tracing",
]

TRACE_VERSION = 1
"""Format version stamped into the trace header record."""

MEMORY_MODES = ("tracemalloc", "rss")
"""Accepted values for the tracer's per-span memory probe."""


def _rss_bytes() -> int:
    """Best-effort resident-set size of this process in bytes."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except Exception:  # pragma: no cover - platform fallback of a fallback
        return 0


def _json_default(value: Any) -> Any:
    """Coerce non-JSON values (numpy scalars, paths) for trace records."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # pragma: no cover - exotic .item()
            pass
    return str(value)


class Span:
    """One nestable timed region; used as a context manager.

    Obtained from :meth:`Tracer.span`; entering the span assigns its id
    and parent from the tracer's per-thread stack, exiting records the
    duration (and memory delta when the tracer has a memory probe) and
    emits the span's JSON record.
    """

    __slots__ = ("_tracer", "record", "_t0", "_mem0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        """Bind an unstarted span to ``tracer``; use ``with`` to run it."""
        self._tracer = tracer
        self.record: dict[str, Any] = {
            "type": "span",
            "id": 0,
            "parent": None,
            "name": name,
            "start": 0.0,
            "dur_s": 0.0,
            "attrs": attrs,
            "counters": {},
        }
        self._t0 = 0.0
        self._mem0 = 0

    def __enter__(self) -> "Span":
        """Start the clock and push this span onto the nesting stack."""
        self._tracer._begin(self)
        self._mem0 = self._tracer._mem_probe()
        self.record["start"] = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        """Stop the clock, record memory delta, and emit the record."""
        self.record["dur_s"] = time.perf_counter() - self._t0
        if self._tracer.memory is not None:
            self.record["mem_delta_bytes"] = (
                self._tracer._mem_probe() - self._mem0
            )
        if exc_type is not None:
            self.record["attrs"]["error"] = exc_type.__name__
        self._tracer._finish(self)

    def add(self, counter: str, value: float) -> None:
        """Add ``value`` to the span's ``counter`` (created at zero)."""
        item = getattr(value, "item", None)
        if callable(item):
            value = item()
        counters = self.record["counters"]
        counters[counter] = counters.get(counter, 0) + value

    def set(self, **attrs: Any) -> None:
        """Merge extra attributes into the span record."""
        self.record["attrs"].update(attrs)


class _NullSpan:
    """Shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """Return self; nothing is recorded."""
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        """Do nothing."""

    def add(self, counter: str, value: float) -> None:
        """Discard the counter update."""

    def set(self, **attrs: Any) -> None:
        """Discard the attributes."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer installed as the process-global default.

    Every method is a no-op and :meth:`span` always returns the same
    shared handle, so instrumented code pays only a method call and an
    empty ``with`` block when tracing is off.
    """

    enabled = False
    memory: str | None = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def event(self, name: str, counters: dict | None = None, **attrs: Any) -> None:
        """Discard the event."""

    def adopt(self, records: list[dict], **attrs: Any) -> None:
        """Discard foreign records."""

    def drain(self) -> list[dict]:
        """Return an empty record list."""
        return []

    def close(self) -> dict[str, Any]:
        """Return an empty summary."""
        return {}

    @property
    def num_spans(self) -> int:
        """Always zero."""
        return 0


NULL_TRACER = NullTracer()
"""The shared no-op tracer; the process-global default."""


class Tracer:
    """Records nestable spans to a JSONL file or an in-memory buffer.

    Parameters
    ----------
    path:
        Destination JSONL file.  ``None`` selects *collect mode*: records
        are buffered in memory for :meth:`drain` — this is how worker
        processes trace without owning a file.
    memory:
        Optional per-span memory probe: ``"tracemalloc"`` (Python-heap
        delta; starts tracemalloc if needed) or ``"rss"`` (process
        resident-set delta from ``/proc``).
    """

    enabled = True

    def __init__(self, path: str | os.PathLike | None = None,
                 memory: str | None = None):
        """Open the trace file (or the in-memory buffer) and write the header."""
        if memory is not None and memory not in MEMORY_MODES:
            raise ConfigurationError(
                f"memory mode must be one of {MEMORY_MODES}, got {memory!r}"
            )
        self.path = Path(path) if path is not None else None
        self.memory = memory
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._records: list[dict[str, Any]] = []
        self._handle = None
        self._num_spans = 0
        self._names: dict[str, list[float]] = {}
        self._counters: dict[str, float] = {}
        if memory == "tracemalloc":
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
        if self.path is not None:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._emit({
                "type": "trace",
                "version": TRACE_VERSION,
                "pid": os.getpid(),
                "created": time.time(),
                "memory": memory,
            })

    # -- span plumbing -------------------------------------------------

    def _stack(self) -> list[Span]:
        """Per-thread stack of open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _mem_probe(self) -> int:
        """Current memory reading for the configured probe (0 when off)."""
        if self.memory == "tracemalloc":
            import tracemalloc

            return tracemalloc.get_traced_memory()[0]
        if self.memory == "rss":
            return _rss_bytes()
        return 0

    def _begin(self, span: Span) -> None:
        """Assign id/parent and push onto the nesting stack."""
        stack = self._stack()
        with self._lock:
            span.record["id"] = self._next_id
            self._next_id += 1
        span.record["parent"] = stack[-1].record["id"] if stack else None
        stack.append(span)

    def _finish(self, span: Span) -> None:
        """Pop the span and emit its finished record."""
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._emit_span(span.record)

    def _emit_span(self, record: dict[str, Any]) -> None:
        """Emit a span record and fold it into the running aggregates."""
        with self._lock:
            self._num_spans += 1
            entry = self._names.setdefault(record["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += record["dur_s"]
            for key, value in record.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            self._emit(record)

    def _emit(self, record: dict[str, Any]) -> None:
        """Write one record to the file or the collect buffer."""
        if self._handle is not None:
            self._handle.write(
                json.dumps(record, default=_json_default) + "\n"
            )
        else:
            self._records.append(record)

    # -- public API ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Return a new span; enter it with ``with`` to time a region."""
        return Span(self, name, attrs)

    def event(self, name: str, counters: dict | None = None,
              **attrs: Any) -> None:
        """Record a zero-duration span (a point event with counters)."""
        with self.span(name, **attrs) as span:
            for key, value in (counters or {}).items():
                span.add(key, value)

    def add(self, counter: str, value: float) -> None:
        """Add to the innermost open span's counter (tracer-level if none)."""
        stack = self._stack()
        if stack:
            stack[-1].add(counter, value)
        else:
            with self._lock:
                self._counters[counter] = (
                    self._counters.get(counter, 0) + value
                )

    def adopt(self, records: list[dict], **attrs: Any) -> int:
        """Graft foreign span records under the current span.

        ``records`` is a drained worker trace: ids are renumbered into
        this tracer's id space, parentless roots are re-parented under
        the innermost open span (and tagged with ``attrs``), and every
        record is emitted here.  Returns the number of adopted spans.
        """
        if not records:
            return 0
        stack = self._stack()
        anchor = stack[-1].record["id"] if stack else None
        with self._lock:
            offset = self._next_id
            self._next_id = offset + max(r["id"] for r in records) + 1
        for original in records:
            record = dict(original)
            record["id"] = record["id"] + offset
            if record.get("parent") is None:
                record["parent"] = anchor
                if attrs:
                    record["attrs"] = {**record.get("attrs", {}), **attrs}
            else:
                record["parent"] = record["parent"] + offset
            self._emit_span(record)
        return len(records)

    def drain(self) -> list[dict]:
        """Return and clear the collect-mode record buffer."""
        with self._lock:
            records, self._records = self._records, []
        return records

    @property
    def num_spans(self) -> int:
        """Number of span records emitted (including adopted ones)."""
        return self._num_spans

    def summary(self) -> dict[str, Any]:
        """Aggregated per-name counts/durations and total counters."""
        with self._lock:
            return {
                "type": "summary",
                "spans": self._num_spans,
                "names": {
                    name: {"count": entry[0], "total_s": entry[1]}
                    for name, entry in sorted(self._names.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def close(self) -> dict[str, Any]:
        """Write the trailing summary record and close the file."""
        summary = self.summary()
        if self._handle is not None:
            self._emit(summary)
            self._handle.close()
            self._handle = None
        return summary


_GLOBAL = threading.Lock()
_TRACER: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """Return the process-global tracer (:data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: NullTracer | Tracer) -> NullTracer | Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _TRACER
    with _GLOBAL:
        previous = _TRACER
        _TRACER = tracer
    return previous


def install_collecting_tracer(enabled: bool) -> NullTracer | Tracer:
    """Install a worker-process tracer; returns the installed tracer.

    Worker entry points call this first thing: with ``enabled`` a fresh
    collect-mode :class:`Tracer` (records buffered for
    :meth:`Tracer.drain`), otherwise :data:`NULL_TRACER`.  Either way
    the install replaces any file-writing tracer a ``fork`` child
    inherited from the coordinator — a worker must never write the
    coordinator's trace file.
    """
    tracer: NullTracer | Tracer = Tracer(None) if enabled else NULL_TRACER
    set_tracer(tracer)
    return tracer


@contextmanager
def tracing(path: str | os.PathLike | None,
            memory: str | None = None) -> Iterator[Tracer]:
    """Install a :class:`Tracer` globally for the duration of a block.

    The previous global tracer is restored and the trace file closed
    (summary record appended) on exit, even on error.
    """
    tracer = Tracer(path, memory=memory)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()

"""Pluggable executors: how a plan's stages actually run.

Two strategies exist, selected from the spec's execution shape:

* :class:`InProcessExecutor` (``workers == 0``) — sequential chunk
  sweeps in the coordinator process; the counting/metrics passes may
  still fan out over scan workers (``metrics_workers``), on a warm
  :class:`~repro.stream.workers.PersistentWorkerPool` when
  ``shared_memory`` is set,
* :class:`PoolExecutor` (``workers >= 1``) — the streaming phase runs
  on BSP worker processes, reusing one warm pool across the counting
  pass, the stream, and the metrics pass (or per-run pipe pools with
  ``shared_memory=False``).

Both strategies are pinned bit-identical to each other and to the
in-memory oracles by the equivalence/Hypothesis suites; the executor
choice changes wall-clock and memory placement, never assignments.
The pass bodies are the pre-PR 8 driver internals, moved here intact
(same kernel calls, same span names, same pool lifecycles).
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.errors import PartitioningError
from repro.obs.tracer import get_tracer
from repro.partition.base import capacity_bound
from repro.runtime.plan import pipeline_kind
from repro.runtime.spec import JobSpec
from repro.runtime.stages import RunContext, informed_phase_two_state

__all__ = ["Executor", "InProcessExecutor", "PoolExecutor", "select_executor"]


class Executor:
    """Shared executor surface: lifecycle hooks plus the pass strategies.

    ``prepare`` runs before the source is opened, ``start`` just after,
    ``finish`` in the run's ``finally``.  The scan passes are identical
    across strategies (the front doors in
    :mod:`repro.stream.parallel_scan` pick sequential/cold/warm
    internally), so they live here.
    """

    name = "base"

    def prepare(self, spec: JobSpec, ctx: RunContext) -> None:
        """Hook before the source opens (planning, early pool spawn)."""

    def start(self, spec: JobSpec, ctx: RunContext) -> None:
        """Hook after the source opens (pool spawn for the run)."""

    def finish(self, spec: JobSpec, ctx: RunContext) -> None:
        """Shut down the warm pool, if this run started one."""
        if ctx.pool is not None:
            ctx.pool.shutdown()
            ctx.pool = None

    def scan_stats_pass(self, spec: JobSpec, ctx: RunContext):
        """Counting pass through the parallel-scan front door."""
        from repro.stream.parallel_scan import scan_stats

        return scan_stats(
            ctx.source, ctx.src, spec.metrics_workers, spec.chunk_size,
            mp_context=spec.mp_context, pool=ctx.pool,
        )

    def scan_quality_pass(self, spec: JobSpec, ctx: RunContext):
        """Metrics pass through the parallel-scan front door."""
        from repro.stream.parallel_scan import scan_quality

        return scan_quality(
            ctx.source, ctx.src, ctx.stats, spec.k, ctx.parts,
            spec.metrics_workers, spec.chunk_size,
            memory_budget=spec.memory_budget,
            mp_context=spec.mp_context, pool=ctx.pool,
        )

    def stream_source(self, spec: JobSpec, ctx: RunContext) -> None:
        """Streaming-pipeline stream stage (strategy-specific)."""
        raise NotImplementedError

    def stream_spill(self, spec: JobSpec, ctx: RunContext) -> np.ndarray:
        """HEP phase-two stream over the spill (strategy-specific)."""
        raise NotImplementedError


class InProcessExecutor(Executor):
    """Sequential sweeps in the coordinator process (``workers == 0``)."""

    name = "in-process"

    def start(self, spec: JobSpec, ctx: RunContext) -> None:
        """Warm scan pool for the counting/metrics fan-outs, if asked.

        Mirrors the sequential baseline driver: one warm pool serves
        both scan passes when ``shared_memory`` is set and the source
        supports parallel scans; the sequential HEP shim passes
        ``shared_memory=False`` and keeps the PR 5 cold-pool behavior.
        """
        from repro.stream.parallel_scan import effective_scan_workers

        if spec.shared_memory and effective_scan_workers(
            ctx.source, spec.metrics_workers
        ):
            from repro.stream.workers import PersistentWorkerPool

            # Registered on the context *before* start(): if an
            # interrupt lands mid-spawn, finish() still reaps it.
            pool = PersistentWorkerPool(spec.metrics_workers)
            ctx.pool = pool
            pool.start()

    def stream_source(self, spec: JobSpec, ctx: RunContext) -> None:
        """Chunked sweeps through the algorithm adapter (one per pass)."""
        tracer = get_tracer()
        algo = ctx.algorithm
        capacity = capacity_bound(ctx.stats.num_edges, spec.k, spec.alpha)
        algo.prepare(ctx.stats, spec.k, capacity)
        parts = np.full(ctx.stats.num_edges, -1, dtype=np.int32)
        for sweep in range(algo.passes):
            with tracer.span(
                "stream_pass", algo=algo.name, sweep=sweep
            ) as span:
                for chunk in ctx.src:
                    algo.process(chunk.pairs, chunk.eids, parts)
                    span.add("edges_scanned", chunk.num_edges)
        with tracer.span("finalize", algo=algo.name):
            parts = algo.finalize(parts, spec.k, capacity)
        ctx.parts = parts
        ctx.passes = algo.passes
        ctx.loads = np.bincount(
            parts[parts >= 0], minlength=spec.k
        ).astype(np.int64)

    def stream_spill(self, spec: JobSpec, ctx: RunContext) -> np.ndarray:
        """Phase two: informed HDRF over the spilled h2h chunks."""
        from repro.stream.buffered import stream_chunks_through_hdrf

        state = informed_phase_two_state(spec, ctx)
        params = spec.params
        stream_chunks_through_hdrf(
            state,
            ctx.spill.chunks(spec.chunk_size),
            ctx.parts,
            lam=params.get("lam", 1.1),
            eps=params.get("eps", 1.0),
            buffer_size=spec.buffer_size,
        )
        return state.loads


class PoolExecutor(Executor):
    """BSP worker processes for the streaming phase (``workers >= 1``)."""

    name = "pool"

    def prepare(self, spec: JobSpec, ctx: RunContext) -> None:
        """Multi-worker HDRF setup: shard plan + warm pool, pre-open.

        Matches :class:`~repro.stream.workers.MultiWorkerStreamingDriver`:
        the shard assignment is planned (and the empty source rejected)
        before anything else, and the warm pool is spawned before any
        big arrays exist.  The HEP pipeline plans nothing here — its
        worker segments come from the spill split in phase two.
        """
        if pipeline_kind(spec) == "hep":
            return
        from repro.stream.workers import plan_worker_segments

        segments, _, num_edges, _ = plan_worker_segments(
            ctx.source, spec.workers
        )
        if num_edges == 0:
            raise PartitioningError("multi-worker HDRF: edge stream is empty")
        ctx.segments = segments
        self._spawn_warm_pool(spec, ctx)

    def start(self, spec: JobSpec, ctx: RunContext) -> None:
        """Multi-worker HEP: spawn the warm pool once the source is open."""
        if pipeline_kind(spec) == "hep":
            self._spawn_warm_pool(spec, ctx)

    def _spawn_warm_pool(self, spec: JobSpec, ctx: RunContext) -> None:
        """Start the shared-memory warm pool (unless pipes were asked for)."""
        if not spec.shared_memory:
            return
        from repro.stream.workers import PersistentWorkerPool

        pool = PersistentWorkerPool(
            spec.workers, mp_context=spec.mp_context, timeout=spec.timeout
        )
        # Registered on the context *before* start(): if an interrupt
        # lands mid-spawn, finish() still reaps it.
        ctx.pool = pool
        pool.start()

    def _run_bsp(self, spec: JobSpec, segments, state, parts, ctx):
        """One BSP run over ``segments``: warm shared-memory or pipe pool."""
        from repro.stream.workers import WorkerPool, run_bsp_shared

        params = spec.params
        lam = params.get("lam", 1.1)
        eps = params.get("eps", 1.0)
        if ctx.pool is not None:
            return run_bsp_shared(
                ctx.pool, segments, state, parts,
                batch=spec.batch, lam=lam, eps=eps,
                chunk_size=spec.chunk_size,
            )
        with WorkerPool(
            segments,
            state,
            batch=spec.batch,
            lam=lam,
            eps=eps,
            chunk_size=spec.chunk_size,
            mp_context=spec.mp_context,
            timeout=spec.timeout,
        ) as pool:
            return pool.run(parts)

    def stream_source(self, spec: JobSpec, ctx: RunContext) -> None:
        """Informed HDRF over the shard assignment, one process per worker."""
        from repro.partition.state import StreamingState

        capacity = capacity_bound(ctx.stats.num_edges, spec.k, spec.alpha)
        state = StreamingState(
            ctx.stats.num_vertices, spec.k, capacity,
            exact_degrees=ctx.stats.degrees,
        )
        parts = np.full(ctx.stats.num_edges, -1, dtype=np.int32)
        ctx.report = self._run_bsp(spec, ctx.segments, state, parts, ctx)
        ctx.parts = parts
        ctx.loads = state.loads.copy()

    def stream_spill(self, spec: JobSpec, ctx: RunContext) -> np.ndarray:
        """Phase two: informed HDRF over per-worker spill segments."""
        from repro.stream.workers import split_spill_round_robin

        state = informed_phase_two_state(spec, ctx)
        with tempfile.TemporaryDirectory(
            prefix="mw-h2h-", dir=spec.spill_dir
        ) as tmp:
            with get_tracer().span(
                "split_spill", workers=spec.workers
            ) as span:
                segments = split_spill_round_robin(
                    ctx.spill, spec.workers, tmp, spec.chunk_size,
                    compression=spec.spill_compression,
                )
                span.add("spill_bytes", ctx.spill.nbytes)
                span.add("spill_records", len(ctx.spill))
            ctx.report = self._run_bsp(
                spec, segments, state, ctx.parts, ctx
            )
        return state.loads


def select_executor(spec: JobSpec) -> Executor:
    """Pick the strategy from the spec's execution shape."""
    return PoolExecutor() if spec.workers >= 1 else InProcessExecutor()

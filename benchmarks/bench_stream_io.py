"""Bench: in-memory HEP vs out-of-core HEP (wall-clock and peak heap).

The out-of-core pipeline trades extra passes over the edge file for a
bounded working set.  This bench measures both sides of that trade on a
file-backed R-MAT graph: wall-clock through pytest-benchmark, and a
peak-RSS proxy via ``tracemalloc`` (pure-Python heap peaks — interpreter
overhead cancels out of the comparison since both sides pay it).

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_io.py \
        -o python_functions=bench_ --benchmark-only
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.hep import HepPartitioner
from repro.graph import generators, read_binary_edgelist, write_binary_edgelist
from repro.stream import OutOfCoreHep

_K = 16
_TAU = 1.0
_CHUNK = 1 << 12


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = generators.rmat(scale=12, edge_factor=8, seed=42, name="bench-rmat")
    path = tmp_path_factory.mktemp("stream-io") / "rmat.bin"
    write_binary_edgelist(graph, path)
    return path


def bench_in_memory_hep(benchmark, edge_file):
    def run():
        graph = read_binary_edgelist(edge_file)
        return HepPartitioner(tau=_TAU).partition(graph, _K)

    assignment = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert assignment.num_unassigned == 0


def bench_out_of_core_hep(benchmark, edge_file):
    pipeline = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK)
    result = benchmark.pedantic(
        pipeline.partition, args=(edge_file, _K), rounds=2, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_unassigned == 0
    assert result.breakdown.num_h2h_edges > 0


def bench_out_of_core_hep_buffered(benchmark, edge_file):
    pipeline = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK, buffer_size=1024)
    result = benchmark.pedantic(
        pipeline.partition, args=(edge_file, _K), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_unassigned == 0


def bench_peak_heap_comparison(benchmark, edge_file, capsys):
    """One traced run of each side; the table is the artifact."""

    def measure():
        rows = []
        tracemalloc.start()
        graph = read_binary_edgelist(edge_file)
        in_mem = HepPartitioner(tau=_TAU).partition(graph, _K)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(("in-memory HEP", peak, in_mem.replication_factor()))
        del graph, in_mem

        tracemalloc.start()
        result = OutOfCoreHep(tau=_TAU, chunk_size=_CHUNK).partition(
            edge_file, _K
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(("out-of-core HEP", peak, result.replication_factor))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\npeak traced heap (tau=%g, k=%d):" % (_TAU, _K))
        for name, peak, rf in rows:
            print(f"  {name:<18} {peak / 2**20:8.2f} MiB  rf={rf:.4f}")
    in_mem_peak = rows[0][1]
    ooc_peak = rows[1][1]
    # The bounded pipeline must not exceed the in-memory peak: chunks
    # plus the pruned CSR are strictly smaller than the full edge array
    # plus the same CSR.
    assert ooc_peak < in_mem_peak

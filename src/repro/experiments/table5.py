"""Table 5: vertex balancing of HEP (std / avg replicas per partition).

The hidden strength of hybrid partitioning: the streaming phase balances
vertex replicas better than neighborhood expansion, so lower ``tau``
improves vertex balance — which Table 4 shows matters on graphs that all
partitioners handle well.
"""

from __future__ import annotations

from repro.core import HepPartitioner
from repro.experiments.common import ExperimentResult, load_dataset
from repro.experiments.paper_reference import SHAPES, TABLE5_VERTEX_BALANCE
from repro.metrics import vertex_balance

__all__ = ["run"]

_GRAPHS = ("OK", "IT", "TW")
_TAUS = (100.0, 10.0, 1.0)


def run(
    graphs: tuple[str, ...] = _GRAPHS,
    taus: tuple[float, ...] = _TAUS,
    k: int = 32,
) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for tau in taus:
        name = f"HEP-{tau:g}"
        row: dict[str, object] = {"partitioner": name}
        for graph_name in graphs:
            graph = load_dataset(graph_name)
            assignment = HepPartitioner(tau=tau).partition(graph, k)
            row[graph_name] = round(vertex_balance(assignment), 3)
            paper = TABLE5_VERTEX_BALANCE.get(name, {}).get(graph_name)
            row[f"paper_{graph_name}"] = paper if paper is not None else "-"
        rows.append(row)
    result = ExperimentResult(
        experiment_id="table5",
        title=f"HEP vertex balancing, std/avg replicas per partition (k={k})",
        rows=rows,
        paper_shape=SHAPES["table5"],
    )
    for graph_name in graphs:
        values = [float(r[graph_name]) for r in rows]
        # Tolerant monotonicity: at laptop scale tau=100 and tau=10 prune
        # nearly the same vertex set, so allow noise-level inversions; the
        # load-bearing effect is the drop at the streaming-heavy end.
        eases = all(b <= a * 1.1 for a, b in zip(values, values[1:]))
        big_drop = values[-1] < values[0]
        result.notes.append(
            f"{graph_name}: balance improves as tau falls (10% tolerance)="
            f"{eases}; tau=1 clearly better than tau=100={big_drop}"
        )
    return result

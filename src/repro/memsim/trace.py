"""Memory-reference traces of NE++ runs.

NE++ reports, through its ``trace_walk`` hook, every vertex whose
adjacency list it walks.  This module maps those walks to byte ranges of
the data structures of Section 4.2 laid out in one flat address space:

* the four index/size arrays (touched at offset ``v * id_bytes`` each),
* the column array (touched at the vertex's adjacency window).

Replaying the resulting page trace through an LRU cache of a given size
reproduces the hard-fault behaviour of running NE++ under a cgroup
memory limit (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.edgelist import Graph
from repro.graph.pruned import high_degree_mask
from repro.memsim.lru import PAGE_BYTES

__all__ = ["PageTrace", "build_page_trace"]


@dataclass(frozen=True)
class PageTrace:
    """A replayable sequence of inclusive page ranges."""

    ranges: list[tuple[int, int]]
    address_space_bytes: int

    @property
    def num_accesses(self) -> int:
        return len(self.ranges)

    @property
    def total_pages(self) -> int:
        return -(-self.address_space_bytes // PAGE_BYTES)

    def working_set_pages(self) -> int:
        """Number of distinct pages touched by the whole trace."""
        seen: set[int] = set()
        for first, last in self.ranges:
            seen.update(range(first, last + 1))
        return len(seen)


def build_page_trace(
    graph: Graph,
    walks: list[int],
    tau: float,
    id_bytes: int = 4,
) -> PageTrace:
    """Convert a recorded walk sequence into page ranges.

    The CSR layout is rebuilt deterministically from ``(graph, tau)`` so
    callers only need to record vertex ids.  Adjacency windows use the
    build-time capacities (lazy removal shrinks the *valid* prefix, but
    the resident pages of a list are its allocated extent).
    """
    if np.isinf(tau):
        high = np.zeros(graph.num_vertices, dtype=bool)
    else:
        high = high_degree_mask(graph, tau)
    csr = CsrGraph.build(graph, high_mask=high)

    n = graph.num_vertices
    index_region_bytes = 4 * n * id_bytes
    column_offset = index_region_bytes
    column_bytes = int(csr.col.size) * id_bytes
    total_bytes = column_offset + column_bytes

    out_start = csr.out_start
    in_start = csr.in_start
    in_cap = np.empty(n, dtype=np.int64)
    if n:
        in_cap[:-1] = out_start[1:] - in_start[:-1]
        in_cap[-1] = csr.col.size - in_start[-1]

    ranges: list[tuple[int, int]] = []
    for v in walks:
        # Index/size array touches: four arrays, each at v * id_bytes.
        for array_index in range(4):
            byte = array_index * n * id_bytes + v * id_bytes
            page = byte // PAGE_BYTES
            ranges.append((page, page))
        # Column-array window of v.
        start_byte = column_offset + int(out_start[v]) * id_bytes
        end_entry = int(in_start[v]) + int(in_cap[v])
        end_byte = max(column_offset + end_entry * id_bytes - 1, start_byte)
        ranges.append((start_byte // PAGE_BYTES, end_byte // PAGE_BYTES))
    return PageTrace(ranges=ranges, address_space_bytes=total_bytes)

#!/usr/bin/env python
"""CI gate: validate the worker/scan bench artifacts' structure.

Checks ``results/BENCH_workers.json`` (``benchmarks/bench_workers.py``)
and ``results/BENCH_scan.json`` (``benchmarks/bench_scan.py``), so a
bench refactor that drops a protocol row (including the PR 8
cached-vs-cold artifact-store pair), loses ``cpu_count``, or stops
emitting the warm-pool configuration fails the build instead of
silently degrading the artifacts the README points at.

Dispatches on each record's ``"bench"`` tag, so one invocation can take
both files (or future bench outputs that reuse these two shapes).

Usage::

    python tools/check_bench_schema.py \
        results/BENCH_workers.json results/BENCH_scan.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


class SchemaError(ValueError):
    """A bench record violated the expected structure."""


def _require(record: dict, key: str, kind, *, positive: bool = False):
    """Fetch ``record[key]`` asserting type (and sign for numbers)."""
    if key not in record:
        raise SchemaError(f"missing key {key!r}")
    value = record[key]
    if kind is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SchemaError(f"{key!r} must be a number, got {value!r}")
    elif not isinstance(value, kind) or isinstance(value, bool):
        raise SchemaError(
            f"{key!r} must be {kind.__name__}, got {value!r}"
        )
    if positive and value <= 0:
        raise SchemaError(f"{key!r} must be positive, got {value!r}")
    return value


def _validate_common(record: dict) -> list[dict]:
    """Checks shared by every bench record; returns the row list."""
    _require(record, "graph", str)
    _require(record, "edges", int, positive=True)
    k = _require(record, "k", int)
    if k < 2:
        raise SchemaError(f"'k' must be >= 2, got {k}")
    _require(record, "cpu_count", int, positive=True)
    rows = _require(record, "rows", list)
    if not rows:
        raise SchemaError("'rows' must be non-empty")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise SchemaError(f"rows[{i}] must be an object")
        try:
            _require(row, "driver", str)
            _require(row, "workers", int)
            _require(row, "seconds", float, positive=True)
        except SchemaError as exc:
            raise SchemaError(f"rows[{i}]: {exc}") from None
    return rows


def validate_workers_record(record: dict) -> None:
    """Validate a ``multi_worker_scaling`` record (bench_workers.py)."""
    rows = _validate_common(record)
    _require(record, "modeled_parallelism_4w", float, positive=True)
    protocols = set()
    for i, row in enumerate(rows):
        try:
            protocol = _require(row, "protocol", str)
            if protocol not in (
                "sequential", "shared-memory", "pipes", "cold", "cached"
            ):
                raise SchemaError(f"unknown protocol {protocol!r}")
            _require(row, "rf", float, positive=True)
            _require(row, "speedup_vs_single_worker", float, positive=True)
        except SchemaError as exc:
            raise SchemaError(f"rows[{i}]: {exc}") from None
        protocols.add(protocol)
    for needed in ("sequential", "shared-memory", "pipes", "cold", "cached"):
        if needed not in protocols:
            raise SchemaError(f"no {needed!r} row — protocol pairing lost")
    by_protocol = {row["protocol"]: row for row in rows}
    if by_protocol["cached"]["rf"] != by_protocol["cold"]["rf"]:
        raise SchemaError(
            "the 'cached' row's rf differs from the 'cold' row's — the "
            "artifact store did not return the stored assignment"
        )


def validate_scan_record(record: dict) -> None:
    """Validate a ``parallel_scan_throughput`` record (bench_scan.py)."""
    rows = _validate_common(record)
    cover = _require(record, "cover_bytes", int, positive=True)
    bound = _require(record, "cover_bound_bytes", int, positive=True)
    if cover > bound:
        raise SchemaError(
            f"cover_bytes {cover} exceeds cover_bound_bytes {bound}"
        )
    _require(record, "metrics_pass_peak_heap_bytes", int, positive=True)
    pools = set()
    for i, row in enumerate(rows):
        try:
            pool = _require(row, "pool", str)
            if pool not in ("none", "cold", "warm"):
                raise SchemaError(f"unknown pool {pool!r}")
            _require(row, "speedup_vs_sequential", float, positive=True)
            modeled = _require(row, "modeled_speedup", float, positive=True)
            if modeled < 1:
                raise SchemaError(
                    f"'modeled_speedup' must be >= 1, got {modeled}"
                )
        except SchemaError as exc:
            raise SchemaError(f"rows[{i}]: {exc}") from None
        pools.add(pool)
    for needed in ("none", "cold", "warm"):
        if needed not in pools:
            raise SchemaError(f"no {needed!r}-pool row — a sweep was lost")


_VALIDATORS = {
    "multi_worker_scaling": validate_workers_record,
    "parallel_scan_throughput": validate_scan_record,
}


def main(argv: list[str]) -> int:
    """Validate each bench JSON path given on the command line."""
    if not argv:
        print(
            "usage: check_bench_schema.py BENCH_workers.json "
            "[BENCH_scan.json ...]",
            file=sys.stderr,
        )
        return 2
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"error: {path}: no such file (did the bench run?)",
                  file=sys.stderr)
            return 1
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"error: {path}: not valid JSON: {exc}", file=sys.stderr)
            return 1
        bench = record.get("bench")
        validator = _VALIDATORS.get(bench)
        if validator is None:
            print(
                f"error: {path}: unknown bench tag {bench!r} "
                f"(expected one of {sorted(_VALIDATORS)})",
                file=sys.stderr,
            )
            return 1
        try:
            validator(record)
        except SchemaError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        rows = record["rows"]
        print(f"{path}: ok ({bench}, cpu_count={record['cpu_count']}, "
              f"{len(rows)} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

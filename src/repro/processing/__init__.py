"""Distributed graph-processing simulator (Spark/GraphX substitute)."""

from repro.processing.algorithms import bfs, connected_components, pagerank
from repro.processing.cost import CostModel
from repro.processing.engine import JobResult, VertexCutEngine

__all__ = [
    "VertexCutEngine",
    "JobResult",
    "CostModel",
    "pagerank",
    "bfs",
    "connected_components",
]

"""Sharded edge files: a manifest plus N shard files, read concurrently.

The ROADMAP's next storage step after the single-file chunked readers:
an edge list split into ``N`` contiguous *shards* described by a small
JSON **manifest**.  Shards are flat little-endian uint32 pairs — each
shard is itself a valid binary edge list — or, with
``compression="zlib"``, a framed variant reusing the
:class:`~repro.stream.spill.SpillFile` frame encoding (magic + version
+ codec header, then ``<u4 payload_bytes, <u4 record_count`` frames of
zlib-deflated pairs).

Three public pieces:

* :class:`ShardWriter` / :func:`write_sharded_edges` — split any edge
  stream into shards + manifest with bounded memory,
* :class:`ShardedEdgeSource` — reads the shards **concurrently** (one
  reader thread per in-flight shard, bounded read-ahead per shard) and
  re-chunks through a bounded reorder buffer so the emitted chunk/eid
  sequence is *bit-identical* to reading one concatenated file,
* :class:`MmapEdgeSource` — serves zero-copy chunks straight out of an
  ``np.memmap`` window for the uncompressed single-file case (also
  usable on any uncompressed shard).

Because shards partition the canonical edge stream contiguously, edge
ids are still the global stream positions — the out-of-core drivers
consume a manifest exactly like a single file, and the equivalence
properties in ``tests/test_stream_shard.py`` pin bit-identity.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, GraphFormatError
from repro.stream.reader import (
    DEFAULT_CHUNK_SIZE,
    EdgeChunk,
    EdgeChunkSource,
    _check_chunk_size,
    _validate_chunk,
)

# Reuse the SpillFile frame encoding (header/frame structs and codec
# table) for the compressed shard variant — one framing format on disk.
from repro.stream.spill import _CODEC_NAMES, _CODECS, _FRAME, _HEADER

__all__ = [
    "ShardManifest",
    "ShardWriter",
    "ShardedEdgeSource",
    "MmapEdgeSource",
    "write_sharded_edges",
    "read_shard_manifest",
    "read_flat_edge_blocks",
    "read_framed_edge_blocks",
    "is_manifest_path",
    "MANIFEST_SUFFIX",
    "SHARD_MAGIC",
    "SHARD_FORMAT",
    "SHARD_VERSION",
]

#: canonical manifest filename suffix (``open_edge_source`` keys on it)
MANIFEST_SUFFIX = ".manifest.json"

#: ``format`` field value identifying a sharded edge-file manifest
SHARD_FORMAT = "repro-sharded-edges"

#: manifest (and framed-shard header) version this build writes
SHARD_VERSION = 1

#: magic bytes opening a framed (compressed) shard file
SHARD_MAGIC = b"RSHD"

#: decoded blocks each shard reader may hold ahead of the consumer
DEFAULT_SHARD_READ_AHEAD = 2

#: shards read concurrently (read-ahead beyond the one being consumed)
DEFAULT_SHARD_WORKERS = 4

_PAIR_DTYPE = np.dtype("<u4")  # shard payload: same as binary edge lists


@dataclass(frozen=True)
class ShardManifest:
    """Parsed description of one sharded edge file set.

    ``shard_paths`` are resolved against the manifest's directory, so a
    manifest travels with its shards as one relocatable directory.
    """

    path: Path
    num_edges: int
    num_vertices: int | None
    compression: str | None
    shard_paths: tuple[Path, ...]
    shard_edges: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        """Number of shard files."""
        return len(self.shard_paths)

    def total_bytes(self) -> int:
        """Bytes on disk across the manifest and every shard file."""
        return self.path.stat().st_size + sum(
            p.stat().st_size for p in self.shard_paths
        )


def is_manifest_path(path: "str | os.PathLike") -> bool:
    """True when ``path`` names a shard manifest (by suffix)."""
    name = str(path)
    return name.endswith(MANIFEST_SUFFIX) or name.endswith(".json")


def read_shard_manifest(path: "str | os.PathLike") -> ShardManifest:
    """Load and validate a shard manifest written by :class:`ShardWriter`.

    Raises :class:`~repro.errors.GraphFormatError` on anything that is
    not a well-formed ``repro-sharded-edges`` manifest whose shard files
    all exist and whose per-shard edge counts sum to the declared total.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"{path}: unreadable shard manifest: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != SHARD_FORMAT:
        found = data.get("format") if isinstance(data, dict) else None
        raise GraphFormatError(
            f"{path}: not a {SHARD_FORMAT!r} manifest (format={found!r})"
        )
    if data.get("version") != SHARD_VERSION:
        raise GraphFormatError(
            f"{path}: unsupported manifest version {data.get('version')!r} "
            f"(this build reads version {SHARD_VERSION})"
        )
    compression = data.get("compression")
    if compression is not None and compression not in _CODECS:
        raise GraphFormatError(
            f"{path}: unknown shard compression {compression!r}; "
            f"available: {', '.join(_CODECS)} (or null)"
        )
    shards = data.get("shards")
    if not isinstance(shards, list) or not shards:
        raise GraphFormatError(f"{path}: manifest lists no shards")
    shard_paths: list[Path] = []
    shard_edges: list[int] = []
    for i, entry in enumerate(shards):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("num_edges"), int)
            or entry["num_edges"] < 0
        ):
            raise GraphFormatError(
                f"{path}: shard entry {i} must carry 'path' and a "
                f"non-negative 'num_edges', got {entry!r}"
            )
        shard = (path.parent / entry["path"]).resolve()
        if not shard.exists():
            raise GraphFormatError(f"{path}: missing shard file {shard}")
        shard_paths.append(shard)
        shard_edges.append(entry["num_edges"])
    num_edges = data.get("num_edges")
    if not isinstance(num_edges, int) or num_edges != sum(shard_edges):
        raise GraphFormatError(
            f"{path}: declared num_edges={num_edges!r} does not match the "
            f"shard total {sum(shard_edges)}"
        )
    num_vertices = data.get("num_vertices")
    if num_vertices is not None and (
        not isinstance(num_vertices, int) or num_vertices < 0
    ):
        raise GraphFormatError(
            f"{path}: num_vertices must be a non-negative integer or null"
        )
    return ShardManifest(
        path=path,
        num_edges=num_edges,
        num_vertices=num_vertices,
        compression=compression,
        shard_paths=tuple(shard_paths),
        shard_edges=tuple(shard_edges),
    )


def _manifest_stem(path: Path) -> tuple[Path, str]:
    """Normalize an output path to (manifest path, shard-name stem)."""
    name = path.name
    if name.endswith(MANIFEST_SUFFIX):
        stem = name[: -len(MANIFEST_SUFFIX)]
    elif name.endswith(".json"):
        stem = name[: -len(".json")]
    else:
        stem, path = name, path.with_name(name + MANIFEST_SUFFIX)
    return path, stem


class ShardWriter:
    """Split an incoming edge stream into N shard files plus a manifest.

    Parameters
    ----------
    out_path:
        Manifest location; ``.manifest.json`` is appended when missing.
        Shard files land next to it as ``<stem>.shard-<i>.bin``.
    num_edges:
        Total edges the stream will deliver (shard boundaries are fixed
        upfront so readers can compute global edge ids per shard).
    num_shards:
        Number of contiguous shards to produce.
    compression:
        ``None`` for flat ``<u4`` pairs, ``"zlib"`` for the framed
        variant (one frame per appended sub-block).
    num_vertices:
        Optional vertex-universe size recorded in the manifest, so a
        read-back preserves trailing isolated vertices exactly like the
        in-memory path.

    The writer is a context manager; :meth:`close` writes the manifest
    and returns the parsed :class:`ShardManifest`.  Appending more or
    fewer than ``num_edges`` edges is a :class:`GraphFormatError`.
    """

    def __init__(
        self,
        out_path: "str | os.PathLike",
        num_edges: int,
        num_shards: int,
        compression: str | None = None,
        num_vertices: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if num_edges < 0:
            raise ConfigurationError(
                f"num_edges must be >= 0, got {num_edges}"
            )
        if compression is not None and compression not in _CODECS:
            raise ConfigurationError(
                f"unknown shard compression {compression!r}; "
                f"available: {', '.join(_CODECS)} (or None)"
            )
        self.path, stem = _manifest_stem(Path(out_path))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.num_edges = int(num_edges)
        self.num_shards = int(num_shards)
        self.compression = compression
        self.num_vertices = num_vertices
        base, extra = divmod(self.num_edges, self.num_shards)
        self._targets = [
            base + (1 if i < extra else 0) for i in range(self.num_shards)
        ]
        self._names = [
            f"{stem}.shard-{i:04d}.bin" for i in range(self.num_shards)
        ]
        self._shard = 0
        self._in_shard = 0
        self._written = 0
        self._fh = None
        self._closed = False
        self._manifest: ShardManifest | None = None

    def _open_next(self):
        """Open the current shard's file handle, writing its header."""
        fh = open(self.path.parent / self._names[self._shard], "wb")
        if self.compression is not None:
            fh.write(
                _HEADER.pack(SHARD_MAGIC, SHARD_VERSION,
                             _CODECS[self.compression], 0)
            )
        return fh

    def _write_block(self, block: np.ndarray) -> None:
        """Encode one sub-block (entirely within the current shard)."""
        if self.compression is None:
            block.tofile(self._fh)
        else:
            payload = zlib.compress(block.tobytes())
            self._fh.write(_FRAME.pack(len(payload), block.shape[0]))
            self._fh.write(payload)

    def append(self, pairs: np.ndarray) -> int:
        """Append a block of ``(u, v)`` pairs, splitting across shards.

        Returns the number of edges appended.  Ids must fit the uint32
        shard payload; negatives or ids >= 2**32 raise
        :class:`GraphFormatError`.
        """
        if self._closed:
            raise ValueError("append() on a closed ShardWriter")
        pairs = np.ascontiguousarray(pairs).reshape(-1, 2)
        if pairs.shape[0] == 0:
            return 0
        if pairs.dtype.kind != "u" and int(pairs.min()) < 0:
            raise GraphFormatError(
                f"{self.path}: negative vertex id in shard payload"
            )
        if int(pairs.max()) >= 2**32:
            raise GraphFormatError(
                f"{self.path}: vertex ids exceed the uint32 shard format"
            )
        if self._written + pairs.shape[0] > self.num_edges:
            raise GraphFormatError(
                f"{self.path}: stream delivered more than the declared "
                f"{self.num_edges} edges"
            )
        data = pairs.astype(_PAIR_DTYPE)
        offset = 0
        while offset < data.shape[0]:
            # Advance past exhausted shards (zero-target shards included)
            # so every shard file exists even when it holds no edges.
            while self._fh is None or self._in_shard >= self._targets[self._shard]:
                if self._fh is None:
                    self._fh = self._open_next()
                    continue
                self._fh.close()
                self._shard += 1
                self._in_shard = 0
                self._fh = self._open_next()
            room = self._targets[self._shard] - self._in_shard
            block = data[offset : offset + room]
            self._write_block(block)
            self._in_shard += block.shape[0]
            offset += block.shape[0]
        self._written += data.shape[0]
        return data.shape[0]

    def close(self) -> ShardManifest:
        """Finish trailing empty shards, write the manifest, return it."""
        if self._closed:
            return self._manifest
        if self._written != self.num_edges:
            # Leave partial shard files behind for post-mortem, but fail.
            if self._fh is not None:
                self._fh.close()
            self._closed = True
            raise GraphFormatError(
                f"{self.path}: stream delivered {self._written} of the "
                f"declared {self.num_edges} edges"
            )
        if self._fh is None:
            self._fh = self._open_next()
        # Create any remaining (necessarily empty) shard files.
        while self._shard < self.num_shards - 1:
            self._fh.close()
            self._shard += 1
            self._in_shard = 0
            self._fh = self._open_next()
        self._fh.close()
        self._fh = None
        self._closed = True
        manifest = {
            "format": SHARD_FORMAT,
            "version": SHARD_VERSION,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "compression": self.compression,
            "shards": [
                {"path": name, "num_edges": target}
                for name, target in zip(self._names, self._targets)
            ],
        }
        self.path.write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        self._manifest = read_shard_manifest(self.path)
        return self._manifest

    def abort(self) -> None:
        """Release shard handles after a failure; no manifest is written.

        Partial shard files are left behind for post-mortem, but without
        a manifest no reader will consume them.
        """
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_sharded_edges(
    source,
    out_path: "str | os.PathLike",
    num_shards: int = 4,
    compression: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ShardManifest:
    """Export any edge source as a sharded edge-file set.

    ``source`` is anything :func:`~repro.stream.reader.open_edge_source`
    accepts.  When the source cannot report its edge count upfront, one
    extra counting sweep establishes it (shard boundaries are fixed
    before any shard byte is written).  Memory stays bounded by
    ``chunk_size`` edges throughout.
    """
    from repro.stream.reader import open_edge_source

    src = open_edge_source(source, chunk_size)
    total = src.num_edges
    if total is None:
        total = sum(chunk.num_edges for chunk in src)
    with ShardWriter(
        out_path,
        num_edges=total,
        num_shards=num_shards,
        compression=compression,
        num_vertices=src.num_vertices,
    ) as writer:
        for chunk in src:
            writer.append(chunk.pairs)
    return writer.close()


def read_flat_edge_blocks(
    path: "str | os.PathLike",
    expected: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    start_edge: int = 0,
) -> Iterator[np.ndarray]:
    """Decode a flat ``<u4`` pair file in bounded ``(c, 2)`` int64 blocks.

    Reads ``expected`` edges beginning at edge ``start_edge`` (so a
    contiguous *slice* of a flat file can serve as a virtual shard).
    Validates the on-disk length upfront and every read against the
    requested count — truncation raises
    :class:`~repro.errors.GraphFormatError` naming the file.  Shared by
    :class:`ShardedEdgeSource` readers and the multi-worker processes
    (:mod:`repro.stream.workers`).
    """
    path = Path(path)
    size = path.stat().st_size
    if size < (start_edge + expected) * 8:
        raise GraphFormatError(
            f"{path}: file holds {size} bytes, expected at least "
            f"{(start_edge + expected) * 8} "
            f"({expected} edges from edge {start_edge})"
        )
    with open(path, "rb") as fh:
        if start_edge:
            fh.seek(start_edge * 8)
        done = 0
        while done < expected:
            count = min(chunk_size, expected - done)
            flat = np.fromfile(fh, dtype=_PAIR_DTYPE, count=count * 2)
            if flat.size != count * 2:
                raise GraphFormatError(
                    f"{path}: shard truncated at edge {start_edge + done} "
                    f"(read {flat.size} of {count * 2} values)"
                )
            pairs = flat.reshape(-1, 2).astype(np.int64)
            _validate_chunk(pairs, path)
            yield pairs
            done += count


def read_framed_edge_blocks(
    path: "str | os.PathLike",
    expected: int,
    compression: str,
) -> Iterator[np.ndarray]:
    """Inflate a framed (compressed) shard file frame by frame.

    Yields validated int64 ``(c, 2)`` blocks, one per frame; any header
    mismatch or truncation raises
    :class:`~repro.errors.GraphFormatError` naming the file.  Shared by
    :class:`ShardedEdgeSource` readers and the multi-worker processes.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise GraphFormatError(f"{path}: shard header truncated")
        magic, version, codec, _ = _HEADER.unpack(head)
        if (
            magic != SHARD_MAGIC
            or version != SHARD_VERSION
            or _CODEC_NAMES.get(codec) != compression
        ):
            raise GraphFormatError(
                f"{path}: shard header does not match manifest "
                f"compression={compression!r}"
            )
        done = 0
        while done < expected:
            frame = fh.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                raise GraphFormatError(
                    f"{path}: shard truncated "
                    f"({done} of {expected} edges)"
                )
            payload_bytes, count = _FRAME.unpack(frame)
            payload = fh.read(payload_bytes)
            if len(payload) < payload_bytes:
                raise GraphFormatError(
                    f"{path}: shard frame truncated "
                    f"({done} of {expected} edges)"
                )
            flat = np.frombuffer(
                zlib.decompress(payload), dtype=_PAIR_DTYPE
            )
            if flat.size != count * 2:
                raise GraphFormatError(
                    f"{path}: shard frame decodes to {flat.size} "
                    f"values, expected {count * 2}"
                )
            pairs = flat.reshape(-1, 2).astype(np.int64)
            _validate_chunk(pairs, path)
            yield pairs
            done += count
        if done != expected:
            raise GraphFormatError(
                f"{path}: shard delivered {done} of {expected} edges"
            )


#: queue sentinel marking the clean end of one shard's block stream
_SHARD_END = object()


class _ShardError:
    """Envelope carrying a shard-reader exception to the consumer."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class _LiveIteration:
    """Teardown handle for one in-flight concurrent iteration.

    Holds the stop event, per-shard queues and reader threads of a
    single ``__iter__`` call, so the iteration can be shut down both
    from the generator's ``finally`` block *and* from
    :meth:`ShardedEdgeSource.close` / :meth:`PrefetchingEdgeSource.
    close` while the generator is suspended mid-stream.
    """

    def __init__(self) -> None:
        self.stop = threading.Event()
        self.queues: dict[int, queue.Queue] = {}
        self.workers: dict[int, threading.Thread] = {}

    def shut_down(self) -> None:
        """Stop and join every reader thread; drain queues. Idempotent.

        Joining the readers closes their file handles (each thread owns
        its ``open``), so no fds outlive the call.
        """
        self.stop.set()
        for index, thread in list(self.workers.items()):
            q = self.queues[index]
            while thread.is_alive():
                try:
                    q.get_nowait()
                except queue.Empty:
                    pass
                thread.join(timeout=0.05)


class ShardedEdgeSource(EdgeChunkSource):
    """Concurrent chunked reader over a sharded edge-file set.

    One reader thread per in-flight shard decodes blocks into a bounded
    per-shard queue (``read_ahead`` blocks deep); at most ``max_workers``
    shards are in flight at once, so the reorder buffer holds at most
    ``max_workers * read_ahead`` decoded blocks.  The consumer drains
    shards strictly in manifest order and re-slices the stream to global
    ``chunk_size`` boundaries, so the emitted chunk/eid sequence is
    bit-identical to a single-file
    :class:`~repro.stream.reader.BinaryFileEdgeSource` read of the
    concatenated shards — concurrency is a pure throughput optimization.

    Each ``__iter__`` call spawns fresh workers (restartable, so
    multi-pass algorithms re-read freely); abandoning the iterator stops
    and joins them.
    """

    def __init__(
        self,
        manifest: "str | os.PathLike | ShardManifest",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        read_ahead: int = DEFAULT_SHARD_READ_AHEAD,
        max_workers: int = DEFAULT_SHARD_WORKERS,
    ) -> None:
        if not isinstance(manifest, ShardManifest):
            manifest = read_shard_manifest(manifest)
        if read_ahead < 1:
            raise ConfigurationError(
                f"read_ahead must be >= 1, got {read_ahead}"
            )
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.manifest = manifest
        self.chunk_size = _check_chunk_size(chunk_size)
        self.read_ahead = int(read_ahead)
        self.max_workers = int(max_workers)
        self._live: list[_LiveIteration] = []
        self._chunks_served = 0
        self._edges_served = 0
        self._bytes_served = 0
        self._stall_s = 0.0

    # -- shard decoding (worker side) --------------------------------------

    def _read_shard(self, index: int) -> Iterator[np.ndarray]:
        """Yield validated int64 ``(c, 2)`` blocks of one shard."""
        path = self.manifest.shard_paths[index]
        expected = self.manifest.shard_edges[index]
        if self.manifest.compression is None:
            yield from self._read_flat(path, expected)
        else:
            yield from self._read_framed(path, expected)

    def _read_flat(self, path: Path, expected: int) -> Iterator[np.ndarray]:
        """Decode a flat ``<u4`` shard in bounded blocks."""
        size = path.stat().st_size
        if size != expected * 8:
            raise GraphFormatError(
                f"{path}: shard holds {size} bytes, expected "
                f"{expected * 8} ({expected} edges per manifest)"
            )
        yield from read_flat_edge_blocks(path, expected, self.chunk_size)

    def _read_framed(self, path: Path, expected: int) -> Iterator[np.ndarray]:
        """Inflate a zlib-framed shard frame by frame."""
        yield from read_framed_edge_blocks(
            path, expected, self.manifest.compression
        )

    # -- concurrent iteration (consumer side) ------------------------------

    def __iter__(self) -> Iterator[EdgeChunk]:
        live = _LiveIteration()
        self._live.append(live)

        def _put(q: queue.Queue, item) -> bool:
            while not live.stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _worker(index: int, q: queue.Queue) -> None:
            try:
                for block in self._read_shard(index):
                    if not _put(q, block):
                        return
                _put(q, _SHARD_END)
            except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
                _put(q, _ShardError(exc))

        def _launch(index: int) -> None:
            if index in live.workers or index >= self.manifest.num_shards:
                return
            q: queue.Queue = queue.Queue(maxsize=self.read_ahead)
            t = threading.Thread(
                target=_worker, args=(index, q),
                name=f"shard-reader-{index}", daemon=True,
            )
            live.queues[index], live.workers[index] = q, t
            t.start()

        def _get(q: queue.Queue):
            # Poll so an external close() (stop set from another frame)
            # surfaces instead of blocking on a queue no reader feeds.
            stall_start = time.perf_counter()
            while True:
                try:
                    item = q.get(timeout=0.05)
                except queue.Empty:
                    if live.stop.is_set():
                        raise ValueError(
                            f"{self.describe()}: closed during iteration"
                        ) from None
                    continue
                self._stall_s += time.perf_counter() - stall_start
                return item

        buffers: list[np.ndarray] = []
        buffered = 0
        next_eid = 0

        def _emit(count: int) -> EdgeChunk:
            nonlocal buffers, buffered, next_eid
            taken: list[np.ndarray] = []
            need = count
            while need:
                head = buffers[0]
                if head.shape[0] <= need:
                    taken.append(head)
                    buffers.pop(0)
                    need -= head.shape[0]
                else:
                    taken.append(head[:need])
                    buffers[0] = head[need:]
                    need = 0
            buffered -= count
            pairs = taken[0] if len(taken) == 1 else np.vstack(taken)
            eids = np.arange(next_eid, next_eid + count, dtype=np.int64)
            next_eid += count
            self._chunks_served += 1
            self._edges_served += count
            self._bytes_served += pairs.nbytes + eids.nbytes
            return EdgeChunk(pairs=pairs, eids=eids)

        try:
            for index in range(self.manifest.num_shards):
                for ahead in range(index, index + self.max_workers):
                    _launch(ahead)
                q = live.queues[index]
                while True:
                    item = _get(q)
                    if item is _SHARD_END:
                        break
                    if isinstance(item, _ShardError):
                        raise item.exc
                    buffers.append(item)
                    buffered += item.shape[0]
                    while buffered >= self.chunk_size:
                        yield _emit(self.chunk_size)
                live.workers[index].join()
            if buffered:
                yield _emit(buffered)
        finally:
            live.shut_down()
            if live in self._live:
                self._live.remove(live)

    def close(self) -> None:
        """Stop every in-flight iteration: join reader threads, free fds.

        Safe to call mid-iteration (the regression this pins: abandoning
        a concurrent read used to rely on generator finalization to reap
        reader threads).  Resuming a closed iterator raises
        ``ValueError``; fresh ``__iter__`` calls work normally.
        Idempotent.
        """
        for live in list(self._live):
            live.shut_down()
            # Drop queued chunks and the iteration state now rather than
            # waiting for the abandoned generator to be finalized (its
            # own finally guards against the double removal).
            for q in live.queues.values():
                while True:
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
        self._live.clear()

    @property
    def num_edges(self) -> int:
        """Total edge count declared by the manifest."""
        return self.manifest.num_edges

    @property
    def num_vertices(self) -> int | None:
        """Vertex universe recorded at export time (``None`` if absent)."""
        return self.manifest.num_vertices

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        codec = self.manifest.compression or "raw"
        return (
            f"sharded {self.manifest.path} "
            f"({self.manifest.num_shards} shards, {codec}, "
            f"<= {self.max_workers} readers)"
        )

    def stats(self) -> dict[str, float]:
        """Chunks/edges/bytes served and consumer stall seconds.

        ``stall_s`` measures how long the consumer sat on the per-shard
        reorder queues — the visible cost of reader threads not keeping
        ahead of the stream.
        """
        return {
            "chunks": self._chunks_served,
            "edges": self._edges_served,
            "bytes": self._bytes_served,
            "stall_s": self._stall_s,
        }


class MmapEdgeSource(EdgeChunkSource):
    """Zero-copy chunked reader over a flat ``<u4`` binary edge list.

    Chunks are read-only uint32 *views* into an ``np.memmap`` — no
    per-chunk allocation or copy; the kernel pages data in on access.
    Every downstream consumer (scan, spill, kernels, CSR build)
    normalizes dtype per element or per block, so results are
    bit-identical to :class:`~repro.stream.reader.BinaryFileEdgeSource`
    — pinned by the equivalence tests.  Sequential (natural) order only.
    """

    def __init__(
        self, path: "str | os.PathLike", chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        self.path = Path(path)
        self.chunk_size = _check_chunk_size(chunk_size)
        size = self.path.stat().st_size
        if size % 8 != 0:
            raise GraphFormatError(
                f"{self.path}: binary edge list length {size} is not a "
                f"multiple of 8"
            )
        self._num_edges = size // 8
        self._mm: np.memmap | None = None

    def _window(self) -> np.ndarray:
        """The whole file as a read-only ``(m, 2)`` uint32 view."""
        if self._mm is None:
            # np.memmap rejects empty files; the caller never reaches
            # here with zero edges (the iterator returns early).
            self._mm = np.memmap(self.path, dtype=_PAIR_DTYPE, mode="r")
        if self._mm.size != self._num_edges * 2:
            raise GraphFormatError(
                f"{self.path}: file size changed under the mmap "
                f"({self._mm.size} values mapped, "
                f"{self._num_edges * 2} expected)"
            )
        return self._mm.reshape(-1, 2)

    def __iter__(self) -> Iterator[EdgeChunk]:
        if self._num_edges == 0:
            return
        pairs = self._window()
        for start in range(0, self._num_edges, self.chunk_size):
            block = pairs[start : start + self.chunk_size]
            _validate_chunk(block, self.path)
            eids = np.arange(
                start, start + block.shape[0], dtype=np.int64
            )
            yield EdgeChunk(pairs=block, eids=eids)

    @property
    def num_edges(self) -> int:
        """Edge count derived from the file size (pairs of uint32)."""
        return self._num_edges

    def close(self) -> None:
        """Drop the memmap so the mapping (and its fd) can be released.

        Chunks already handed out keep the map alive through their own
        references; the next ``__iter__`` re-maps lazily.  Idempotent.
        """
        self._mm = None

    def describe(self) -> str:
        """Human-readable one-line description of the source."""
        return f"mmap file {self.path}"

"""Grid: 2-D constrained hashing (GraphBuilder's stateless partitioner).

Jain et al. (GRADES'13).  Partitions are arranged in an ``r x c`` grid.
Every vertex hashes to a home cell; its *shard candidate set* is the home
row plus home column.  An edge may be placed on any cell in the
intersection of its endpoints' candidate sets — we take the pair of
crossing cells and keep the one with the lower current load.  This bounds
the replication factor of any vertex by ``r + c - 1`` while staying
stateless apart from load counters.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.dbh import hash_vertices, repair_overflow

__all__ = ["GridPartitioner", "grid_shape", "grid_cells", "grid_stream"]


def grid_shape(k: int) -> tuple[int, int]:
    """Most-square factorization ``r * c = k`` (``r <= c``)."""
    r = int(np.sqrt(k))
    while r > 1 and k % r != 0:
        r -= 1
    return r, k // r


def grid_cells(
    pairs: np.ndarray, rows: int, cols: int, salt: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Crossing candidate cells of each edge on an ``rows x cols`` grid.

    Pure elementwise function of the endpoints, so it can be evaluated
    chunk by chunk with identical results.
    """
    u, v = pairs[:, 0], pairs[:, 1]
    hu = hash_vertices(u, salt)
    hv = hash_vertices(v, salt)
    row_u = (hu % np.uint64(rows)).astype(np.int64)
    col_u = ((hu >> np.uint64(16)) % np.uint64(cols)).astype(np.int64)
    row_v = (hv % np.uint64(rows)).astype(np.int64)
    col_v = ((hv >> np.uint64(16)) % np.uint64(cols)).astype(np.int64)
    return row_u * cols + col_v, row_v * cols + col_u


def grid_stream(
    cell_a: np.ndarray,
    cell_b: np.ndarray,
    loads: np.ndarray,
    eids: np.ndarray,
    parts_out: np.ndarray,
) -> None:
    """Greedy load tie-break between candidate cells, in stream order.

    Mutates ``loads`` and fills ``parts_out[eids[i]]``; feeding chunks
    sequentially against shared ``loads`` reproduces the full-array pass.
    """
    a_list = cell_a.tolist()
    b_list = cell_b.tolist()
    for i in range(len(a_list)):
        a, b = a_list[i], b_list[i]
        p = a if loads[a] <= loads[b] else b
        parts_out[eids[i]] = p
        loads[p] += 1


class GridPartitioner(Partitioner):
    """2-D hash partitioning baseline (Table 1's stateless ``Θ(|E|)`` row)."""

    def __init__(self, alpha: float = 1.0, salt: int = 0) -> None:
        self.alpha = alpha
        self.salt = salt
        self.name = "Grid"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Assign each edge to the lighter of its two crossing cells."""
        self._require_k(graph, k)
        rows, cols = grid_shape(k)
        cell_a, cell_b = grid_cells(graph.edges, rows, cols, self.salt)
        parts = np.empty(graph.num_edges, dtype=np.int32)
        loads = np.zeros(k, dtype=np.int64)
        grid_stream(cell_a, cell_b, loads, np.arange(graph.num_edges), parts)

        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        parts = repair_overflow(parts, k, capacity)
        return PartitionAssignment(graph, k, parts)

"""Shared BSP kernels: snapshot scoring, serialized placement, delta merge.

:func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream` executes the BSP
schedule in one process; :mod:`repro.stream.workers` executes the *same*
schedule on real OS processes.  Both paths must be bit-identical, so the
numerical kernels live here and are imported by both — a score is never
computed two different ways.

The kernels mirror the scalar reference (`hdrf_scores` on a frozen
snapshot) operation for operation, so the vectorized batch results are
bitwise equal to a per-edge loop:

* :func:`score_batch_on_snapshot` — HDRF scores of a batch of edges
  against an immutable replica/load snapshot (no capacity mask; that is
  live state and belongs to the serialized owner),
* :func:`superstep_is_safe` — the deterministic fast-path predicate: if
  no partition can reach capacity within one superstep, the capacity
  mask never binds and placements are pure argmaxes over the snapshot
  scores,
* :func:`place_batch_serialized` — the slow path: per-edge argmax under
  the *live* capacity mask, mutating the live state edge by edge (what a
  serialized partition owner does near the balance bound),
* :func:`apply_batch` / :func:`apply_delta` — the barrier merge:
  replica marks OR-ed, loads summed (order-independent, so the merged
  delta can be applied vectorized on every worker's snapshot copy).

Stream construction is also shared, so the in-process oracle and the
multi-process driver agree on who owns which edges:
:func:`round_robin_streams` (the classic strided split),
:func:`contiguous_streams` (one contiguous range per worker, the virtual
sharding of a flat edge file), and :func:`shard_round_robin_streams`
(shards dealt round-robin, each worker streaming its shards in manifest
order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.partition.state import StreamingState

__all__ = [
    "FusedBatchScorer",
    "score_batch_on_snapshot",
    "superstep_is_safe",
    "place_batch_serialized",
    "apply_batch",
    "apply_delta",
    "round_robin_streams",
    "contiguous_streams",
    "shard_round_robin_streams",
]


def score_batch_on_snapshot(
    replicas: np.ndarray,
    loads: np.ndarray,
    degrees: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    lam: float,
    eps: float,
) -> np.ndarray:
    """HDRF scores of a batch against a frozen snapshot — ``(b, k)`` floats.

    ``replicas``/``loads`` are the superstep snapshot, ``degrees`` the
    exact degree array.  No capacity mask is applied: within a BSP
    superstep the hard balance bound is enforced against *live* loads by
    the serialized owner (:func:`place_batch_serialized`), never against
    the snapshot.  Each row is bitwise equal to the scalar
    ``hdrf_scores`` reference evaluated on the same snapshot.
    """
    du = degrees[us]
    dv = degrees[vs]
    total = du + dv
    # Mirror the scalar reference: theta_u = du / total if total else 0.5.
    safe_total = np.where(total > 0, total, 1)
    theta_u = np.where(total > 0, du / safe_total, 0.5)
    theta_v = 1.0 - theta_u
    coeff_u = 2.0 - theta_u
    coeff_v = 2.0 - theta_v
    scores = (
        replicas[:, us].T * coeff_u[:, None]
        + replicas[:, vs].T * coeff_v[:, None]
    )
    maxload = loads.max()
    minload = loads.min()
    bal = lam * (maxload - loads) / (eps + maxload - minload)
    return scores + bal[None, :]


class FusedBatchScorer:
    """Allocation-free HDRF batch scorer for a worker's hot loop.

    :func:`score_batch_on_snapshot` allocates a handful of temporaries
    per call; at one call per superstep across millions of supersteps
    that is most of a worker's allocator traffic.  This scorer owns two
    preallocated ``(max_batch, k)`` output buffers and evaluates the
    same expression with explicit ``out=`` ufunc calls.

    Every elementwise operation — the gathers, the two broadcast
    multiplies, the two adds, the balance term — is performed in the
    same order on the same operands as the reference, so the results
    are **bitwise identical** (the equivalence property
    ``tests/test_shared_memory_equivalence.py`` pins).  Returned rows
    alias the internal buffer: consume (or copy) them before the next
    :meth:`scores` call.
    """

    def __init__(self, k: int, max_batch: int, lam: float, eps: float
                 ) -> None:
        """Size the score buffers for batches up to ``max_batch``."""
        if k < 1 or max_batch < 1:
            raise ConfigurationError(
                f"scorer needs k/max_batch >= 1, got {k}/{max_batch}"
            )
        self.k = int(k)
        self.max_batch = int(max_batch)
        self.lam = float(lam)
        self.eps = float(eps)
        self._out = np.empty((self.max_batch, self.k), dtype=np.float64)
        self._tmp = np.empty((self.max_batch, self.k), dtype=np.float64)

    def scores(
        self,
        replicas: np.ndarray,
        loads: np.ndarray,
        degrees: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
    ) -> np.ndarray:
        """Score one batch against a frozen snapshot — a ``(b, k)`` view.

        Bitwise equal to :func:`score_batch_on_snapshot` with this
        scorer's ``lam``/``eps``; the returned array is a view into the
        reusable buffer.
        """
        b = us.shape[0]
        out = self._out[:b]
        tmp = self._tmp[:b]
        du = degrees[us]
        dv = degrees[vs]
        total = du + dv
        safe_total = np.where(total > 0, total, 1)
        theta_u = np.where(total > 0, du / safe_total, 0.5)
        theta_v = 1.0 - theta_u
        coeff_u = 2.0 - theta_u
        coeff_v = 2.0 - theta_v
        np.multiply(replicas[:, us].T, coeff_u[:, None], out=out)
        np.multiply(replicas[:, vs].T, coeff_v[:, None], out=tmp)
        np.add(out, tmp, out=out)
        maxload = loads.max()
        minload = loads.min()
        bal = self.lam * (maxload - loads) / (self.eps + maxload - minload)
        np.add(out, bal[None, :], out=out)
        return out


def superstep_is_safe(
    loads: np.ndarray, workers: int, batch: int, capacity: int
) -> bool:
    """True when no partition can hit capacity within one superstep.

    At most ``workers * batch`` edges are placed per superstep, and
    loads only grow — so if even the heaviest partition cannot reach
    ``capacity``, the live capacity mask is all-open for every placement
    and the serialized loop collapses to independent argmaxes.  The
    predicate reads only superstep-start loads (== the snapshot), so
    every worker and the coordinator compute the same value without
    communicating.
    """
    return bool(int(loads.max()) + workers * batch <= capacity)


def place_batch_serialized(
    state: StreamingState,
    us: np.ndarray,
    vs: np.ndarray,
    scores: np.ndarray,
) -> np.ndarray:
    """Place one worker's batch edge by edge under the live capacity mask.

    ``scores`` are the snapshot scores from
    :func:`score_batch_on_snapshot`; the mask uses the *live* loads (a
    real system enforces its hard bound at the serialized partition
    owner, not the snapshot).  Mutates ``state`` and returns the chosen
    partition per edge.  Raises :class:`~repro.errors.CapacityError`
    when every partition is full.
    """
    ps = np.empty(us.shape[0], dtype=np.int64)
    for i in range(us.shape[0]):
        masked = np.where(
            state.loads < state.capacity, scores[i], -np.inf
        )
        p = int(np.argmax(masked))
        if masked[p] == -np.inf:
            raise CapacityError("BSP stream: all partitions full")
        state.place(int(us[i]), int(vs[i]), p)
        ps[i] = p
    return ps


def apply_batch(
    state: StreamingState,
    us: np.ndarray,
    vs: np.ndarray,
    ps: np.ndarray,
) -> None:
    """Apply a batch of placements to live state, vectorized.

    Equivalent to calling ``state.place`` per edge: replica marks OR
    together and loads sum, so order does not matter and fancy indexing
    is exact.
    """
    state.replicas[ps, us] = True
    state.replicas[ps, vs] = True
    state.loads += np.bincount(ps, minlength=state.k)


def apply_delta(
    replicas: np.ndarray,
    loads: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    ps: np.ndarray,
) -> None:
    """Merge one superstep's placements into a snapshot copy (the barrier).

    This is the worker-side half of :func:`apply_batch`, expressed on
    bare arrays because workers hold plain snapshot copies rather than a
    :class:`~repro.partition.state.StreamingState`.
    """
    replicas[ps, us] = True
    replicas[ps, vs] = True
    loads += np.bincount(ps, minlength=loads.shape[0])


def _check_workers(workers: int) -> int:
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


def round_robin_streams(m: int, workers: int) -> list[np.ndarray]:
    """Strided edge ownership: worker ``w`` owns edges ``w, w+W, ...``.

    The split a round-robin distributed ingest layer produces, and the
    schedule :func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream` uses
    by default.
    """
    workers = _check_workers(workers)
    return [np.arange(w, m, workers) for w in range(workers)]


def contiguous_streams(m: int, workers: int) -> list[np.ndarray]:
    """One contiguous, near-equal edge range per worker.

    The virtual sharding of a flat binary edge file: the same
    ``base + 1``-then-``base`` split :class:`~repro.stream.shard.
    ShardWriter` uses for shard boundaries.
    """
    workers = _check_workers(workers)
    base, extra = divmod(int(m), workers)
    streams = []
    start = 0
    for w in range(workers):
        count = base + (1 if w < extra else 0)
        streams.append(np.arange(start, start + count))
        start += count
    return streams


def shard_round_robin_streams(
    shard_edges: "tuple[int, ...] | list[int]", workers: int
) -> list[np.ndarray]:
    """Shards dealt round-robin: worker ``w`` owns shards ``w, w+W, ...``.

    Each worker streams its shards in manifest order; edge ids are the
    global stream positions, so a stream is the concatenation of the
    owned shards' contiguous eid ranges.  One shard is read by exactly
    one worker — every byte of the manifest is read once.
    """
    workers = _check_workers(workers)
    offsets = np.concatenate(
        [[0], np.cumsum(np.asarray(shard_edges, dtype=np.int64))]
    )
    streams = []
    for w in range(workers):
        ranges = [
            np.arange(offsets[i], offsets[i + 1])
            for i in range(w, len(shard_edges), workers)
        ]
        streams.append(
            np.concatenate(ranges) if ranges else np.empty(0, dtype=np.int64)
        )
    return streams

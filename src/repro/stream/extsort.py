"""External sort: degree-ordered edge *files* in bounded memory.

In-memory experiments reorder streams via
:func:`repro.graph.ordering.edge_order`, which needs the whole edge
list.  Out-of-core, the same orderings have to be materialized as a new
edge *file*.  This module implements the classic two-phase external
merge sort:

1. **Run generation** — one chunked sweep over the source; each chunk is
   keyed (from the counting-pass degree array, ``O(n)`` memory), sorted
   stably in memory and written to a temporary *run* file of
   ``(key, eid, u, v)`` int64 records.
2. **Merge** — a k-way heap merge over buffered run readers streams the
   globally sorted sequence straight into a flat ``<u4`` binary edge
   list, the format :class:`~repro.stream.reader.BinaryFileEdgeSource`
   and :func:`repro.graph.edgelist.read_binary_edgelist` consume.

Records carry the canonical eid so ties break exactly like the stable
``np.argsort`` in ``edge_order`` — the output file's natural order
*is* ``graph.edges[edge_order(graph, order)]``, which the test suite
pins.  Memory is bounded by ``chunk_size`` edges per run plus one
``merge_buffer`` block per run during the merge.

Supported orderings are the degree-derived ones (``degree``,
``adversarial``) plus ``natural`` (a plain bounded-memory re-encode):
``random``/``bfs`` keys need global structures an external pass cannot
bound and are rejected.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, GraphFormatError
from repro.obs.tracer import get_tracer
from repro.stream.parallel_scan import scan_stats
from repro.stream.reader import DEFAULT_CHUNK_SIZE, open_edge_source
from repro.stream.scan import SourceStats

__all__ = ["external_sort_edges", "ExtSortResult", "EXTSORT_ORDERS"]

#: orderings an external pass can realize from the degree array alone
EXTSORT_ORDERS = ("natural", "degree", "adversarial")

_RUN_DTYPE = np.dtype("<i8")
_RUN_WIDTH = 4  # key, eid, u, v
_OUT_DTYPE = np.dtype("<u4")

#: records read back per run per refill during the merge
DEFAULT_MERGE_BUFFER = 1 << 14

#: maximum run files merged (and held open) at once; when run
#: generation produces more, groups are pre-merged into intermediate
#: runs so the file-descriptor usage stays bounded on huge inputs
MAX_OPEN_RUNS = 256


@dataclass(frozen=True)
class ExtSortResult:
    """Summary of one external-sort pass.

    ``path`` is the output edge file — or, when ``num_shards`` > 0, the
    shard *manifest* the sorted stream was split into.
    """

    path: Path
    order: str
    num_edges: int
    num_vertices: int
    num_runs: int
    run_bytes: int
    num_shards: int = 0
    compression: str | None = None

    def __str__(self) -> str:
        sharded = (
            f", {self.num_shards} shards" if self.num_shards else ""
        )
        return (
            f"{self.path} ({self.order} order, {self.num_edges:,} edges, "
            f"{self.num_runs} runs, {self.run_bytes:,} temp bytes"
            f"{sharded})"
        )


def _edge_keys(pairs: np.ndarray, degrees: np.ndarray, order: str) -> np.ndarray:
    """Sort key per edge, matching ``edge_order``'s key construction."""
    du = degrees[pairs[:, 0]]
    dv = degrees[pairs[:, 1]]
    if order == "degree":
        return -np.minimum(du, dv)
    if order == "adversarial":
        return np.maximum(du, dv)
    raise ConfigurationError(
        f"external sort cannot realize order {order!r}; "
        f"available: {', '.join(EXTSORT_ORDERS)}"
    )


def _write_run(
    chunk_pairs: np.ndarray,
    chunk_eids: np.ndarray,
    keys: np.ndarray,
    run_dir: Path,
    index: int,
) -> Path:
    """Sort one chunk by (key, eid) and write it as a run file."""
    # Sort on the eid as secondary key explicitly (not just a stable
    # key-only sort): shuffled/reordered sources deliver chunks whose
    # eids are permuted, and both the edge_order tie-break equivalence
    # and heapq.merge's sorted-input precondition need (key, eid) order.
    rank = np.lexsort((chunk_eids, keys))
    records = np.empty((rank.size, _RUN_WIDTH), dtype=_RUN_DTYPE)
    records[:, 0] = keys[rank]
    records[:, 1] = chunk_eids[rank]
    records[:, 2:] = chunk_pairs[rank]
    path = run_dir / f"run-{index:06d}.bin"
    with open(path, "wb") as fh:
        records.tofile(fh)
    return path


def _iter_run(path: Path, buffer_records: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(key, eid, u, v)`` tuples from a run file in bounded blocks."""
    with open(path, "rb") as fh:
        while True:
            flat = np.fromfile(
                fh, dtype=_RUN_DTYPE, count=buffer_records * _RUN_WIDTH
            )
            if flat.size == 0:
                return
            if flat.size % _RUN_WIDTH != 0:
                raise GraphFormatError(f"{path}: truncated external-sort run")
            yield from map(tuple, flat.reshape(-1, _RUN_WIDTH).tolist())


def _collapse_runs(
    runs: list[Path], run_dir: Path, merge_buffer: int, max_open: int
) -> list[Path]:
    """Pre-merge run groups until at most ``max_open`` runs remain.

    Each level merges ``max_open`` runs into one intermediate run file
    (deleting its inputs), so the final merge never holds more than
    ``max_open`` descriptors open regardless of input size.
    """
    level = 0
    while len(runs) > max_open:
        collapsed: list[Path] = []
        for g, start in enumerate(range(0, len(runs), max_open)):
            group = runs[start : start + max_open]
            if len(group) == 1:
                collapsed.append(group[0])
                continue
            target = run_dir / f"merge-{level:02d}-{g:06d}.bin"
            merged = heapq.merge(*(_iter_run(p, merge_buffer) for p in group))
            with open(target, "wb") as out:
                buf: list[tuple[int, int, int, int]] = []
                for record in merged:
                    buf.append(record)
                    if len(buf) >= merge_buffer:
                        np.asarray(buf, dtype=_RUN_DTYPE).tofile(out)
                        buf = []
                if buf:
                    np.asarray(buf, dtype=_RUN_DTYPE).tofile(out)
            for p in group:
                p.unlink()
            collapsed.append(target)
        runs = collapsed
        level += 1
    return runs


class _FlatFileSink:
    """Single-file output: flat little-endian uint32 pairs.

    The file is opened **lazily** on the first append, so a sort that
    fails during the counting scan or run generation never truncates a
    pre-existing output file.
    """

    def __init__(self, out_path: Path) -> None:
        self.path = out_path
        self._fh = None

    def append(self, pairs: np.ndarray) -> None:
        """Encode one block of ``(u, v)`` pairs."""
        if self._fh is None:
            self._fh = open(self.path, "wb")
        np.ascontiguousarray(pairs).astype(_OUT_DTYPE).tofile(self._fh)

    def close(self) -> Path:
        """Close the file (creating it for empty streams); return its path."""
        if self._fh is None:
            self._fh = open(self.path, "wb")
        self._fh.close()
        return self.path

    def abort(self) -> None:
        """Release the handle after a failure without finalizing."""
        if self._fh is not None:
            self._fh.close()


class _ShardSink:
    """Sharded output: manifest + shard files via :class:`ShardWriter`."""

    def __init__(
        self,
        out_path: Path,
        num_edges: int,
        num_vertices: int,
        num_shards: int,
        compression: str | None,
    ) -> None:
        from repro.stream.shard import ShardWriter

        self._writer = ShardWriter(
            out_path,
            num_edges=num_edges,
            num_shards=num_shards,
            compression=compression,
            num_vertices=num_vertices,
        )

    def append(self, pairs: np.ndarray) -> None:
        """Forward one block to the shard writer."""
        self._writer.append(np.ascontiguousarray(pairs))

    def close(self) -> Path:
        """Write the manifest and return its path."""
        return self._writer.close().path

    def abort(self) -> None:
        """Release shard handles after a failure (no manifest is written)."""
        self._writer.abort()


def _make_sink(
    out_path: Path,
    stats: SourceStats,
    num_shards: int | None,
    compression: str | None,
):
    """Pick the output encoding: one flat file or a sharded set."""
    if num_shards is None:
        if compression is not None:
            raise ConfigurationError(
                "compression requires sharded output (pass num_shards; "
                "the flat binary edge-list format has no framing)"
            )
        return _FlatFileSink(out_path)
    return _ShardSink(
        out_path, stats.num_edges, stats.num_vertices, num_shards, compression
    )


def external_sort_edges(
    source,
    out_path: str | os.PathLike,
    order: str = "degree",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    tmp_dir: str | os.PathLike | None = None,
    merge_buffer: int = DEFAULT_MERGE_BUFFER,
    num_shards: int | None = None,
    compression: str | None = None,
    scan_workers: int = 0,
) -> ExtSortResult:
    """Write ``source``'s edges to ``out_path`` in ``order``, out-of-core.

    ``source`` is anything :func:`~repro.stream.reader.open_edge_source`
    accepts.  The output is a flat little-endian uint32 binary edge list
    whose *natural* order realizes the requested degree-derived ordering
    — ready for :class:`~repro.stream.reader.BinaryFileEdgeSource` or the
    out-of-core drivers.  With ``num_shards`` the sorted stream is split
    into a sharded edge-file set instead (``out_path`` becomes the
    manifest; ``compression="zlib"`` selects framed shards), so
    degree-ordered files are produced pre-sharded for the concurrent
    :class:`~repro.stream.shard.ShardedEdgeSource` reader.  Peak memory
    is ``O(n + chunk_size + runs * merge_buffer)``; the full edge list
    is never resident.  With ``scan_workers > 1`` the counting pass
    (which keys the sort) runs on worker processes when the source is a
    manifest or flat binary edge file — bit-identical degrees, less
    wall-clock before the first run is written.
    """
    if order not in EXTSORT_ORDERS:
        raise ConfigurationError(
            f"external sort cannot realize order {order!r}; "
            f"available: {', '.join(EXTSORT_ORDERS)}"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if merge_buffer < 1:
        raise ConfigurationError(
            f"merge_buffer must be >= 1, got {merge_buffer}"
        )
    if num_shards is not None and num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    out_path = Path(out_path)
    if (
        isinstance(source, (str, os.PathLike))
        and Path(source).exists()
        and Path(source).resolve() == out_path.resolve()
    ):
        raise ConfigurationError(
            "external sort cannot write over its own input "
            f"({out_path}); choose a different output path"
        )
    tracer = get_tracer()
    with tracer.span(
        "extsort", order=order, source=str(source), out=str(out_path)
    ):
        src = open_edge_source(source, chunk_size)
        stats = scan_stats(source, src, scan_workers, chunk_size)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        if stats.num_vertices > 2**32:
            raise GraphFormatError(
                "vertex ids exceed the uint32 binary edge-list format"
            )
        sink = _make_sink(out_path, stats, num_shards, compression)

        try:
            if order == "natural":
                return _reencode_natural(
                    src, stats, sink, num_shards, compression
                )

            with tempfile.TemporaryDirectory(
                prefix="extsort-", dir=tmp_dir
            ) as run_dir_name:
                run_dir = Path(run_dir_name)
                runs: list[Path] = []
                with tracer.span("run_generation") as span:
                    for chunk in src:
                        if chunk.num_edges == 0:
                            continue
                        keys = _edge_keys(chunk.pairs, stats.degrees, order)
                        runs.append(
                            _write_run(
                                chunk.pairs, chunk.eids, keys, run_dir,
                                len(runs),
                            )
                        )
                        span.add("edges_scanned", chunk.num_edges)
                    run_bytes = sum(p.stat().st_size for p in runs)
                    num_runs = len(runs)
                    span.add("num_runs", num_runs)
                    span.add("run_bytes", run_bytes)
                with tracer.span("collapse_runs", max_open=MAX_OPEN_RUNS):
                    runs = _collapse_runs(
                        runs, run_dir, merge_buffer, MAX_OPEN_RUNS
                    )
                with tracer.span("merge_runs", runs=len(runs)) as span:
                    merged = heapq.merge(
                        *(_iter_run(p, merge_buffer) for p in runs)
                    )
                    written = 0
                    buf: list[tuple[int, int]] = []
                    for _key, _eid, u, v in merged:
                        buf.append((u, v))
                        if len(buf) >= chunk_size:
                            sink.append(np.asarray(buf, dtype=np.int64))
                            written += len(buf)
                            buf = []
                    if buf:
                        sink.append(np.asarray(buf, dtype=np.int64))
                        written += len(buf)
                    span.add("edges_scanned", written)
            if written != stats.num_edges:
                raise GraphFormatError(
                    f"external sort wrote {written} of {stats.num_edges} edges"
                )
            with tracer.span("finalize"):
                final_path = sink.close()
        except BaseException:
            sink.abort()
            raise
    return ExtSortResult(
        path=final_path,
        order=order,
        num_edges=stats.num_edges,
        num_vertices=stats.num_vertices,
        num_runs=num_runs,
        run_bytes=run_bytes,
        num_shards=num_shards or 0,
        compression=compression,
    )


def _reencode_natural(
    src,
    stats: SourceStats,
    sink,
    num_shards: int | None,
    compression: str | None,
) -> ExtSortResult:
    """Degenerate case: copy the stream to the sink in its existing order."""
    written = 0
    for chunk in src:
        sink.append(chunk.pairs)
        written += chunk.num_edges
    if written != stats.num_edges:
        raise GraphFormatError(
            f"external sort wrote {written} of {stats.num_edges} edges"
        )
    final_path = sink.close()
    return ExtSortResult(
        path=final_path,
        order="natural",
        num_edges=stats.num_edges,
        num_vertices=stats.num_vertices,
        num_runs=0,
        run_bytes=0,
        num_shards=num_shards or 0,
        compression=compression,
    )

"""Out-of-core HEP: chunked reading → NE++ with spill → buffered streaming.

This driver is the subsystem's reason to exist: it partitions a graph
that is *never fully resident in memory*.  The stages, all bounded by
the chunk size:

1. **Counting pass** — one chunked sweep accumulates exact degrees, the
   vertex-universe size and the edge count (HEP needs true degrees for
   the threshold and for informed streaming).
2. **Budgeting** — given ``memory_budget`` bytes, the Section 4.2 memory
   formula is evaluated per candidate ``tau`` from chunk-counted column
   entries (:func:`~repro.core.memory_model.hep_memory_bytes_from_entries`)
   and the largest fitting ``tau`` wins, mirroring
   :func:`~repro.core.tau.select_tau` without a Graph.
3. **Splitting pass** — each chunk is split against the high-degree
   mask: h2h edges are appended to a disk-backed
   :class:`~repro.stream.spill.SpillFile`, the rest accumulate into the
   pruned CSR's edge arrays.
4. **Phase one** — NE++ runs on the chunk-built CSR
   (:func:`~repro.core.ne_plus_plus.run_ne_plus_plus_on_csr`).
5. **Phase two** — the spill file is streamed back in chunks through
   informed HDRF, optionally behind a buffered scoring window
   (:mod:`repro.stream.buffered`).
6. **Metrics pass** — replication factor and balance are computed by
   chunked sweeps over the source.  The per-partition vertex covers are
   genuinely bit-packed (``k×n`` bits via
   :class:`~repro.stream.scan.PackedCover`); when even that exceeds the
   byte budget the sweep falls back to column blocks, and with
   ``metrics_workers > 1`` both this pass and the counting pass run on
   worker processes (:mod:`repro.stream.parallel_scan`) bit-identically.

With ``order="natural"`` and no buffering the result is bit-identical
to :class:`~repro.core.hep.HepPartitioner` on the same input — the
property the test suite pins for every chunk size ≥ 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hep import HepPhaseBreakdown
from repro.core.tau import DEFAULT_TAU_GRID
from repro.errors import ConfigurationError
from repro.partition.base import PartitionAssignment
from repro.stream.reader import DEFAULT_CHUNK_SIZE
from repro.stream.scan import SourceStats, scan_source

__all__ = ["OutOfCoreHep", "OutOfCoreResult", "SourceStats", "scan_source"]


@dataclass
class OutOfCoreResult:
    """Everything an out-of-core run can report without a Graph in RAM."""

    parts: np.ndarray          # (m,) int32 per-edge partition ids
    k: int
    tau: float
    num_vertices: int
    num_edges: int
    chunk_size: int
    buffer_size: int | None
    breakdown: HepPhaseBreakdown
    spill_bytes: int
    loads: np.ndarray          # (k,) final per-partition edge counts
    replication_factor: float
    edge_balance: float
    projected_memory_bytes: int | None
    runtime_s: float

    @property
    def num_unassigned(self) -> int:
        """Number of edges left without a partition (should be zero)."""
        return int((self.parts < 0).sum())

    def to_assignment(self, graph) -> PartitionAssignment:
        """Attach the parts to an in-memory Graph (tests/analysis only)."""
        return PartitionAssignment(graph, self.k, self.parts)


class OutOfCoreHep:
    """HEP under an explicit memory budget, fed by a chunked edge source.

    Parameters
    ----------
    tau:
        Degree threshold factor.  ``None`` (the default) means 10.0
        unless ``memory_budget`` is given, in which case the budget
        selects the largest fitting ``tau`` from the Section 4.4 grid.
    memory_budget:
        Byte budget for HEP's in-memory structures, evaluated with the
        Section 4.2 formula (:mod:`repro.core.memory_model`).
    chunk_size:
        Edges per I/O chunk for every pass and the spill read-back.
    buffer_size:
        Buffered-scoring window for phase two; ``None`` keeps the exact
        per-edge stream order (bit-identical to in-memory HEP).
    spill_dir:
        Directory for the h2h spill file (system temp dir by default).
    spill_compression:
        ``None`` for the raw spill format, ``"zlib"`` for compressed
        frames (see :mod:`repro.stream.spill`) — smaller disk footprint
        for CPU spent inflating on read-back.
    prefetch:
        When > 0, wrap the source in a
        :class:`~repro.stream.reader.PrefetchingEdgeSource` holding at
        most this many decoded chunks ahead of each pass's consumer.
    mmap:
        Serve chunks from a zero-copy
        :class:`~repro.stream.shard.MmapEdgeSource` when the source is
        a flat binary edge file (bit-identical results, fewer copies).
    order, seed:
        Chunk order for sources that support reordering.
    metrics_workers:
        When > 1 and the source is a shard manifest or flat binary edge
        file, the counting and metrics passes run on this many worker
        processes (:mod:`repro.stream.parallel_scan`), bit-identically
        to the sequential sweeps.  ``memory_budget`` additionally
        bounds the metrics cover itself (column-blocked sweeps when the
        ``k x n``-bit cover would not fit).
    """

    def __init__(
        self,
        tau: float | None = None,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        buffer_size: int | None = None,
        spill_dir: str | None = None,
        spill_compression: str | None = None,
        memory_budget: int | None = None,
        tau_grid: tuple[float, ...] = DEFAULT_TAU_GRID,
        id_bytes: int = 4,
        order: str = "natural",
        seed: int = 0,
        prefetch: int = 0,
        mmap: bool = False,
        metrics_workers: int = 0,
    ) -> None:
        if tau is not None and tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if memory_budget is not None and memory_budget < 1:
            raise ConfigurationError(
                f"memory_budget must be positive, got {memory_budget}"
            )
        if metrics_workers < 0:
            raise ConfigurationError(
                f"metrics_workers must be >= 0, got {metrics_workers}"
            )
        self.tau = tau
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.chunk_size = int(chunk_size)
        self.buffer_size = buffer_size
        self.spill_dir = spill_dir
        self.spill_compression = spill_compression
        self.prefetch = int(prefetch)
        self.mmap = bool(mmap)
        self.metrics_workers = int(metrics_workers)
        self.memory_budget = memory_budget
        self.tau_grid = tau_grid
        self.id_bytes = id_bytes
        self.order = order
        self.seed = seed
        self.last_result: OutOfCoreResult | None = None
        self.name = "HEP-ooc"

    # -- driver ------------------------------------------------------------

    def _job_spec(self, source, k: int):
        """Lower the constructor knobs to a runtime JobSpec.

        ``shared_memory=False`` preserves this driver's historical scan
        behavior (sequential sweeps or cold per-pass pools — no warm
        pool);  :class:`~repro.stream.workers.MultiWorkerHep` overrides
        the execution-shape fields on top of this spec.
        """
        from repro.runtime.spec import InputSpec, JobSpec

        return JobSpec(
            algo="HEP",
            k=int(k),
            input=InputSpec.from_source(
                source, chunk_size=self.chunk_size, order=self.order,
                seed=self.seed, prefetch=self.prefetch, mmap=self.mmap,
            ),
            algo_params=(("eps", self.eps), ("lam", self.lam)),
            alpha=self.alpha,
            seed=self.seed,
            tau=self.tau,
            memory_budget=self.memory_budget,
            tau_grid=tuple(self.tau_grid),
            id_bytes=self.id_bytes,
            buffer_size=self.buffer_size,
            spill_dir=self.spill_dir,
            spill_compression=self.spill_compression,
            metrics_workers=self.metrics_workers,
            shared_memory=False,
            mp_context=getattr(self, "mp_context", None),
        )

    def _absorb(self, outcome) -> None:
        """Hook: pick extra fields off the runtime result (subclasses)."""

    def partition(self, source, k: int) -> OutOfCoreResult:
        """Run the full pipeline; ``source`` is anything
        :func:`~repro.stream.reader.open_edge_source` accepts.

        Since PR 8 this is a thin shim over
        :func:`repro.runtime.api.run_job`: the constructor knobs become
        a :class:`~repro.runtime.spec.JobSpec`, the runtime executes the
        planned ``count -> select_tau -> split -> phase_one -> stream ->
        metrics`` stages, and the unified result converts back to the
        historical :class:`OutOfCoreResult` — pinned bit-identical to
        the pre-runtime pipeline by the equivalence suites.
        """
        # Deferred: repro.runtime.api pulls in the executor/stage layers,
        # which this module must not require at import time.
        from repro.runtime.api import run_job

        outcome = run_job(self._job_spec(source, k), source=source)
        self._absorb(outcome)
        result = outcome.to_out_of_core()
        self.last_result = result
        return result

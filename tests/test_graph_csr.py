"""Tests for the CSR representation, pruning, and lazy removal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, CsrGraph, build_pruned_csr, high_degree_mask, split_edges


def paper_figure4_graph() -> Graph:
    """The 9-vertex, 11-edge example of the paper's Figure 4.

    Adjacencies in the figure: v0:{5,7}, v1:{4,5}, v2:{4}, v3:{4},
    v4:{1,2,3,5}, v5:{0,1,4,7,8}, v6:{8}, v7:{0,5,8}, v8:{5,6,7}.
    """
    edges = [
        (0, 5), (0, 7),
        (1, 4), (1, 5),
        (2, 4),
        (3, 4),
        (4, 5),
        (5, 7), (5, 8),
        (6, 8),
        (7, 8),
    ]
    return Graph.from_edges(edges, num_vertices=9, name="fig4")


class TestUnprunedBuild:
    def test_every_edge_twice(self):
        g = paper_figure4_graph()
        csr = CsrGraph.build(g)
        assert csr.col.size == 2 * g.num_edges  # 22 entries, as the figure
        counts = np.bincount(csr.eid, minlength=g.num_edges)
        assert (counts == 2).all()

    def test_out_in_split_orientation(self):
        g = Graph.from_edges([(0, 1), (2, 0)], num_vertices=3)
        csr = CsrGraph.build(g)
        out0, _ = csr.out_view(0)
        in0, _ = csr.in_view(0)
        assert out0.tolist() == [1]   # edge (0,1) is an out-edge of 0
        assert in0.tolist() == [2]    # edge (2,0) is an in-edge of 0

    def test_degrees_match_adjacency(self):
        g = paper_figure4_graph()
        csr = CsrGraph.build(g)
        for v in range(g.num_vertices):
            assert csr.valid_degree(v) == g.degrees[v]
            assert sorted(csr.neighbors(v).tolist()) == sorted(
                set(np.concatenate([
                    g.edges[g.edges[:, 0] == v][:, 1],
                    g.edges[g.edges[:, 1] == v][:, 0],
                ]).tolist())
            )

    def test_invariants(self):
        csr = CsrGraph.build(paper_figure4_graph())
        csr.check_invariants()

    def test_empty_graph(self):
        g = Graph.from_edges(np.empty((0, 2)), num_vertices=3)
        csr = CsrGraph.build(g)
        assert csr.col.size == 0
        assert csr.valid_degree(0) == 0

    def test_h2h_empty_when_unpruned(self):
        csr = CsrGraph.build(paper_figure4_graph())
        assert csr.h2h_edges.num_edges == 0
        assert not csr.is_pruned


class TestPrunedBuild:
    def test_figure4_pruning(self):
        """At tau=1.5 (threshold 3.67), v4 and v5 are high-degree; edge
        (4,5) goes external and the column array shrinks from 22 to 13."""
        g = paper_figure4_graph()
        mask = high_degree_mask(g, tau=1.5)
        assert np.flatnonzero(mask).tolist() == [4, 5]
        csr = CsrGraph.build(g, high_mask=mask)
        assert csr.col.size == 13
        assert csr.h2h_edges.num_edges == 1
        assert csr.h2h_edges.pairs.tolist() == [[4, 5]]
        # High-degree vertices have no lists at all.
        assert csr.valid_degree(4) == 0
        assert csr.valid_degree(5) == 0
        # Full degrees retain the pruned edges.
        assert csr.degrees[4] == 4 and csr.degrees[5] == 5
        csr.check_invariants()

    def test_low_high_edges_once_from_low_side(self):
        g = paper_figure4_graph()
        csr = build_pruned_csr(g, tau=1.5)
        counts = np.bincount(csr.eid, minlength=g.num_edges)
        u, v = g.edges[:, 0], g.edges[:, 1]
        mask = csr.high_mask
        expect = np.where(
            mask[u] & mask[v], 0, np.where(mask[u] | mask[v], 1, 2)
        )
        assert counts.tolist() == expect.tolist()

    def test_csr_edges_accounting(self):
        g = paper_figure4_graph()
        csr = build_pruned_csr(g, tau=1.5)
        assert csr.num_csr_edges == g.num_edges - 1
        assert csr.num_edges_total == g.num_edges

    def test_tau_inf_equals_unpruned(self):
        g = paper_figure4_graph()
        csr = build_pruned_csr(g, tau=1e9)
        assert not csr.is_pruned
        assert csr.col.size == 2 * g.num_edges


class TestEdgeSplit:
    def test_split_monotone_in_tau(self):
        g = paper_figure4_graph()
        fractions = [split_edges(g, tau).h2h_fraction() for tau in (0.5, 1.0, 1.5, 3.0)]
        assert fractions == sorted(fractions, reverse=True)

    def test_split_partitions_edges(self):
        g = paper_figure4_graph()
        split = split_edges(g, tau=1.0)
        assert split.h2h_mask.shape == (g.num_edges,)
        assert split.num_h2h_edges + int((~split.h2h_mask).sum()) == g.num_edges

    def test_tau_zero_rejected(self):
        with pytest.raises(Exception):
            split_edges(paper_figure4_graph(), tau=0)


class TestRemoval:
    def test_remove_marked_basic(self):
        g = paper_figure4_graph()
        csr = CsrGraph.build(g)
        marked = np.zeros(9, dtype=bool)
        marked[[5, 7]] = True
        removed = csr.remove_marked(0, marked)
        assert removed == 2
        assert csr.valid_degree(0) == 0
        csr.check_invariants()

    def test_remove_marked_partial(self):
        g = paper_figure4_graph()
        csr = CsrGraph.build(g)
        marked = np.zeros(9, dtype=bool)
        marked[0] = True
        removed = csr.remove_marked(5, marked)   # only edge (0,5)
        assert removed == 1
        assert 0 not in csr.neighbors(5).tolist()
        assert csr.valid_degree(5) == 4
        csr.check_invariants()

    def test_remove_marked_nothing(self):
        csr = CsrGraph.build(paper_figure4_graph())
        marked = np.zeros(9, dtype=bool)
        assert csr.remove_marked(4, marked) == 0
        assert csr.valid_degree(4) == 4

    def test_remove_edge_entry(self):
        g = Graph.from_edges([(0, 1), (0, 2)], num_vertices=3)
        csr = CsrGraph.build(g)
        eid01 = int(csr.eid[csr.out_start[0]:][0])
        assert csr.remove_edge_entry(0, 1, 0)
        assert csr.valid_degree(0) == 1
        assert not csr.remove_edge_entry(0, 1, 0)  # already gone from 0's side
        assert csr.remove_edge_entry(1, 0, 0)
        assert csr.valid_degree(1) == 0
        csr.check_invariants()
        assert eid01 == 0

    def test_removal_does_not_touch_other_windows(self):
        g = paper_figure4_graph()
        csr = CsrGraph.build(g)
        before = {v: sorted(csr.neighbors(v).tolist()) for v in range(9) if v != 5}
        marked = np.zeros(9, dtype=bool)
        marked[:] = True
        csr.remove_marked(5, marked)
        assert csr.valid_degree(5) == 0
        after = {v: sorted(csr.neighbors(v).tolist()) for v in range(9) if v != 5}
        assert before == after


@st.composite
def random_graph(draw, max_n=24, max_m=80):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    return Graph.from_edges(np.asarray(edges, dtype=np.int64).reshape(-1, 2), n)


@settings(max_examples=60, deadline=None)
@given(g=random_graph(), tau=st.floats(0.25, 8.0))
def test_pruned_csr_properties(g, tau):
    """Property: pruned CSR + h2h externals account for every edge exactly
    once, with entry multiplicity determined by endpoint classes."""
    csr = build_pruned_csr(g, tau)
    csr.check_invariants()
    counts = np.bincount(csr.eid, minlength=g.num_edges) if csr.eid.size else (
        np.zeros(g.num_edges, dtype=np.int64)
    )
    mask = csr.high_mask
    for e, (u, v) in enumerate(g.edges.tolist()):
        if mask[u] and mask[v]:
            assert counts[e] == 0
        elif mask[u] or mask[v]:
            assert counts[e] == 1
        else:
            assert counts[e] == 2
    assert set(csr.h2h_edges.eids.tolist()) == {
        e for e, (u, v) in enumerate(g.edges.tolist()) if mask[u] and mask[v]
    }


@settings(max_examples=40, deadline=None)
@given(g=random_graph(max_n=12, max_m=40), data=st.data())
def test_remove_marked_property(g, data):
    """Property: remove_marked removes exactly the flagged neighbors and
    preserves everything else."""
    csr = CsrGraph.build(g)
    v = data.draw(st.integers(0, g.num_vertices - 1))
    flags = data.draw(
        st.lists(st.booleans(), min_size=g.num_vertices, max_size=g.num_vertices)
    )
    marked = np.asarray(flags, dtype=bool)
    before = csr.neighbors(v).tolist()
    removed = csr.remove_marked(v, marked)
    after = csr.neighbors(v).tolist()
    assert removed == sum(1 for u in before if marked[u])
    assert sorted(after) == sorted(u for u in before if not marked[u])
    csr.check_invariants()

"""Bench: extensions — hybrid hypergraph partitioning and restreaming."""

from repro.experiments import extensions


def bench_extensions(benchmark, record_experiment):
    result = benchmark.pedantic(extensions.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    assert any("clustered hypergraph: True" in n for n in result.notes)
    assert any("HEP still ahead" in n and "True" in n for n in result.notes)

"""Figure 2: vertex degree vs. replication factor (HDRF and NE, k=32).

The motivating measurement of the paper: both a streaming and an
in-memory partitioner replicate high-degree vertices far more than
low-degree ones, while most vertices are low-degree — which is why HEP
can afford to push high/high edges to the streaming phase.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, load_dataset
from repro.experiments.paper_reference import SHAPES
from repro.graph.stats import bucket_labels
from repro.metrics import rf_by_degree_bucket
from repro.partition import HdrfPartitioner, NePartitioner

__all__ = ["run"]


def run(graphs: tuple[str, ...] = ("LJ", "WI"), k: int = 32) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for name in graphs:
        graph = load_dataset(name)
        for label, partitioner in (
            ("HDRF", HdrfPartitioner()),
            ("NE", NePartitioner()),
        ):
            assignment = partitioner.partition(graph, k)
            fractions, mean_rf, buckets = rf_by_degree_bucket(assignment)
            labels = bucket_labels(len(buckets))
            for b in buckets.tolist():
                if fractions[b] == 0:
                    continue
                rows.append(
                    {
                        "graph": name,
                        "partitioner": label,
                        "degree_range": labels[b],
                        "vertex_fraction": round(float(fractions[b]), 4),
                        "mean_RF": round(float(mean_rf[b]), 3),
                    }
                )
    result = ExperimentResult(
        experiment_id="figure2",
        title=f"Degree vs. replication factor (k={k})",
        rows=rows,
        paper_shape=SHAPES["figure2"],
    )
    _append_shape_notes(result)
    return result


def _append_shape_notes(result: ExperimentResult) -> None:
    """Check the two claims of the figure on the measured rows."""
    by_key: dict[tuple[str, str], list[dict[str, object]]] = {}
    for row in result.rows:
        by_key.setdefault((str(row["graph"]), str(row["partitioner"])), []).append(row)
    for (graph, partitioner), rows in by_key.items():
        rf_values = [float(r["mean_RF"]) for r in rows]
        growing = all(b >= a * 0.8 for a, b in zip(rf_values, rf_values[1:]))
        low_bucket_share = float(rows[0]["vertex_fraction"])
        result.notes.append(
            f"{graph}/{partitioner}: RF rises with degree={growing}, "
            f"lowest-bucket vertex share={low_bucket_share:.2f}"
        )

"""Replication factor — the paper's primary quality metric.

    RF(p_1..p_k) = (1 / |V|) * sum_i |V(p_i)|

where ``V(p_i)`` is the set of vertices covered by the edges of partition
``p_i``.  We normalize by the number of *covered* vertices (degree >= 1):
generators may leave isolated ids in the universe, and an isolated vertex
is never replicated by any partitioner, so including it would only dilute
comparisons (real edge-list datasets have no isolated vertices at all).
"""

from __future__ import annotations

import numpy as np

from repro.graph.stats import degree_buckets
from repro.partition.base import PartitionAssignment

__all__ = [
    "replication_factor",
    "replicas_per_vertex",
    "rf_by_degree_bucket",
]


def replicas_per_vertex(assignment: PartitionAssignment) -> np.ndarray:
    """Number of partitions covering each vertex (0 for uncovered)."""
    return assignment.cover_matrix().sum(axis=0).astype(np.int64)


def replication_factor(assignment: PartitionAssignment) -> float:
    """Mean number of replicas per covered vertex."""
    replicas = replicas_per_vertex(assignment)
    covered = assignment.graph.degrees > 0
    n = int(covered.sum())
    if n == 0:
        return 0.0
    return float(replicas[covered].sum() / n)


def rf_by_degree_bucket(
    assignment: PartitionAssignment,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 2's series: per decade degree bucket ([1,10], [11,100], ...)
    return ``(vertex_fraction, mean_rf, bucket_ids)``.

    ``vertex_fraction`` is the share of covered vertices in the bucket,
    ``mean_rf`` the average replica count of those vertices.
    """
    degrees = assignment.graph.degrees
    buckets = degree_buckets(degrees)
    replicas = replicas_per_vertex(assignment)
    covered = buckets >= 0
    num_buckets = int(buckets.max()) + 1 if covered.any() else 0
    fractions = np.zeros(num_buckets)
    mean_rf = np.zeros(num_buckets)
    total = int(covered.sum())
    for b in range(num_buckets):
        members = buckets == b
        count = int(members.sum())
        if count == 0:
            continue
        fractions[b] = count / total
        mean_rf[b] = float(replicas[members].mean())
    return fractions, mean_rf, np.arange(num_buckets)

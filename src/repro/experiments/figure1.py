"""Figure 1: edge partitioning (vertex cut) vs vertex partitioning (edge cut).

The paper opens with a star graph split two ways: the vertex cut
replicates only the hub (cut size 1), the edge cut severs three edges
(cut size 3).  Bourse et al. proved vertex cuts are smaller than edge
cuts on power-law graphs; this experiment measures both cut types on
the motivating star and on the stand-in corpus:

* vertex cut size  = total replicas beyond one per vertex
  (``(RF - 1) * |V|``), from an edge partitioner (NE);
* edge cut size    = edges crossing a balanced k-way *vertex* partition,
  from the multilevel vertex partitioner.

Both numbers are the communication volume proxy of the respective
paradigm, so their ratio is the figure's claim in measurable form.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, load_dataset
from repro.graph.generators import star
from repro.metrics import replicas_per_vertex
from repro.partition import NePartitioner
from repro.partition.metis import partition_vertices_kway

__all__ = ["run"]


def _vertex_cut_size(graph, k: int) -> int:
    """Replicas beyond the first, summed over vertices (edge partitioning)."""
    assignment = NePartitioner().partition(graph, k)
    replicas = replicas_per_vertex(assignment)
    covered = replicas > 0
    return int((replicas[covered] - 1).sum())


def _edge_cut_size(graph, k: int) -> int:
    """Edges crossing a k-way vertex partition (vertex partitioning)."""
    vparts = partition_vertices_kway(graph, k)
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    return int((vparts[u] != vparts[v]).sum())


def run(graphs: tuple[str, ...] = ("LJ", "TW", "WI"), k: int = 2) -> ExperimentResult:
    rows: list[dict[str, object]] = []

    # The paper's own example: a 7-vertex star at k=2.
    example = star(7, name="star7")
    rows.append(
        {
            "graph": "star7 (Fig 1)",
            "k": 2,
            "vertex_cut(edge part.)": _vertex_cut_size(example, 2),
            "edge_cut(vertex part.)": _edge_cut_size(example, 2),
        }
    )

    for name in graphs:
        graph = load_dataset(name)
        rows.append(
            {
                "graph": name,
                "k": k,
                "vertex_cut(edge part.)": _vertex_cut_size(graph, k),
                "edge_cut(vertex part.)": _edge_cut_size(graph, k),
            }
        )
    result = ExperimentResult(
        experiment_id="figure1",
        title="Edge partitioning (vertex cut) vs vertex partitioning (edge cut)",
        rows=rows,
        paper_shape="vertex cuts are smaller than edge cuts on power-law"
        " graphs (Figure 1: star cut 1 vs 3; Bourse et al.)",
    )
    wins = [
        r for r in rows
        if int(r["vertex_cut(edge part.)"]) < int(r["edge_cut(vertex part.)"])
    ]
    result.notes.append(
        f"vertex cut smaller on {len(wins)}/{len(rows)} graphs "
        f"(power-law inputs; the star example must win by construction)"
    )
    return result

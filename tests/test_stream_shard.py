"""Sharded edge files: manifest IO, concurrent reorder, mmap, equivalence."""

import json
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph import Graph, generators, write_binary_edgelist
from repro.partition import HdrfPartitioner
from repro.stream import (
    BinaryFileEdgeSource,
    InMemoryEdgeSource,
    MmapEdgeSource,
    OutOfCoreHep,
    PrefetchingEdgeSource,
    ShardedEdgeSource,
    ShardWriter,
    StreamingPartitionerDriver,
    open_edge_source,
    read_shard_manifest,
    write_sharded_edges,
)
from strategies import graphs


@pytest.fixture(scope="module")
def skewed_graph():
    return generators.chung_lu(400, mean_degree=6, exponent=2.1, seed=11)


@pytest.fixture()
def small_graph():
    return Graph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)], num_vertices=6
    )


def _chunks(source):
    return [(c.pairs.copy(), c.eids.copy()) for c in source]


def _assert_same_stream(got, expected):
    assert len(got) == len(expected), "chunk boundaries differ"
    for (gp, ge), (ep, ee) in zip(got, expected):
        assert np.array_equal(np.asarray(gp, dtype=np.int64), ep)
        assert np.array_equal(ge, ee)


class TestManifestIO:
    def test_roundtrip_metadata(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=3
        )
        loaded = read_shard_manifest(manifest.path)
        assert loaded.num_edges == small_graph.num_edges
        assert loaded.num_vertices == small_graph.num_vertices
        assert loaded.num_shards == 3
        assert loaded.compression is None
        assert sum(loaded.shard_edges) == loaded.num_edges
        for shard in loaded.shard_paths:
            assert shard.exists()

    def test_suffix_appended_when_missing(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "plain-name", num_shards=2
        )
        assert manifest.path.name == "plain-name.manifest.json"

    def test_not_a_manifest_rejected(self, tmp_path):
        path = tmp_path / "bogus.manifest.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphFormatError):
            read_shard_manifest(path)

    def test_unreadable_json_rejected(self, tmp_path):
        path = tmp_path / "bad.manifest.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_shard_manifest(path)

    def test_future_version_rejected(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        data = json.loads(manifest.path.read_text())
        data["version"] = 99
        manifest.path.write_text(json.dumps(data))
        with pytest.raises(GraphFormatError, match="version"):
            read_shard_manifest(manifest.path)

    def test_missing_shard_rejected(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        manifest.shard_paths[1].unlink()
        with pytest.raises(GraphFormatError, match="missing shard"):
            read_shard_manifest(manifest.path)

    def test_count_mismatch_rejected(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        data = json.loads(manifest.path.read_text())
        data["num_edges"] += 1
        manifest.path.write_text(json.dumps(data))
        with pytest.raises(GraphFormatError, match="num_edges"):
            read_shard_manifest(manifest.path)


class TestShardWriter:
    def test_under_delivery_rejected(self, tmp_path):
        writer = ShardWriter(
            tmp_path / "g.manifest.json", num_edges=10, num_shards=2
        )
        writer.append(np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphFormatError, match="2 of the declared 10"):
            writer.close()

    def test_over_delivery_rejected(self, tmp_path):
        writer = ShardWriter(
            tmp_path / "g.manifest.json", num_edges=1, num_shards=1
        )
        with pytest.raises(GraphFormatError, match="more than"):
            writer.append(np.array([[0, 1], [1, 2]]))

    def test_negative_id_rejected(self, tmp_path):
        writer = ShardWriter(
            tmp_path / "g.manifest.json", num_edges=1, num_shards=1
        )
        with pytest.raises(GraphFormatError, match="negative"):
            writer.append(np.array([[-1, 2]]))

    def test_oversized_id_rejected(self, tmp_path):
        writer = ShardWriter(
            tmp_path / "g.manifest.json", num_edges=1, num_shards=1
        )
        with pytest.raises(GraphFormatError, match="uint32"):
            writer.append(np.array([[2**32, 2]]))

    def test_more_shards_than_edges(self, tmp_path):
        # 2 edges over 5 shards: trailing shards exist and hold 0 edges.
        with ShardWriter(
            tmp_path / "g.manifest.json", num_edges=2, num_shards=5
        ) as writer:
            writer.append(np.array([[0, 1], [1, 2]]))
        manifest = writer.close()
        assert manifest.num_shards == 5
        assert manifest.shard_edges == (1, 1, 0, 0, 0)
        got = np.vstack([c.pairs for c in ShardedEdgeSource(manifest, 10)])
        assert got.tolist() == [[0, 1], [1, 2]]

    def test_bad_configs_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardWriter(tmp_path / "g", num_edges=1, num_shards=0)
        with pytest.raises(ConfigurationError):
            ShardWriter(tmp_path / "g", num_edges=-1, num_shards=1)
        with pytest.raises(ConfigurationError):
            ShardWriter(
                tmp_path / "g", num_edges=1, num_shards=1, compression="lz77"
            )


class TestShardedEdgeSource:
    """Acceptance: sharded read ≡ single-file read, bit for bit."""

    @pytest.mark.parametrize("compression", [None, "zlib"])
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 10_000])
    def test_identical_to_single_file(
        self, skewed_graph, tmp_path, chunk_size, compression
    ):
        binpath = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, binpath)
        manifest = write_sharded_edges(
            binpath, tmp_path / "g.manifest.json", num_shards=4,
            compression=compression, chunk_size=53,
        )
        expected = _chunks(BinaryFileEdgeSource(binpath, chunk_size))
        got = _chunks(ShardedEdgeSource(manifest, chunk_size))
        _assert_same_stream(got, expected)

    def test_restartable_multi_pass(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=3
        )
        src = ShardedEdgeSource(manifest, 97)
        a, b, c = _chunks(src), _chunks(src), _chunks(src)
        _assert_same_stream(a, b)
        _assert_same_stream(a, c)

    def test_metadata(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        src = ShardedEdgeSource(manifest, 64)
        assert src.num_edges == skewed_graph.num_edges
        assert src.num_vertices == skewed_graph.num_vertices
        assert "shards" in src.describe()

    def test_worker_cap_still_identical(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=6
        )
        narrow = _chunks(ShardedEdgeSource(manifest, 64, max_workers=1))
        wide = _chunks(ShardedEdgeSource(manifest, 64, max_workers=6))
        _assert_same_stream(narrow, wide)

    def test_truncated_shard_raises(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        shard = manifest.shard_paths[1]
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(GraphFormatError, match=shard.name):
            _chunks(ShardedEdgeSource(manifest, 64))

    def test_truncated_compressed_shard_raises(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=2,
            compression="zlib",
        )
        shard = manifest.shard_paths[0]
        shard.write_bytes(shard.read_bytes()[:-4])
        with pytest.raises(GraphFormatError):
            _chunks(ShardedEdgeSource(manifest, 64))

    def test_abandoned_iteration_reaps_workers(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=4
        )
        src = ShardedEdgeSource(manifest, 8)
        before = threading.active_count()
        for _ in range(5):
            for chunk in src:
                break  # abandon immediately
        assert threading.active_count() <= before + 1

    def test_self_loop_in_shard_rejected(self, tmp_path):
        with ShardWriter(
            tmp_path / "g.manifest.json", num_edges=2, num_shards=1
        ) as writer:
            writer.append(np.array([[0, 1], [2, 2]]))
        with pytest.raises(GraphFormatError, match="self-loop"):
            _chunks(ShardedEdgeSource(writer.close(), 10))

    def test_prefetch_wrapper_composes(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=3
        )
        plain = _chunks(ShardedEdgeSource(manifest, 64))
        wrapped = _chunks(
            PrefetchingEdgeSource(ShardedEdgeSource(manifest, 64), depth=2)
        )
        _assert_same_stream(wrapped, plain)

    def test_bad_configs_rejected(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        with pytest.raises(ConfigurationError):
            ShardedEdgeSource(manifest, 64, read_ahead=0)
        with pytest.raises(ConfigurationError):
            ShardedEdgeSource(manifest, 64, max_workers=0)
        with pytest.raises(ConfigurationError):
            ShardedEdgeSource(manifest, 0)


class TestMmapEdgeSource:
    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_matches_binary_reader(self, skewed_graph, tmp_path, chunk_size):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        expected = _chunks(BinaryFileEdgeSource(path, chunk_size))
        got = _chunks(MmapEdgeSource(path, chunk_size))
        _assert_same_stream(got, expected)

    def test_chunks_are_zero_copy_views(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        for chunk in MmapEdgeSource(path, 64):
            assert chunk.pairs.base is not None  # a view, not a copy
            assert chunk.pairs.dtype == np.dtype("<u4")
            break

    def test_restartable(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        src = MmapEdgeSource(path, 77)
        _assert_same_stream(_chunks(src), _chunks(src))

    def test_odd_length_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"\x00" * 12)
        with pytest.raises(GraphFormatError):
            MmapEdgeSource(path, 10)

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"")
        assert _chunks(MmapEdgeSource(path, 10)) == []

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        np.array([[0, 1], [2, 2]], dtype="<u4").tofile(path)
        with pytest.raises(GraphFormatError, match="self-loop"):
            _chunks(MmapEdgeSource(path, 10))


class TestRoundTripProperty:
    """Hypothesis: export → sharded/compressed/mmap ≡ in-memory stream."""

    @settings(max_examples=20, deadline=None)
    @given(
        graph=graphs(min_edges=1, max_edges=60, max_vertices=16),
        chunk_size=st.integers(min_value=1, max_value=64),
        num_shards=st.integers(min_value=1, max_value=5),
        compression=st.sampled_from([None, "zlib"]),
    )
    def test_sharded_roundtrip(self, graph, chunk_size, num_shards, compression):
        expected = _chunks(InMemoryEdgeSource(graph, chunk_size))
        with tempfile.TemporaryDirectory() as tmp:
            manifest = write_sharded_edges(
                graph, Path(tmp) / "g.manifest.json",
                num_shards=num_shards, compression=compression,
                chunk_size=17,
            )
            got = _chunks(ShardedEdgeSource(manifest, chunk_size))
        _assert_same_stream(got, expected)

    @settings(max_examples=20, deadline=None)
    @given(
        graph=graphs(min_edges=1, max_edges=60, max_vertices=16),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    def test_mmap_roundtrip(self, graph, chunk_size):
        expected = _chunks(InMemoryEdgeSource(graph, chunk_size))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.bin"
            write_binary_edgelist(graph, path)
            got = _chunks(MmapEdgeSource(path, chunk_size))
            _assert_same_stream(got, expected)


class TestDriverEquivalence:
    """Acceptance: partitioning from a manifest ≡ the in-memory run."""

    @settings(max_examples=10, deadline=None)
    @given(
        graph=graphs(min_edges=2, max_edges=60, max_vertices=16),
        chunk_size=st.integers(min_value=1, max_value=64),
        num_shards=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=2, max_value=4),
    )
    def test_property_hdrf_sharded_identical(
        self, graph, chunk_size, num_shards, k
    ):
        expected = HdrfPartitioner().partition(graph, k)
        with tempfile.TemporaryDirectory() as tmp:
            manifest = write_sharded_edges(
                graph, Path(tmp) / "g.manifest.json", num_shards=num_shards
            )
            result = StreamingPartitionerDriver(
                "HDRF", chunk_size=chunk_size
            ).partition(str(manifest.path), k)
        assert np.array_equal(result.parts, expected.parts)

    def test_hdrf_mmap_identical(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        expected = HdrfPartitioner().partition(skewed_graph, 4)
        result = StreamingPartitionerDriver(
            "HDRF", chunk_size=97, mmap=True
        ).partition(path, 4)
        assert np.array_equal(result.parts, expected.parts)

    @pytest.mark.parametrize("compression", [None, "zlib"])
    def test_hep_over_manifest_identical(
        self, skewed_graph, tmp_path, compression
    ):
        from repro.core import HepPartitioner

        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=3,
            compression=compression,
        )
        expected = HepPartitioner(tau=1.0).partition(skewed_graph, 4)
        result = OutOfCoreHep(tau=1.0, chunk_size=101).partition(
            str(manifest.path), 4
        )
        assert np.array_equal(result.parts, expected.parts)

    def test_hep_mmap_identical(self, skewed_graph, tmp_path):
        from repro.core import HepPartitioner

        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        expected = HepPartitioner(tau=1.0).partition(skewed_graph, 4)
        result = OutOfCoreHep(tau=1.0, chunk_size=101, mmap=True).partition(
            path, 4
        )
        assert np.array_equal(result.parts, expected.parts)


class TestOpenEdgeSource:
    def test_manifest_routing(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        src = open_edge_source(manifest.path, 4)
        assert isinstance(src, ShardedEdgeSource)
        assert src.num_edges == small_graph.num_edges

    def test_mmap_routing(self, small_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(small_graph, path)
        assert isinstance(open_edge_source(path, 4, mmap=True), MmapEdgeSource)
        assert isinstance(
            open_edge_source(path, 4, mmap=False), BinaryFileEdgeSource
        )

    def test_mmap_rejected_for_manifest(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        with pytest.raises(ConfigurationError):
            open_edge_source(manifest.path, 4, mmap=True)

    def test_mmap_rejected_for_text(self, small_graph, tmp_path):
        from repro.graph import write_text_edgelist

        path = tmp_path / "g.txt"
        write_text_edgelist(small_graph, path)
        with pytest.raises(ConfigurationError):
            open_edge_source(path, 4, mmap=True)

    def test_sharded_reorder_rejected(self, small_graph, tmp_path):
        manifest = write_sharded_edges(
            small_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        with pytest.raises(ConfigurationError):
            open_edge_source(manifest.path, 4, order="shuffled")


class TestCloseMidIteration:
    """Regression: close() mid-iteration must join reader threads and
    release file handles — abandoning a concurrent read used to rely on
    generator finalization alone."""

    @staticmethod
    def _fd_count():
        import os

        return len(os.listdir("/proc/self/fd"))

    def test_close_joins_reader_threads(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=4
        )
        before_threads = set(threading.enumerate())
        before_fds = self._fd_count()
        src = ShardedEdgeSource(manifest, chunk_size=16)
        it = iter(src)
        next(it)  # reader threads now live, shard handles open
        assert any(
            t.name.startswith("shard-reader") for t in threading.enumerate()
        )
        src.close()
        assert set(threading.enumerate()) == before_threads
        assert self._fd_count() == before_fds

    def test_resuming_closed_iterator_raises(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        src = ShardedEdgeSource(manifest, chunk_size=16)
        it = iter(src)
        next(it)
        src.close()
        with pytest.raises(ValueError, match="closed during iteration"):
            for _ in it:
                pass

    def test_fresh_iteration_after_close_works(self, skewed_graph, tmp_path):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=3
        )
        src = ShardedEdgeSource(manifest, chunk_size=32)
        expected = _chunks(src)
        it = iter(src)
        next(it)
        src.close()
        _assert_same_stream(_chunks(src), expected)

    def test_close_without_iteration_and_idempotent(
        self, skewed_graph, tmp_path
    ):
        manifest = write_sharded_edges(
            skewed_graph, tmp_path / "g.manifest.json", num_shards=2
        )
        src = ShardedEdgeSource(manifest)
        src.close()
        src.close()
        it = iter(src)
        next(it)
        src.close()
        src.close()

    def test_mmap_close_releases_mapping(self, skewed_graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, path)
        src = MmapEdgeSource(path, chunk_size=64)
        next(iter(src))
        assert src._mm is not None
        src.close()
        assert src._mm is None
        # Still restartable after close.
        assert sum(c.num_edges for c in src) == skewed_graph.num_edges

"""Hypothesis strategies for property-based tests.

Re-exports the graph strategies for convenience::

    from strategies import edge_lists, graphs, power_law_graphs, bsp_schedules
"""

from strategies.graphs import bsp_schedules, edge_lists, graphs, power_law_graphs

__all__ = ["edge_lists", "graphs", "power_law_graphs", "bsp_schedules"]

"""Seeded synthetic graph generators.

The paper evaluates on crawled social networks, web graphs and one
biological graph (Table 3).  Those inputs are multi-gigabyte downloads we
do not have offline, so the experiments run on *seeded synthetic
stand-ins* whose degree structure matches each class:

* social networks -> Chung-Lu / Barabási–Albert power-law graphs
  (heavy-tailed, low locality),
* web graphs -> R-MAT and community-structured graphs (extremely skewed
  in-degree, strong link locality, partition very well),
* the brain graph -> a dense clustered proxy.

Every generator is deterministic given ``seed`` and returns a canonical
:class:`~repro.graph.edgelist.Graph` (self-loops and duplicate edges
removed).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "barabasi_albert",
    "rmat",
    "star",
    "grid2d",
    "ring",
    "community_web",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(n: int, m: int, seed: int = 0, name: str = "er") -> Graph:
    """Uniform random graph with ~``m`` distinct edges over ``n`` vertices."""
    if n < 2:
        raise ConfigurationError("erdos_renyi needs n >= 2")
    rng = _rng(seed)
    # Oversample to compensate for self-loop/duplicate removal.
    draw = int(m * 1.25) + 16
    edges = rng.integers(0, n, size=(draw, 2), dtype=np.int64)
    g = Graph.from_edges(edges, num_vertices=n, name=name)
    if g.num_edges > m:
        g = Graph(g.edges[:m], n, name=name)
    return g


def chung_lu(
    n: int,
    mean_degree: float,
    exponent: float = 2.3,
    seed: int = 0,
    name: str = "chung-lu",
) -> Graph:
    """Power-law random graph via the Chung-Lu weighted sampling model.

    Vertex ``i`` receives weight ``w_i ∝ (i + i0)^(-1/(exponent-1))``;
    endpoints of each edge are drawn independently proportional to the
    weights, which yields expected degrees following a power law with the
    given tail ``exponent`` (2.1–2.5 covers most social networks).
    """
    if n < 2 or mean_degree <= 0:
        raise ConfigurationError("chung_lu needs n >= 2 and mean_degree > 0")
    if exponent <= 1.0:
        raise ConfigurationError("power-law exponent must exceed 1")
    rng = _rng(seed)
    target_m = int(n * mean_degree / 2)
    i0 = max(1.0, n ** (1.0 / (exponent - 1.0)) * 0.01)
    weights = (np.arange(n, dtype=np.float64) + i0) ** (-1.0 / (exponent - 1.0))
    prob = weights / weights.sum()
    draw = int(target_m * 1.6) + 16
    endpoints = rng.choice(n, size=2 * draw, p=prob).reshape(-1, 2)
    # Shuffle ids so degree is uncorrelated with vertex id (real edge
    # lists are not degree-sorted; sequential seed scans must not get
    # hubs-first or hubs-last behavior for free).
    perm = rng.permutation(n)
    g = Graph.from_edges(perm[endpoints], num_vertices=n, name=name)
    if g.num_edges > target_m:
        g = Graph(g.edges[:target_m], n, name=name)
    return g


def barabasi_albert(
    n: int, attach: int = 4, seed: int = 0, name: str = "ba"
) -> Graph:
    """Preferential-attachment graph: each new vertex links to ``attach``
    existing vertices chosen proportional to degree (repeated-node trick)."""
    if n <= attach:
        raise ConfigurationError("barabasi_albert needs n > attach")
    rng = _rng(seed)
    # Seed clique of `attach + 1` vertices keeps early sampling non-degenerate.
    sources: list[int] = []
    targets: list[int] = []
    repeated: list[int] = []
    for v in range(attach + 1):
        for u in range(v):
            sources.append(v)
            targets.append(u)
            repeated.extend((u, v))
    for v in range(attach + 1, n):
        picks = rng.integers(0, len(repeated), size=attach)
        chosen = {repeated[int(p)] for p in picks}
        while len(chosen) < attach:
            chosen.add(repeated[int(rng.integers(0, len(repeated)))])
        for u in chosen:
            sources.append(v)
            targets.append(u)
            repeated.extend((u, v))
    edges = np.column_stack([
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    ])
    return Graph.from_edges(edges, num_vertices=n, name=name)


def rmat(
    scale: int,
    edge_factor: int = 12,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
) -> Graph:
    """Recursive-matrix (R-MAT) generator, vectorized bit by bit.

    ``n = 2**scale`` vertices, ``~ n * edge_factor`` sampled edges.  The
    default quadrant probabilities (0.57, 0.19, 0.19, 0.05) are the
    Graph500 values and produce web-graph-like skew.
    """
    if scale < 2:
        raise ConfigurationError("rmat needs scale >= 2")
    d = 1.0 - a - b - c
    if d < 0:
        raise ConfigurationError("rmat probabilities exceed 1")
    rng = _rng(seed)
    n = 1 << scale
    m = n * edge_factor
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for _bit in range(scale):
        r = rng.random(m)
        right = r >= a + b          # quadrants c or d -> low bit of u is 1
        bottom = ((r >= a) & (r < a + b)) | (r >= a + b + c)  # b or d -> v bit 1
        u = (u << 1) | right.astype(np.int64)
        v = (v << 1) | bottom.astype(np.int64)
    # Permute ids so high-degree vertices are not clustered at id 0.
    perm = rng.permutation(n)
    edges = np.column_stack([perm[u], perm[v]])
    return Graph.from_edges(edges, num_vertices=n, name=name)


def star(n: int, name: str = "star") -> Graph:
    """Hub vertex 0 connected to all others (Figure 1's example shape)."""
    if n < 2:
        raise ConfigurationError("star needs n >= 2")
    spokes = np.arange(1, n, dtype=np.int64)
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), spokes])
    return Graph.from_edges(edges, num_vertices=n, name=name)


def grid2d(rows: int, cols: int, name: str = "grid") -> Graph:
    """4-neighbor mesh — a low-skew control workload."""
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid2d needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    return Graph.from_edges(
        np.vstack([horiz, vert]), num_vertices=rows * cols, name=name
    )


def ring(n: int, name: str = "ring") -> Graph:
    """Cycle graph — every vertex has degree exactly 2."""
    if n < 3:
        raise ConfigurationError("ring needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return Graph.from_edges(np.column_stack([u, v]), num_vertices=n, name=name)


def community_web(
    num_communities: int,
    community_size: int,
    intra_mean_degree: float = 10.0,
    inter_fraction: float = 0.03,
    exponent: float = 2.1,
    seed: int = 0,
    name: str = "web",
) -> Graph:
    """Web-graph stand-in: power-law communities plus sparse cross links.

    Real web graphs (IT, UK, GSH, WDC in the paper) have strong host-level
    locality, which is why in-memory partitioners reach very low
    replication factors on them.  This generator reproduces that property:
    each community is an independent Chung-Lu power-law graph and only an
    ``inter_fraction`` of additional edges cross community boundaries.
    """
    if num_communities < 1 or community_size < 2:
        raise ConfigurationError("need >= 1 community of size >= 2")
    rng = _rng(seed)
    n = num_communities * community_size
    blocks: list[np.ndarray] = []
    for community in range(num_communities):
        sub = chung_lu(
            community_size,
            intra_mean_degree,
            exponent=exponent,
            seed=rng.integers(0, 2**31),
        )
        blocks.append(sub.edges + community * community_size)
    intra = np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    num_inter = int(intra.shape[0] * inter_fraction)
    inter = rng.integers(0, n, size=(num_inter, 2), dtype=np.int64)
    # Shuffle vertex ids so communities are not contiguous id ranges
    # (sequential-seed initialization must not get them for free).
    perm = rng.permutation(n)
    edges = perm[np.vstack([intra, inter])]
    return Graph.from_edges(edges, num_vertices=n, name=name)

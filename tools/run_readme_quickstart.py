#!/usr/bin/env python3
"""Execute the README's Quickstart commands verbatim.

CI runs this script (job ``readme-quickstart``) so the documented
commands can never drift from what actually works: the ``bash`` code
block under the "## Quickstart" heading is extracted as-is and executed
with ``bash -euxo pipefail`` in a scratch directory (the repo root is
resolved first, so relative artifact paths land in the scratch dir, not
the checkout).

Usage: python tools/run_readme_quickstart.py [README.md]
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent


def extract_quickstart(readme: Path) -> str:
    """Return the first ```bash block after the Quickstart heading."""
    text = readme.read_text(encoding="utf-8")
    match = re.search(
        r"^##\s+Quickstart.*?^```bash\n(.*?)^```", text,
        flags=re.DOTALL | re.MULTILINE,
    )
    if not match:
        raise SystemExit(f"{readme}: no ```bash block under '## Quickstart'")
    return match.group(1)


def main(argv: list[str]) -> int:
    """Extract and run the quickstart; non-zero exit on any failure."""
    readme = Path(argv[1]) if len(argv) > 1 else _REPO_ROOT / "README.md"
    script = extract_quickstart(readme)
    # The README says "run from the repo root with PYTHONPATH=src";
    # resolve that relative path for the scratch working directory.
    preamble = f'export PYTHONPATH="{_REPO_ROOT / "src"}"\n'
    script = script.replace("export PYTHONPATH=src\n", preamble)
    print("--- quickstart script ---")
    print(script, end="")
    print("-------------------------")
    with tempfile.TemporaryDirectory(prefix="quickstart-") as scratch:
        proc = subprocess.run(
            ["bash", "-euxo", "pipefail", "-c", script], cwd=scratch
        )
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

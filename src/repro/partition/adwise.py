"""ADWISE: window-based streaming edge partitioning (simplified).

Mayer et al. (ICDCS'18) buffer a *window* of edges and repeatedly assign
the globally best ``(edge, partition)`` pair instead of being forced to
place edges in arrival order.  The full system adapts its window size to
a run-time budget; this reproduction keeps the algorithmic core — choose
the best edge in the window, assign, refill — with a fixed window size
and lazy re-scoring:

* every edge in the window caches its best score and best partition,
* each round the cached maximum is re-scored (scores only *decay* as
  loads grow and replicas appear elsewhere, so a stale cache is an upper
  bound); if the re-score confirms it is still the maximum it is
  assigned, otherwise the cache is updated and the selection repeats.

This keeps the ``O(window)`` re-scoring off the common path while
preserving the quality benefit the paper attributes to ADWISE: avoiding
uninformed early assignments.  The run-time-budget controller of the
original system is out of scope (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.scoring import hdrf_scores
from repro.partition.state import StreamingState

__all__ = ["AdwisePartitioner"]


class AdwisePartitioner(Partitioner):
    """Window-based streaming baseline.

    Parameters
    ----------
    window:
        Number of buffered edges considered for each placement.  Window 1
        degenerates to HDRF-ordered streaming.
    lam, eps:
        HDRF scoring parameters (ADWISE uses an HDRF-family score).
    """

    def __init__(
        self,
        window: int = 64,
        lam: float = 1.1,
        eps: float = 1.0,
        alpha: float = 1.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.lam = lam
        self.eps = eps
        self.alpha = alpha
        self.name = "ADWISE"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Stream the edges through the adaptive-window ADWISE scorer."""
        self._require_k(graph, k)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        state = StreamingState.fresh(graph, k, capacity, use_exact_degrees=True)
        assignment = PartitionAssignment.empty(graph, k)
        edges = graph.edges
        m = graph.num_edges

        window_eids: list[int] = []
        best_score = {}
        best_part = {}
        cursor = 0

        def rescore(e: int) -> None:
            """Re-evaluate the best achievable score of every buffered edge."""
            u, v = int(edges[e, 0]), int(edges[e, 1])
            scores = hdrf_scores(state, u, v, lam=self.lam, eps=self.eps)
            p = int(np.argmax(scores))
            best_score[e] = float(scores[p])
            best_part[e] = p

        # Fill the initial window.
        while cursor < m and len(window_eids) < self.window:
            window_eids.append(cursor)
            rescore(cursor)
            cursor += 1

        while window_eids:
            # Lazy selection: re-score the cached max until it is stable.
            while True:
                idx = max(range(len(window_eids)), key=lambda i: best_score[window_eids[i]])
                e = window_eids[idx]
                cached = best_score[e]
                rescore(e)
                if best_score[e] >= cached - 1e-12 or len(window_eids) == 1:
                    break
                # Cache decayed: another edge may now lead; repeat.
                stale_max = max(best_score[w] for w in window_eids)
                if best_score[e] >= stale_max - 1e-12:
                    break
            p = best_part[e]
            if best_score[e] == -np.inf:
                raise CapacityError("ADWISE: all partitions at capacity")
            u, v = int(edges[e, 0]), int(edges[e, 1])
            state.place(u, v, p)
            assignment.parts[e] = p
            window_eids.pop(idx)
            del best_score[e], best_part[e]
            if cursor < m:
                window_eids.append(cursor)
                rescore(cursor)
                cursor += 1
        return assignment

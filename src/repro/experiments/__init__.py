"""Experiment harness: one module per paper table/figure.

``REGISTRY`` maps experiment ids to their ``run`` callables; the CLI and
the benchmark suite both dispatch through it.
"""

from repro.experiments import (
    ablations,
    extensions,
    figure1,
    figure2,
    figure5,
    figure7,
    figure8,
    figure9,
    multi_worker,
    out_of_core,
    stream_order,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentResult

REGISTRY = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure5": figure5.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "stream_order": stream_order.run,
    "out_of_core": out_of_core.run,
    "multi_worker": multi_worker.run,
}

__all__ = ["REGISTRY", "ExperimentResult"]

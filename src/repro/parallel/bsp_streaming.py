"""Bulk-synchronous parallel (BSP) streaming — parallel HEP's phase two.

The paper closes with "we aim to further improve the performance of HEP
by focusing on parallelism and distribution".  The in-memory phase is
hard to parallelize without becoming DNE (whose quality penalty Figure 8
shows); the streaming phase, however, parallelizes naturally in the BSP
model that distributed stream processors use:

* the h2h edge stream is split round-robin across ``workers``,
* each superstep, every worker scores and places one batch of its edges
  against a *shared immutable snapshot* of the replica/load state,
* a barrier merges the workers' deltas (replica marks OR-ed, loads
  summed) into the next snapshot.

Staleness is the price of parallelism: within a superstep, workers do
not see each other's placements.  ``batch = 1`` with one worker is
exactly sequential informed HDRF; growing ``workers * batch`` trades
replication factor for parallel throughput.  This module executes the
schedule deterministically in process (one OS process — the *semantics*
of parallel execution, not its wall-clock; DESIGN.md documents the
substitution) and reports the modeled speedup: sequential rounds divided
by BSP supersteps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ne_plus_plus import run_ne_plus_plus
from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph
from repro.parallel.kernel import (
    apply_batch,
    place_batch_serialized,
    round_robin_streams,
    score_batch_on_snapshot,
    superstep_is_safe,
)
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.state import StreamingState

__all__ = ["bsp_hdrf_stream", "ParallelHepPartitioner", "BspStreamReport"]


@dataclass(frozen=True)
class BspStreamReport:
    """What the BSP schedule did: its size and modeled parallel speedup."""

    workers: int
    batch: int
    supersteps: int
    edges_streamed: int

    @property
    def modeled_speedup(self) -> float:
        """Sequential edge-rounds over BSP supersteps (ideal network)."""
        if self.supersteps == 0:
            return 1.0
        return self.edges_streamed / (self.supersteps * self.batch)


def bsp_hdrf_stream(
    state: StreamingState,
    edges: np.ndarray,
    eids: np.ndarray,
    parts_out: np.ndarray,
    workers: int,
    batch: int = 8,
    lam: float = 1.1,
    eps: float = 1.0,
    streams: "list[np.ndarray] | None" = None,
) -> BspStreamReport:
    """Stream ``edges`` through HDRF scoring under a BSP schedule.

    Mutates ``state`` and ``parts_out`` like
    :func:`repro.partition.hdrf.hdrf_stream`, but in supersteps of
    ``workers * batch`` edges scored against a frozen snapshot.

    ``streams`` assigns ownership explicitly: one array of positions
    into ``edges`` per worker, consumed in order, ``batch`` per
    superstep.  ``None`` (the default) keeps the classic round-robin
    split (:func:`~repro.parallel.kernel.round_robin_streams`).  The
    multi-process driver (:mod:`repro.stream.workers`) runs this exact
    schedule — same kernels, same stream construction — on real OS
    processes, which is what makes this function its executable oracle.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    m = int(edges.shape[0])
    if streams is None:
        # Round-robin ownership, as a distributed ingest layer would shard.
        streams = round_robin_streams(m, workers)
    elif len(streams) != workers:
        raise ConfigurationError(
            f"streams must list one eid array per worker "
            f"({workers}), got {len(streams)}"
        )
    streamed = int(sum(s.size for s in streams))
    cursors = [0] * workers
    supersteps = 0

    while any(cursors[w] < streams[w].size for w in range(workers)):
        snapshot_replicas = state.replicas.copy()
        snapshot_loads = state.loads.copy()
        supersteps += 1
        # Fast path: when no partition can fill up this superstep, the
        # live capacity mask never binds and every placement is a pure
        # argmax over the snapshot scores — placeable vectorized.
        safe = superstep_is_safe(snapshot_loads, workers, batch, state.capacity)
        for w in range(workers):
            take = streams[w][cursors[w] : cursors[w] + batch]
            cursors[w] += batch
            if take.size == 0:
                continue
            us = edges[take, 0]
            vs = edges[take, 1]
            scores = score_batch_on_snapshot(
                snapshot_replicas, snapshot_loads, state.degrees,
                us, vs, lam, eps,
            )
            if safe:
                ps = np.argmax(scores, axis=1)
                # Local delta applies to the live state; the snapshot
                # stays frozen until the barrier (= this loop's end).
                apply_batch(state, us, vs, ps)
            else:
                # The *capacity* check uses live loads: a real system
                # enforces its hard bound at the (serialized) partition
                # owner, not the snapshot.
                ps = place_batch_serialized(state, us, vs, scores)
            parts_out[eids[take]] = ps
    return BspStreamReport(workers, batch, supersteps, streamed)


class ParallelHepPartitioner(Partitioner):
    """HEP with a BSP-parallel streaming phase.

    Phase one (NE++) is unchanged; phase two streams the h2h edges with
    ``workers`` BSP workers and per-superstep batches of ``batch``.
    ``workers=1, batch=1`` reproduces sequential HEP exactly.
    """

    def __init__(
        self,
        tau: float = 10.0,
        workers: int = 4,
        batch: int = 8,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
    ) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.tau = tau
        self.workers = workers
        self.batch = batch
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.last_report: BspStreamReport | None = None
        self.name = f"HEP-BSP-{tau:g}x{workers}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Run NE++, then stream the h2h edges on the BSP schedule."""
        self._require_k(graph, k)
        phase_one = run_ne_plus_plus(graph, k, tau=self.tau)
        parts = phase_one.parts
        h2h = phase_one.h2h
        if h2h.num_edges:
            capacity = capacity_bound(graph.num_edges, k, self.alpha)
            capacity = max(capacity, int(phase_one.loads.max()) + 1)
            state = StreamingState.informed(
                graph, k, capacity,
                replicas=phase_one.secondary,
                loads=phase_one.loads,
            )
            self.last_report = bsp_hdrf_stream(
                state, h2h.pairs, h2h.eids, parts,
                workers=self.workers, batch=self.batch,
                lam=self.lam, eps=self.eps,
            )
        else:
            self.last_report = BspStreamReport(self.workers, self.batch, 0, 0)
        return PartitionAssignment(graph, k, parts)

"""Bench: multi-worker shard-parallel partitioning wall-clock.

Measures what ``partition --workers N`` actually buys over the
*single-worker* sequential out-of-core driver — the path a user without
``--workers`` runs today — and what the PR 7 shared-memory protocol
buys over the PR 4 pickled-delta pipes at the same configuration.
Three honest effects stack:

* **batching** — the BSP schedule scores ``batch`` edges per worker per
  superstep against a frozen snapshot, so scoring vectorizes; the
  sequential informed-HDRF semantics cannot batch (every edge's score
  depends on the previous placement).  This alone is a >= 1.3x
  wall-clock win on any hardware, bought with the (reported) small
  replication-factor cost of staleness.
* **shared-memory state** — worker batches land in scratch lanes of one
  ``/dev/shm`` segment and snapshots are published by flipping a double
  buffer, so the pipe path's pickle/encode/apply tax disappears.  The
  paired rows record the protocol delta per worker count; it is a real
  per-superstep saving even on one core.
* **process parallelism** — with ``N`` workers each streams its own
  shard assignment, so scoring and shard decode run concurrently on
  multi-core hosts.  On a single-core container (``cpu_count`` is
  recorded in the JSON) worker scaling is bounded by barrier
  amortization alone, so the 4-vs-1-worker gate falls back to the
  work-split model — the same convention ``bench_scan.py`` uses.

The measured rows land in ``results/BENCH_workers.json`` (validated by
``tools/check_bench_schema.py``) with per-protocol 1/2/4-worker
wall-clock and replication factor, plus the sequential single-worker
baseline every speedup is computed against, plus a PR 8 cached-vs-cold
pair: the same 2-worker ``JobSpec`` run cold through
:func:`repro.runtime.api.run_job` (artifact-store write included) and
then served as a content-addressed cache hit.

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_workers.py \
        -o python_functions=bench_
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.graph import datasets
from repro.runtime import ArtifactStore, make_job, run_job
from repro.stream import (
    MultiWorkerStreamingDriver,
    StreamingPartitionerDriver,
    plan_worker_segments,
    write_sharded_edges,
)

_K = 8
_BATCH = 16
_SHARDS = 4
_WORKER_COUNTS = (1, 2, 4)
_REPEATS = 3
_RESULTS = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """The WI stand-in exported as a 4-shard manifest."""
    graph = datasets.load("WI")
    out = tmp_path_factory.mktemp("bench-workers") / "wi.manifest.json"
    return write_sharded_edges(graph, out, num_shards=_SHARDS)


def _best_of(fn, repeats: int = _REPEATS):
    """Best wall-clock of ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_multi_worker_scaling(manifest, capsys, tmp_path):
    """1/2/4 workers, shared-memory vs pipes, vs the sequential driver.

    Emits ``results/BENCH_workers.json``.  Gates: the widest
    shared-memory configuration must beat the single-worker sequential
    baseline by >= 1.3x (batching alone clears that on one core); it
    must not lose to the pipe protocol at the same configuration; and
    4 workers must beat 1 worker by >= 1.3x — measured where the host
    has >= 4 cores, by the shard work-split model where it does not.
    """
    seq_s, seq = _best_of(
        lambda: StreamingPartitionerDriver(
            "HDRF", exact_degrees=True
        ).partition(manifest.path, _K)
    )
    rows = [
        {
            "driver": "sequential single-worker (HDRF informed)",
            "protocol": "sequential",
            "workers": 1,
            "batch": 1,
            "seconds": seq_s,
            "rf": seq.replication_factor,
            "supersteps": seq.num_edges,
            "speedup_vs_single_worker": 1.0,
        }
    ]
    shm_seconds: dict[int, float] = {}
    for workers in _WORKER_COUNTS:
        for shared, protocol in ((True, "shared-memory"), (False, "pipes")):
            run_s, run = _best_of(
                lambda w=workers, s=shared: MultiWorkerStreamingDriver(
                    workers=w, batch=_BATCH, shared_memory=s
                ).partition(manifest.path, _K)
            )
            if shared:
                shm_seconds[workers] = run_s
            rows.append(
                {
                    "driver": f"{run.algorithm} ({protocol})",
                    "protocol": protocol,
                    "workers": workers,
                    "batch": _BATCH,
                    "seconds": run_s,
                    "rf": run.replication_factor,
                    "supersteps": run.report.supersteps,
                    "speedup_vs_single_worker": seq_s / run_s,
                }
            )
    # Cached re-run: the same 2-worker spec served from the PR 8
    # content-addressed artifact store instead of recomputed.  The cold
    # row pays the full pipeline plus the store write; the cached row
    # is one digest + load.
    store = ArtifactStore(tmp_path / "cache")
    spec = make_job("HDRF", manifest.path, _K, workers=2, batch=_BATCH)
    start = time.perf_counter()
    cold = run_job(spec, store=store)
    cold_s = time.perf_counter() - start
    hit_s, hit = _best_of(lambda: run_job(spec, store=store))
    assert hit.cache_hit and store.hits >= 1
    rows.append(
        {
            "driver": f"{cold.algorithm} (runtime, cold + store write)",
            "protocol": "cold",
            "workers": 2,
            "batch": _BATCH,
            "seconds": cold_s,
            "rf": cold.replication_factor,
            "supersteps": cold.report.supersteps,
            "speedup_vs_single_worker": seq_s / cold_s,
        }
    )
    rows.append(
        {
            "driver": f"{hit.algorithm} (runtime, cached)",
            "protocol": "cached",
            "workers": 2,
            "batch": _BATCH,
            "seconds": hit_s,
            "rf": hit.replication_factor,
            "supersteps": hit.report.supersteps,
            "speedup_vs_single_worker": seq_s / hit_s,
        }
    )
    # The parallelism the shard split exposes to a multi-core host,
    # independent of this container's core count.
    _, streams, _, _ = plan_worker_segments(manifest.path, max(_WORKER_COUNTS))
    modeled_parallelism = manifest.num_edges / max(s.size for s in streams)
    record = {
        "bench": "multi_worker_scaling",
        "graph": "WI",
        "edges": manifest.num_edges,
        "k": _K,
        "shards": _SHARDS,
        "cpu_count": os.cpu_count(),
        "modeled_parallelism_4w": modeled_parallelism,
        "rows": rows,
    }
    _RESULTS.mkdir(exist_ok=True)
    out = _RESULTS / "BENCH_workers.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n[bench_workers] -> {out}")
        for row in rows:
            print(
                f"  {row['driver']:<42} {row['seconds']:.3f}s  "
                f"rf={row['rf']:.4f}  "
                f"x{row['speedup_vs_single_worker']:.2f}"
            )
    shm_rows = [r for r in rows if r["protocol"] == "shared-memory"]
    pipe_rows = [r for r in rows if r["protocol"] == "pipes"]
    widest_shm, widest_pipe = shm_rows[-1], pipe_rows[-1]
    assert widest_shm["speedup_vs_single_worker"] >= 1.3, (
        f"4-worker shared-memory run only "
        f"{widest_shm['speedup_vs_single_worker']:.2f}x faster than the "
        f"sequential single-worker driver"
    )
    # The protocol swap must never cost wall-clock (small noise margin).
    assert widest_shm["seconds"] <= widest_pipe["seconds"] * 1.05, (
        f"shared memory ({widest_shm['seconds']:.3f}s) lost to pipes "
        f"({widest_pipe['seconds']:.3f}s) at 4 workers"
    )
    if (os.cpu_count() or 1) >= 4:
        assert shm_seconds[1] / shm_seconds[4] >= 1.3, (
            f"4 workers only beat 1 worker by "
            f"x{shm_seconds[1] / shm_seconds[4]:.2f} on a "
            f"{os.cpu_count()}-core host"
        )
    else:
        # Too few cores for process parallelism to beat the clock: pin
        # the work-split the shard schedule exposes instead.
        assert modeled_parallelism >= 1.3, (
            f"4-worker shard split only models x{modeled_parallelism:.2f}"
        )
    # Staleness must stay a modest quality cost (the BSP trade-off).
    assert widest_shm["rf"] <= rows[0]["rf"] * 1.15
    # The cached re-run must return the identical quality for a small
    # fraction of the cold wall-clock — otherwise the store is not
    # actually skipping the pipeline.
    cached_row = next(r for r in rows if r["protocol"] == "cached")
    cold_row = next(r for r in rows if r["protocol"] == "cold")
    assert cached_row["rf"] == cold_row["rf"]
    assert cached_row["seconds"] * 5 <= cold_row["seconds"], (
        f"cache hit ({cached_row['seconds']:.3f}s) is not clearly faster "
        f"than the cold run ({cold_row['seconds']:.3f}s)"
    )

"""NE++: memory-efficient neighborhood expansion (paper Section 3.2).

NE++ is the in-memory phase of HEP.  It differs from baseline NE
(:mod:`repro.partition.ne`) in exactly the ways the paper describes:

**Pruned graph representation** (Section 3.2.1).  The CSR stores no
adjacency lists for high-degree vertices (``d(v) > tau * mean``); edges
between two high-degree vertices were diverted to an external buffer at
build time.  High-degree vertices are never expanded into the core set —
they are treated as *a priori* members of every secondary set: the
moment a low-degree vertex ``x`` enters the expansion region, each of its
pruned-CSR edges ``(x, u)`` to a high-degree ``u`` is assigned to the
current partition and ``u`` is marked replicated there.

**Lazy edge removal** (Section 3.2.2, Theorem 3.1).  No per-edge
"assigned" bookkeeping exists.  Instead, a clean-up pass after each
partition removes, from the adjacency lists of vertices that *remain in
the secondary set*, the entries pointing into ``C ∪ S_i`` — precisely
the edges that were assigned to ``p_i`` and could otherwise be seen again
by a later partition.  Vertices moved to the core are never visited
again (Theorem 3.1), so their lists are left untouched.

**Sequential-scan initialization** (Section 3.2.3).  Seed search walks
vertex ids once; every rejected vertex is rejected for a permanent
reason (cored, high-degree, or empty adjacency), so the scan never
revisits.

**Adapted capacity bound**: partitions are filled to
``|E \\ E_h2h| / k`` so in-memory edges spread evenly, leaving headroom
for the streamed h2h edges.

**Last partition by linear sweep** (Algorithm 3): remaining low/low
edges are assigned from the left-hand (out-list) side; remaining
low/high edges from the low vertex's in-list.  The split out/in index
arrays exist for exactly this single-owner rule.

The run returns everything HEP's streaming phase needs: the per-edge
assignment (h2h edges still unassigned), the secondary-set matrix (the
replica state), and partition loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._ds import IndexedMinHeap
from repro.errors import ConfigurationError
from repro.graph.csr import CsrGraph, ExternalEdges
from repro.graph.edgelist import Graph
from repro.graph.pruned import high_degree_mask
from repro.partition.base import (
    PartitionAssignment,
    Partitioner,
    capacity_bound,
)

__all__ = [
    "NePlusPlusResult",
    "NePlusPlusStats",
    "run_ne_plus_plus",
    "run_ne_plus_plus_on_csr",
    "NePlusPlusPartitioner",
]

#: tau value that disables pruning entirely (pure in-memory NE++)
TAU_UNPRUNED = float("inf")


@dataclass
class NePlusPlusStats:
    """Counters the paper's Figures 5 and 7 are built from."""

    initial_column_entries: int = 0
    cleanup_removed_entries: int = 0
    num_seeds: int = 0
    num_cored: int = 0
    spilled_edges: int = 0
    core_degrees: list[int] = field(default_factory=list)
    secondary_end_degrees: list[int] = field(default_factory=list)

    @property
    def cleanup_removed_fraction(self) -> float:
        """Fraction of column entries removed by clean-up (Figure 7)."""
        if self.initial_column_entries == 0:
            return 0.0
        return self.cleanup_removed_entries / self.initial_column_entries


@dataclass
class NePlusPlusResult:
    """Output of the in-memory phase, ready for the streaming hand-over.

    ``graph`` is ``None`` when the phase ran on a chunk-built CSR
    (:func:`run_ne_plus_plus_on_csr`): the out-of-core pipeline never
    materializes a full :class:`Graph`, and the h2h edges then live in a
    spill file rather than in :attr:`h2h`.
    """

    graph: Graph | None
    k: int
    tau: float
    parts: np.ndarray              # (m,) int32; h2h edges remain -1
    secondary: np.ndarray          # (k, n) bool: the S_i replica bitsets
    loads: np.ndarray              # (k,) int64 edge loads after phase one
    high_mask: np.ndarray          # (n,) bool
    h2h: ExternalEdges
    stats: NePlusPlusStats

    @property
    def num_inmemory_edges(self) -> int:
        """Edges phase one placed in memory (everything but h2h)."""
        return int(self.parts.shape[0]) - self.h2h.num_edges

    def to_assignment(self) -> PartitionAssignment:
        """Assignment view (only complete when there are no h2h edges)."""
        if self.graph is None:
            raise ConfigurationError(
                "NE++ ran without an in-memory Graph; build the assignment "
                "through the out-of-core pipeline instead"
            )
        return PartitionAssignment(self.graph, self.k, self.parts)


def run_ne_plus_plus(
    graph: Graph,
    k: int,
    tau: float = TAU_UNPRUNED,
    record_degrees: bool = False,
    trace_walk: Callable[[int], None] | None = None,
    seed_order: str = "sequential",
    seed: int = 0,
) -> NePlusPlusResult:
    """Run the NE++ in-memory phase.

    Parameters
    ----------
    graph, k:
        Input graph and number of partitions.
    tau:
        Degree threshold factor.  ``inf`` disables pruning (no h2h edges).
    record_degrees:
        Collect the Figure 5 degree histories (small overhead).
    trace_walk:
        Optional callback invoked with a vertex id every time that
        vertex's adjacency list is walked — the memory-access feed for the
        paging simulator (Table 6).
    seed_order:
        ``"sequential"`` — the paper's Section 3.2.3 optimization (scan
        ids once, never revisit); ``"random"`` — the reference NE's
        randomized selection, kept as an ablation (still scanned without
        replacement so it terminates).
    """
    if np.isinf(tau):
        high = np.zeros(graph.num_vertices, dtype=bool)
    else:
        high = high_degree_mask(graph, tau)
    csr = CsrGraph.build(graph, high_mask=high)
    return run_ne_plus_plus_on_csr(
        csr,
        k,
        tau=tau,
        record_degrees=record_degrees,
        trace_walk=trace_walk,
        seed_order=seed_order,
        seed=seed,
        graph=graph,
    )


def run_ne_plus_plus_on_csr(
    csr: CsrGraph,
    k: int,
    tau: float = TAU_UNPRUNED,
    record_degrees: bool = False,
    trace_walk: Callable[[int], None] | None = None,
    seed_order: str = "sequential",
    seed: int = 0,
    graph: Graph | None = None,
) -> NePlusPlusResult:
    """Run NE++ on a prebuilt (possibly chunk-built) CSR.

    This is the out-of-core entry point: :mod:`repro.stream` assembles the
    pruned CSR from bounded chunks (diverting h2h edges to a spill file)
    and hands it here without ever constructing the full edge array.  The
    CSR carries everything the phase needs — true degrees, the high-degree
    mask and the total edge count.
    """
    if k < 2:
        raise ConfigurationError(f"NE++ requires k >= 2, got {k}")
    if seed_order not in ("sequential", "random"):
        raise ConfigurationError(f"unknown seed_order {seed_order!r}")
    run = _NePlusPlusRun(
        graph, csr, k, tau, record_degrees, trace_walk, seed_order, seed
    )
    return run.execute()


class _NePlusPlusRun:
    def __init__(
        self,
        graph: Graph | None,
        csr: CsrGraph,
        k: int,
        tau: float,
        record_degrees: bool,
        trace_walk: Callable[[int], None] | None,
        seed_order: str = "sequential",
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.csr = csr
        self.k = k
        self.tau = tau
        self.n = csr.num_vertices
        self.degrees = csr.degrees
        self.high = csr.high_mask
        self.m_inmem = csr.num_csr_edges
        # Adapted capacity bound: only in-memory edges count here.
        self.capacity = capacity_bound(max(self.m_inmem, 1), k)
        self.parts = np.full(csr.num_edges_total, -1, dtype=np.int32)
        self.loads = np.zeros(k, dtype=np.int64)
        self.in_core = np.zeros(self.n, dtype=bool)
        self.secondary = np.zeros((k, self.n), dtype=bool)
        self.heap = IndexedMinHeap()
        self.current = 0
        self.seed_cursor = 0  # position in the seed scan sequence
        if seed_order == "sequential":
            self.seed_sequence = np.arange(self.n, dtype=np.int64)
        else:
            self.seed_sequence = np.random.default_rng(seed).permutation(self.n)
        self.assigned_inmem = 0
        self.record_degrees = record_degrees
        self.trace_walk = trace_walk
        self.stats = NePlusPlusStats(initial_column_entries=int(csr.col.size))

    # -- driver ------------------------------------------------------------

    def execute(self) -> NePlusPlusResult:
        last = self.k - 1
        for i in range(last):
            self.current = i
            self.heap.clear()
            exhausted = not self._expand_partition()
            if self.record_degrees:
                members = np.flatnonzero(
                    self.secondary[i] & ~self.in_core & ~self.high
                )
                self.stats.secondary_end_degrees.extend(
                    self.degrees[members].tolist()
                )
            self._cleanup(i)
            if exhausted or self.assigned_inmem >= self.m_inmem:
                break
        self._final_sweep()
        return NePlusPlusResult(
            graph=self.graph,
            k=self.k,
            tau=self.tau,
            parts=self.parts,
            secondary=self.secondary,
            loads=self.loads,
            high_mask=self.high,
            h2h=self.csr.h2h_edges,
            stats=self.stats,
        )

    def _expand_partition(self) -> bool:
        """Grow partition ``current`` to capacity.

        Returns ``False`` once the seed scan is exhausted (no further
        partition can be grown by expansion).
        """
        i = self.current
        while self.loads[i] < self.capacity and self.assigned_inmem < self.m_inmem:
            if self.heap:
                v, _ = self.heap.pop_min()
                self._move_to_core(v)
            elif not self._initialize():
                return False
        return True

    def _initialize(self) -> bool:
        """Sequential-scan seed search (Section 3.2.3).

        Every rejection is permanent for this partition: cored and
        high-degree are immutable, valid adjacency sizes only shrink, and
        spill-marked vertices (already in ``S_i`` without having been
        walked) are skipped — their remaining edges are picked up by a
        later partition or the final sweep.
        """
        csr = self.csr
        sec = self.secondary[self.current]
        while self.seed_cursor < self.n:
            v = int(self.seed_sequence[self.seed_cursor])
            self.seed_cursor += 1
            if self.in_core[v] or self.high[v] or sec[v]:
                continue
            if csr.out_size[v] + csr.in_size[v] == 0:
                continue
            self.stats.num_seeds += 1
            self._move_to_core(v, fresh=True)
            return True
        return False

    # -- expansion ---------------------------------------------------------------

    def _move_to_core(self, v: int, fresh: bool = False) -> None:
        """Core ``v``; with ``fresh=True`` (a seed) ``v`` enters the region
        right now, so its edges *into* the region are assigned here.

        A vertex cored from the heap had those edges assigned when the
        later endpoint entered ``C ∪ S_i`` (Algorithm 1's invariant); a
        seed was outside the region until this moment, so edges to
        secondary members — including the a-priori high-degree members —
        would otherwise be missed and later destroyed by clean-up.
        """
        i = self.current
        sec = self.secondary[i]
        self.in_core[v] = True
        if fresh:
            sec[v] = True
        self.stats.num_cored += 1
        if self.record_degrees:
            self.stats.core_degrees.append(int(self.degrees[v]))
        if self.trace_walk is not None:
            self.trace_walk(v)
        nbrs, eids = self.csr.adjacency(v)
        high = self.high
        in_core = self.in_core
        heap = self.heap
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if high[w]:
                if fresh:
                    # A-priori secondary membership of high-degree vertices.
                    self._assign(eid, v, w)
                    sec[w] = True
                # else: assigned at v's own secondary walk already.
            elif in_core[w] or sec[w]:
                if fresh:
                    self._assign(eid, v, w)
                    if w in heap:
                        heap.decrement(w)
                # else: assigned when the later endpoint entered the region.
            else:
                self._move_to_secondary(w)

    def _move_to_secondary(self, v: int) -> None:
        i = self.current
        sec = self.secondary[i]
        sec[v] = True
        if self.trace_walk is not None:
            self.trace_walk(v)
        dext = 0
        nbrs, eids = self.csr.adjacency(v)
        high = self.high
        in_core = self.in_core
        heap = self.heap
        for w, eid in zip(nbrs.tolist(), eids.tolist()):
            if high[w]:
                self._assign(eid, v, w)
                sec[w] = True
            elif in_core[w] or sec[w]:
                self._assign(eid, v, w)
                if w in heap:
                    heap.decrement(w)
            else:
                dext += 1
        heap.push(v, dext)

    def _assign(self, eid: int, u: int, w: int) -> None:
        i = self.current
        if self.loads[i] >= self.capacity and i + 1 < self.k:
            # Spill-over: endpoints become replicas of the receiving
            # partition.  A single expansion step can overshoot by more
            # than one partition's headroom, so cascade forward.
            while self.loads[i] >= self.capacity and i + 1 < self.k:
                i += 1
            self.secondary[i, u] = True
            self.secondary[i, w] = True
            self.stats.spilled_edges += 1
        self.parts[eid] = i
        self.loads[i] += 1
        self.assigned_inmem += 1

    # -- lazy edge removal ---------------------------------------------------------

    def _cleanup(self, i: int) -> None:
        """Algorithm 2: remove assigned entries from lists that may be
        visited again (only vertices still in the secondary set)."""
        region = self.in_core | self.secondary[i]
        members = np.flatnonzero(self.secondary[i] & ~self.in_core & ~self.high)
        removed = 0
        csr = self.csr
        for v in members.tolist():
            if self.trace_walk is not None:
                self.trace_walk(v)
            removed += csr.remove_marked(v, region)
        self.stats.cleanup_removed_entries += removed

    # -- last partition (Algorithm 3) ---------------------------------------------

    def _final_sweep(self) -> None:
        """Assign every remaining in-memory edge, filling partitions from
        the first unfilled one onward under the capacity bound."""
        # The expansion loop filled partitions 0 .. current; the sweep
        # builds the next one (normally the last).  If expansion ended
        # early because the seed scan was exhausted, nothing remains and
        # the sweep is a no-op.
        i = min(self.current + 1, self.k - 1)
        csr = self.csr
        high = self.high
        parts = self.parts
        loads = self.loads
        for v in range(self.n):
            if self.in_core[v] or high[v]:
                continue
            out_n, out_e = csr.out_view(v)
            in_n, in_e = csr.in_view(v)
            if out_e.size == 0 and in_e.size == 0:
                continue
            if self.trace_walk is not None:
                self.trace_walk(v)
            touched = False
            sec = self.secondary[i]
            # Low/low and low/high out-edges: assigned from the left side.
            for w, eid in zip(out_n.tolist(), out_e.tolist()):
                parts[eid] = i
                loads[i] += 1
                self.assigned_inmem += 1
                sec[w] = True
                touched = True
            # In-edges are assigned here only when the source is pruned.
            for w, eid in zip(in_n.tolist(), in_e.tolist()):
                if high[w]:
                    parts[eid] = i
                    loads[i] += 1
                    self.assigned_inmem += 1
                    sec[w] = True
                    touched = True
            if touched:
                sec[v] = True
            if loads[i] >= self.capacity and i + 1 < self.k:
                i = i + 1


class NePlusPlusPartitioner(Partitioner):
    """Standalone NE++ (unpruned): the paper's drop-in replacement for NE.

    With the default ``tau = inf`` there are no h2h edges, so the
    in-memory phase assigns every edge and this is a complete
    partitioner.  A finite ``tau`` makes sense only inside HEP (use
    :class:`repro.core.hep.HepPartitioner`).
    """

    def __init__(self, record_degrees: bool = False) -> None:
        self.record_degrees = record_degrees
        self.last_stats: NePlusPlusStats | None = None
        self.name = "NE++"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Run NE++ alone (h2h edges placed by the fallback rule)."""
        self._require_k(graph, k)
        result = run_ne_plus_plus(
            graph, k, tau=TAU_UNPRUNED, record_degrees=self.record_degrees
        )
        self.last_stats = result.stats
        return result.to_assignment()

"""Figure 7: fraction of column-array entries removed by clean-up (k=32).

Lazy edge removal's payoff: only a minority of the column array is ever
touched by the clean-up pass, against 100% for eager invalidation.  Web
graphs remove less than social graphs (tighter secondary sets).
"""

from __future__ import annotations

from repro.core.ne_plus_plus import run_ne_plus_plus
from repro.experiments.common import ExperimentResult, dataset_list, load_dataset
from repro.experiments.paper_reference import SHAPES

__all__ = ["run"]

_DEFAULT = ("LJ", "OK", "WI", "IT", "TW")
_FULL = ("LJ", "OK", "BR", "WI", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(graphs: tuple[str, ...] | None = None, k: int = 32) -> ExperimentResult:
    names = list(graphs) if graphs else dataset_list(_DEFAULT, _FULL)
    rows: list[dict[str, object]] = []
    for name in names:
        graph = load_dataset(name)
        result = run_ne_plus_plus(graph, k, tau=float("inf"))
        rows.append(
            {
                "graph": name,
                "column_entries": result.stats.initial_column_entries,
                "removed": result.stats.cleanup_removed_entries,
                "removed_fraction": round(result.stats.cleanup_removed_fraction, 4),
            }
        )
    out = ExperimentResult(
        experiment_id="figure7",
        title=f"Fraction of column entries removed during clean-up (k={k})",
        rows=rows,
        paper_shape=SHAPES["figure7"],
    )
    fractions = {str(r["graph"]): float(r["removed_fraction"]) for r in rows}
    web = [fractions[g] for g in ("IT", "UK", "GSH", "WDC") if g in fractions]
    social = [fractions[g] for g in ("LJ", "OK", "TW", "FR") if g in fractions]
    if web and social:
        out.notes.append(
            f"mean removed fraction web={sum(web)/len(web):.3f} < "
            f"social={sum(social)/len(social):.3f}: "
            f"{sum(web)/len(web) < sum(social)/len(social)}"
        )
    out.notes.append(
        "fractions sit above the paper's (surface-to-volume effect at"
        " 10^5-edge scale); the ordering is the reproduced shape"
    )
    return out

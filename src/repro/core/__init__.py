"""The paper's primary contribution: HEP, NE++, tau selection, memory model."""

from repro.core.hep import HepPartitioner, HepPhaseBreakdown
from repro.core.incremental import IncrementalHep
from repro.core.memory_model import (
    hep_memory_bytes,
    memory_model_for,
    ne_memory_bytes,
    ne_plus_plus_memory_bytes,
    pruned_column_entries,
)
from repro.core.ne_plus_plus import (
    NePlusPlusPartitioner,
    NePlusPlusResult,
    NePlusPlusStats,
    run_ne_plus_plus,
)
from repro.core.tau import (
    DEFAULT_TAU_GRID,
    TauProfile,
    precompute_profile,
    select_tau,
)

__all__ = [
    "HepPartitioner",
    "IncrementalHep",
    "HepPhaseBreakdown",
    "NePlusPlusPartitioner",
    "NePlusPlusResult",
    "NePlusPlusStats",
    "run_ne_plus_plus",
    "select_tau",
    "precompute_profile",
    "TauProfile",
    "DEFAULT_TAU_GRID",
    "hep_memory_bytes",
    "ne_memory_bytes",
    "ne_plus_plus_memory_bytes",
    "pruned_column_entries",
    "memory_model_for",
]

"""Tests for the HEP orchestrator: hybrid assignment, informed streaming,
the tau knob, and the paper's headline quality relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HepPartitioner
from repro.errors import ConfigurationError
from repro.graph import Graph
from repro.graph.generators import chung_lu, community_web, erdos_renyi
from repro.metrics import assert_valid, replication_factor
from repro.partition import HdrfPartitioner
from repro.partition.ne import NePartitioner


@pytest.fixture(scope="module")
def social_graph() -> Graph:
    return chung_lu(700, mean_degree=12, exponent=2.2, seed=21, name="soc")


@pytest.fixture(scope="module")
def web_graph() -> Graph:
    return community_web(10, 70, intra_mean_degree=9, inter_fraction=0.02, seed=22)


class TestHepBasics:
    @pytest.mark.parametrize("tau", [1.0, 10.0, 100.0])
    def test_complete_valid_assignment(self, social_graph, tau):
        a = HepPartitioner(tau=tau).partition(social_graph, 4)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=1.5)

    def test_name_encodes_tau(self):
        assert HepPartitioner(tau=10).name == "HEP-10"
        assert HepPartitioner(tau=1.5).name == "HEP-1.5"
        assert HepPartitioner(tau=float("inf")).name == "HEP-inf"

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            HepPartitioner(tau=0)

    def test_rejects_bad_strategy(self):
        with pytest.raises(ConfigurationError):
            HepPartitioner(streaming="fifo")

    def test_deterministic(self, social_graph):
        a = HepPartitioner(tau=2.0).partition(social_graph, 4)
        b = HepPartitioner(tau=2.0).partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_breakdown_populated(self, social_graph):
        p = HepPartitioner(tau=1.0)
        p.partition(social_graph, 4)
        b = p.last_breakdown
        assert b is not None
        assert b.num_edges == social_graph.num_edges
        assert b.num_h2h_edges + b.num_inmemory_edges == b.num_edges
        assert 0 < b.h2h_fraction < 1
        assert b.rest_fraction == pytest.approx(1 - b.h2h_fraction)

    def test_tau_inf_equals_pure_ne_plus_plus(self, social_graph):
        from repro.core import NePlusPlusPartitioner

        a = HepPartitioner(tau=float("inf")).partition(social_graph, 4)
        b = NePlusPlusPartitioner().partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)


class TestTauKnob:
    def test_h2h_fraction_grows_as_tau_drops(self, social_graph):
        fractions = []
        for tau in (10.0, 2.0, 1.0, 0.5):
            p = HepPartitioner(tau=tau)
            p.partition(social_graph, 4)
            fractions.append(p.last_breakdown.h2h_fraction)
        assert fractions == sorted(fractions)

    def test_quality_degrades_gracefully(self, social_graph):
        """The paper's Figure 8 pattern:
        RF(HEP-100) <= RF(HEP-1), and both beat pure streaming HDRF."""
        k = 8
        rf = {
            tau: replication_factor(HepPartitioner(tau=tau).partition(social_graph, k))
            for tau in (100.0, 1.0)
        }
        rf_hdrf = replication_factor(HdrfPartitioner().partition(social_graph, k))
        assert rf[100.0] <= rf[1.0] * 1.05
        assert rf[1.0] <= rf_hdrf

    def test_memory_model_shrinks_with_tau(self, social_graph):
        from repro.core import hep_memory_bytes

        sizes = [
            hep_memory_bytes(social_graph, tau, 8) for tau in (100.0, 10.0, 1.0)
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestInformedStreaming:
    def test_informed_beats_uninformed_on_h2h(self, social_graph):
        """HEP's phase 2 uses replicas from phase 1.  An uninformed HDRF
        over the same graph should not beat full HEP at low tau."""
        k = 8
        rf_hep = replication_factor(
            HepPartitioner(tau=0.5).partition(social_graph, k)
        )
        rf_hdrf = replication_factor(HdrfPartitioner().partition(social_graph, k))
        assert rf_hep <= rf_hdrf * 1.02

    def test_random_streaming_variant_worse(self, social_graph):
        """Section 5.4: HDRF phase 2 beats random phase 2."""
        k = 8
        rf_hdrf_phase = replication_factor(
            HepPartitioner(tau=0.5, streaming="hdrf").partition(social_graph, k)
        )
        rf_rand_phase = replication_factor(
            HepPartitioner(tau=0.5, streaming="random").partition(social_graph, k)
        )
        assert rf_hdrf_phase < rf_rand_phase

    def test_greedy_streaming_variant(self, social_graph):
        """Section 3.3's alternative phase-two scorer: valid, beats
        random, and (per the HDRF paper) does not beat HDRF."""
        from repro.metrics import assert_valid

        k = 8
        hep_greedy = HepPartitioner(tau=0.5, streaming="greedy")
        a = hep_greedy.partition(social_graph, k)
        assert_valid(a, alpha=1.5)
        rf_greedy = replication_factor(a)
        rf_hdrf = replication_factor(
            HepPartitioner(tau=0.5, streaming="hdrf").partition(social_graph, k)
        )
        rf_random = replication_factor(
            HepPartitioner(tau=0.5, streaming="random").partition(social_graph, k)
        )
        assert rf_hdrf <= rf_greedy * 1.1
        assert rf_greedy < rf_random


class TestHeadlineClaims:
    """The paper's abstract in test form: on suitable graphs HEP
    outperforms streaming on quality while approaching in-memory NE."""

    def test_hep10_close_to_ne_on_web(self, web_graph):
        k = 8
        rf_hep = replication_factor(HepPartitioner(tau=10.0).partition(web_graph, k))
        rf_ne = replication_factor(NePartitioner().partition(web_graph, k))
        assert rf_hep <= rf_ne * 1.35

    def test_hep_beats_hdrf_on_web(self, web_graph):
        k = 8
        rf_hep = replication_factor(HepPartitioner(tau=10.0).partition(web_graph, k))
        rf_hdrf = replication_factor(HdrfPartitioner().partition(web_graph, k))
        assert rf_hep < rf_hdrf

    def test_balance_perfect_at_default_alpha(self, social_graph):
        for tau in (1.0, 10.0):
            a = HepPartitioner(tau=tau).partition(social_graph, 4)
            sizes = a.partition_sizes()
            cap = -(-social_graph.num_edges // 4)
            assert sizes.max() <= cap * 1.25


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(8, 40),
    m=st.integers(10, 120),
    k=st.sampled_from([2, 4, 8]),
    tau=st.sampled_from([0.5, 1.0, 3.0, 25.0]),
    seed=st.integers(0, 4),
)
def test_hep_property_random_graphs(n, m, k, tau, seed):
    """Property: HEP always yields a complete, in-range, balanced
    assignment, whatever the split between phases."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return
    a = HepPartitioner(tau=tau).partition(g, k)
    assert a.num_unassigned == 0
    assert a.parts.min() >= 0 and a.parts.max() < k
    assert a.partition_sizes().sum() == g.num_edges
    assert_valid(a, alpha=3.0)

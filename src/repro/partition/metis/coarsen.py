"""Coarsening by heavy-edge matching (the first multilevel phase).

Vertices are visited in random order; each unmatched vertex pairs with
its unmatched neighbor of maximum edge weight (heavy-edge matching —
the classic METIS heuristic, which contracts the strongest communities
first so the coarse graph preserves the cut structure of the fine one).
Matched pairs merge into one coarse vertex whose weight is the sum of
its parts; parallel edges collapse with summed weights.
"""

from __future__ import annotations

import numpy as np

from repro.partition.metis.level import LevelGraph

__all__ = ["coarsen"]


def coarsen(
    level: LevelGraph, rng: np.random.Generator
) -> tuple[LevelGraph, np.ndarray]:
    """One coarsening step.

    Returns ``(coarse_graph, cmap)`` where ``cmap[fine_vertex]`` is the
    coarse vertex id.
    """
    n = level.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for u in order.tolist():
        if match[u] >= 0:
            continue
        best = -1
        best_weight = -1.0
        for v, w in level.adj[u].items():
            if match[v] < 0 and v != u and w > best_weight:
                best, best_weight = v, w
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u  # stays single

    # Assign coarse ids: matched pairs share one id.
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if cmap[u] >= 0:
            continue
        cmap[u] = next_id
        partner = match[u]
        if partner != u and cmap[partner] < 0:
            cmap[partner] = next_id
        next_id += 1

    coarse_weights = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_weights, cmap, level.vertex_weights)

    # Each fine edge appears once in u's dict and once in v's dict; the
    # accumulation below therefore lands once on coarse_adj[cu][cv] and
    # once on coarse_adj[cv][cu] — symmetric by construction, no
    # double-counting correction needed.
    coarse_adj: list[dict[int, float]] = [dict() for _ in range(next_id)]
    for u in range(n):
        cu = int(cmap[u])
        row = coarse_adj[cu]
        for v, w in level.adj[u].items():
            cv = int(cmap[v])
            if cv == cu:
                continue  # contracted edge disappears
            row[cv] = row.get(cv, 0.0) + w

    return LevelGraph(next_id, coarse_weights, coarse_adj), cmap

"""Quality metrics straight from chunked edge streams (no Graph in RAM).

The Section 2 metrics in this package score an in-memory
:class:`~repro.partition.base.PartitionAssignment`.  This module scores
a finished per-edge assignment against an *on-disk* edge stream instead
— the counting and metrics passes of :mod:`repro.stream.scan`, with the
bit-packed ``k x n`` vertex cover, the budget-aware column-blocked
fallback, and (``workers > 1`` on a shard manifest or flat binary edge
file) the worker-parallel sweeps of :mod:`repro.stream.parallel_scan`.
Results are bit-identical whichever path runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.stream.parallel_scan import scan_quality, scan_stats
from repro.stream.reader import DEFAULT_CHUNK_SIZE, open_edge_source
from repro.stream.scan import SourceStats

__all__ = ["StreamedQuality", "streamed_quality_report"]


@dataclass(frozen=True)
class StreamedQuality:
    """Stream-computed quality of one per-edge assignment."""

    replication_factor: float
    edge_balance: float
    k: int
    num_vertices: int
    num_edges: int
    num_unassigned: int
    mean_degree: float

    def row(self) -> dict[str, object]:
        """Render the report as one table row (rounded display values)."""
        return {
            "k": self.k,
            "RF": round(self.replication_factor, 4),
            "alpha": round(self.edge_balance, 4),
            "n": self.num_vertices,
            "m": self.num_edges,
            "unassigned": self.num_unassigned,
        }


def streamed_quality_report(
    source,
    parts: np.ndarray,
    k: int,
    workers: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    memory_budget: int | None = None,
    stats: SourceStats | None = None,
    pool=None,
) -> StreamedQuality:
    """Score an assignment against any edge source, out of core.

    ``source`` is anything :func:`~repro.stream.reader.open_edge_source`
    accepts; ``parts`` maps canonical edge id to partition (negative =
    unassigned, excluded from both metrics).  ``workers > 1`` runs both
    sweeps on worker processes when the source is segmentable;
    ``memory_budget`` bounds the metrics cover's bytes via
    column-blocked sweeps.  One counting pass plus one (or, blocked,
    several) metrics passes — the edge list is never resident.  A
    caller that already ran the counting pass hands its
    :class:`~repro.stream.scan.SourceStats` in as ``stats`` and skips
    the redundant sweep; one holding a warm
    :class:`~repro.stream.workers.PersistentWorkerPool` hands it in as
    ``pool`` so the sweeps reuse its processes.
    """
    if k < 1:
        raise ConfigurationError(f"streamed quality requires k >= 1, got {k}")
    parts = np.asarray(parts)
    opened = open_edge_source(source, chunk_size)
    if stats is None:
        stats = scan_stats(source, opened, workers, chunk_size, pool=pool)
    if parts.shape != (stats.num_edges,):
        raise ConfigurationError(
            f"parts has shape {parts.shape}, but the source streams "
            f"{stats.num_edges} edges"
        )
    if parts.size and int(parts.max()) >= k:
        raise ConfigurationError(
            f"parts references partition {int(parts.max())} but k={k}"
        )
    rf, balance = scan_quality(
        source, opened, stats, k, parts, workers, chunk_size,
        memory_budget=memory_budget, pool=pool,
    )
    return StreamedQuality(
        replication_factor=rf,
        edge_balance=balance,
        k=k,
        num_vertices=stats.num_vertices,
        num_edges=stats.num_edges,
        num_unassigned=int((parts < 0).sum()),
        mean_degree=stats.mean_degree,
    )

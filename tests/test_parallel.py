"""Tests for the BSP-parallel streaming phase and ParallelHepPartitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HepPartitioner
from repro.errors import ConfigurationError
from repro.graph.generators import chung_lu, erdos_renyi
from repro.metrics import assert_valid, replication_factor
from repro.parallel import BspStreamReport, ParallelHepPartitioner


@pytest.fixture(scope="module")
def graph():
    return chung_lu(600, mean_degree=12, exponent=2.1, seed=81, name="g")


class TestParallelHep:
    def test_valid_assignment(self, graph):
        a = ParallelHepPartitioner(tau=1.0, workers=4, batch=8).partition(graph, 8)
        assert a.num_unassigned == 0
        assert_valid(a, alpha=1.3)

    def test_single_worker_batch_one_equals_sequential(self, graph):
        """workers=1, batch=1 must reproduce sequential HEP bit-for-bit."""
        seq = HepPartitioner(tau=1.0).partition(graph, 8)
        par = ParallelHepPartitioner(tau=1.0, workers=1, batch=1).partition(graph, 8)
        assert np.array_equal(seq.parts, par.parts)

    def test_deterministic(self, graph):
        a = ParallelHepPartitioner(tau=1.0, workers=4).partition(graph, 8)
        b = ParallelHepPartitioner(tau=1.0, workers=4).partition(graph, 8)
        assert np.array_equal(a.parts, b.parts)

    def test_staleness_costs_quality_at_most_modestly(self, graph):
        """More parallelism (bigger stale batches) must not catastrophically
        degrade RF — the BSP merge keeps state nearly fresh."""
        k = 8
        rf_seq = replication_factor(HepPartitioner(tau=0.5).partition(graph, k))
        rf_par = replication_factor(
            ParallelHepPartitioner(tau=0.5, workers=8, batch=16).partition(graph, k)
        )
        assert rf_par <= rf_seq * 1.25

    def test_report_speedup(self, graph):
        p = ParallelHepPartitioner(tau=0.5, workers=4, batch=8)
        p.partition(graph, 8)
        report = p.last_report
        assert report is not None
        assert report.edges_streamed > 0
        # With 4 workers x batch 8, each superstep covers up to 32 edges.
        assert report.modeled_speedup > 1.5
        assert report.modeled_speedup <= 4 * 8

    def test_no_h2h_edges_trivial_report(self, graph):
        p = ParallelHepPartitioner(tau=1e9, workers=4)
        a = p.partition(graph, 4)
        assert a.num_unassigned == 0
        assert p.last_report.supersteps == 0
        assert p.last_report.modeled_speedup == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelHepPartitioner(tau=0)
        with pytest.raises(ConfigurationError):
            ParallelHepPartitioner(workers=0)


class TestReport:
    def test_modeled_speedup_formula(self):
        report = BspStreamReport(workers=4, batch=8, supersteps=10, edges_streamed=320)
        assert report.modeled_speedup == pytest.approx(4.0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(10, 40),
    m=st.integers(12, 100),
    workers=st.sampled_from([1, 2, 4]),
    batch=st.sampled_from([1, 4, 16]),
    seed=st.integers(0, 3),
)
def test_parallel_hep_property(n, m, workers, batch, seed):
    """Property: any BSP schedule yields a complete, in-range assignment."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < 4:
        return
    a = ParallelHepPartitioner(
        tau=0.5, workers=workers, batch=batch
    ).partition(g, 4)
    assert a.num_unassigned == 0
    assert a.partition_sizes().sum() == g.num_edges

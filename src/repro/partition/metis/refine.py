"""Boundary FM refinement of a bisection.

After projecting a coarse bisection to a finer level, boundary vertices
are moved greedily between the two sides whenever the move reduces the
cut (or restores balance), Fiduccia–Mattheyses style: each pass considers
every boundary vertex at most once, applies the best sequence of moves
found, and passes repeat until no improvement remains.
"""

from __future__ import annotations

import numpy as np

from repro.partition.metis.level import LevelGraph

__all__ = ["fm_refine"]


def fm_refine(
    level: LevelGraph,
    side: np.ndarray,
    target_fraction: float,
    imbalance: float = 0.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Improve the bisection in place; returns the refined side array."""
    total = level.total_weight
    target0 = target_fraction * total
    lo = target0 * (1.0 - imbalance)
    hi = target0 * (1.0 + imbalance)
    weight0 = float(level.vertex_weights[side == 0].sum())

    for _ in range(max_passes):
        improved = False
        # Gains: moving v to the other side changes the cut by
        # (internal - external); positive gain = cut shrinks.
        for v in _boundary_vertices(level, side):
            sv = side[v]
            external = internal = 0.0
            for w, weight in level.adj[v].items():
                if side[w] == sv:
                    internal += weight
                else:
                    external += weight
            gain = external - internal
            vw = float(level.vertex_weights[v])
            new_weight0 = weight0 + vw if sv == 1 else weight0 - vw
            balanced = lo <= new_weight0 <= hi
            out_of_balance = not (lo <= weight0 <= hi)
            rebalances = abs(new_weight0 - target0) < abs(weight0 - target0)
            if (gain > 0 and balanced) or (out_of_balance and rebalances):
                side[v] = 1 - sv
                weight0 = new_weight0
                improved = True
        if not improved:
            break
    return side


def _boundary_vertices(level: LevelGraph, side: np.ndarray) -> list[int]:
    boundary = []
    for v in range(level.num_vertices):
        sv = side[v]
        for w in level.adj[v]:
            if side[w] != sv:
                boundary.append(v)
                break
    return boundary

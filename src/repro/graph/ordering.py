"""Edge-stream orderings.

Streaming partitioners consume the graph as a stream, and their quality
depends on the order edges arrive (the "uninformed assignment problem"
the paper discusses in Sections 1 and 3.3 — HDRF and ADWISE were both
evaluated under multiple orderings).  This module produces the standard
orderings so that sensitivity can be measured:

* ``natural``     — the input file order (what the paper uses),
* ``random``      — a seeded shuffle,
* ``bfs``         — edges sorted by breadth-first discovery time of their
  earlier-discovered endpoint (crawl order: high locality),
* ``degree``      — hubs-first (both endpoints high-degree early),
* ``adversarial`` — hubs-last: low-degree edges arrive while the state is
  empty, maximizing uninformed placements.

HEP's in-memory phase is order-free by construction, which the
``stream_order`` experiment demonstrates against the streaming baselines.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph

__all__ = ["edge_order", "reorder_edges", "ORDERINGS"]

ORDERINGS = ("natural", "random", "bfs", "degree", "adversarial")


def edge_order(graph: Graph, strategy: str, seed: int = 0) -> np.ndarray:
    """Permutation of edge ids realizing ``strategy`` (stable within ties)."""
    m = graph.num_edges
    if strategy == "natural":
        return np.arange(m, dtype=np.int64)
    if strategy == "random":
        return np.random.default_rng(seed).permutation(m).astype(np.int64)
    if strategy == "bfs":
        rank = _bfs_vertex_rank(graph, seed)
        key = np.minimum(rank[graph.edges[:, 0]], rank[graph.edges[:, 1]])
        return np.argsort(key, kind="stable").astype(np.int64)
    if strategy == "degree":
        deg = graph.degrees
        key = -np.minimum(deg[graph.edges[:, 0]], deg[graph.edges[:, 1]])
        return np.argsort(key, kind="stable").astype(np.int64)
    if strategy == "adversarial":
        deg = graph.degrees
        key = np.maximum(deg[graph.edges[:, 0]], deg[graph.edges[:, 1]])
        return np.argsort(key, kind="stable").astype(np.int64)
    raise ConfigurationError(
        f"unknown ordering {strategy!r}; available: {', '.join(ORDERINGS)}"
    )


def reorder_edges(graph: Graph, permutation: np.ndarray, name: str = "") -> Graph:
    """Graph with the same edges in a new stream order.

    The returned graph's edge ``i`` is the input's edge
    ``permutation[i]`` — map assignments back with
    ``parts_original[permutation] = parts_reordered``.
    """
    permutation = np.asarray(permutation, dtype=np.int64)
    if sorted(permutation.tolist()) != list(range(graph.num_edges)):
        raise ConfigurationError("permutation must cover every edge exactly once")
    return Graph(
        graph.edges[permutation],
        graph.num_vertices,
        name=name or f"{graph.name}-reordered",
    )


def _bfs_vertex_rank(graph: Graph, seed: int) -> np.ndarray:
    """Discovery index per vertex of a BFS over all components, started
    from the highest-degree vertex (crawlers start at hubs)."""
    n = graph.num_vertices
    # Adjacency as CSR over both directions.
    endpoints = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    neighbors = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
    order = np.argsort(endpoints, kind="stable")
    sorted_dst = neighbors[order]
    counts = np.bincount(endpoints, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    rank = np.full(n, -1, dtype=np.int64)
    next_rank = 0
    start_order = np.argsort(-graph.degrees, kind="stable")
    for start in start_order.tolist():
        if rank[start] >= 0:
            continue
        queue = deque([start])
        rank[start] = next_rank
        next_rank += 1
        while queue:
            v = queue.popleft()
            for w in sorted_dst[indptr[v] : indptr[v + 1]].tolist():
                if rank[w] < 0:
                    rank[w] = next_rank
                    next_rank += 1
                    queue.append(w)
    rank[rank < 0] = np.arange(next_rank, next_rank + int((rank < 0).sum()))
    return rank

"""HEP: the Hybrid Edge Partitioner (the paper's system, Section 3).

HEP chains the two phases this library implements:

1. **NE++** partitions every edge incident to at least one low-degree
   vertex in memory, on the pruned CSR (:mod:`repro.core.ne_plus_plus`).
2. **Informed stateful streaming** partitions the high/high edge file
   with HDRF scoring (Algorithm 4), with its state — replica sets,
   exact degrees, partition loads — seeded from phase one
   (:meth:`repro.partition.state.StreamingState.informed`).  This is what
   overcomes the "uninformed assignment problem" of pure streaming.

The degree threshold factor ``tau`` is the memory knob: the paper's
configurations HEP-100, HEP-10 and HEP-1 are ``HepPartitioner(tau=...)``
with 100, 10 and 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ne_plus_plus import NePlusPlusResult, run_ne_plus_plus
from repro.errors import CapacityError, ConfigurationError
from repro.graph.csr import _grouped_positions
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.hdrf import hdrf_stream
from repro.partition.random_stream import random_stream
from repro.partition.scoring import greedy_choose
from repro.partition.state import StreamingState

__all__ = ["HepPartitioner", "HepPhaseBreakdown", "phase_two_capacity"]


def phase_two_capacity(
    num_edges: int, k: int, alpha: float, loads: np.ndarray
) -> int:
    """Streaming-phase capacity bound shared by in-memory and out-of-core HEP.

    The paper's bound ``alpha * |E| / k`` — but loads carried over from
    phase one may already be at that bound on pathological inputs, so the
    bound grows just enough to keep the stream feasible (reported alpha
    will expose it).  Both HEP drivers must use this exact rule: the
    out-of-core ≡ in-memory equivalence property depends on it.
    """
    capacity = capacity_bound(num_edges, k, alpha)
    headroom = int(loads.max())
    return max(capacity, headroom + 1)


@dataclass(frozen=True)
class HepPhaseBreakdown:
    """Where the edges went: diagnostics for Figure 9's ratio panels."""

    num_edges: int
    num_h2h_edges: int
    num_inmemory_edges: int
    cleanup_removed_fraction: float
    spilled_edges: int

    @property
    def h2h_fraction(self) -> float:
        """Fraction of all edges classified high/high (streamed)."""
        return self.num_h2h_edges / self.num_edges if self.num_edges else 0.0

    @property
    def rest_fraction(self) -> float:
        """Fraction of all edges partitioned in memory by NE++."""
        return 1.0 - self.h2h_fraction


class HepPartitioner(Partitioner):
    """Hybrid Edge Partitioner.

    Parameters
    ----------
    tau:
        Degree threshold factor separating ``V_h`` from ``V_l``.  Smaller
        means more streaming and less memory.  ``inf`` degenerates to
        pure NE++.
    alpha:
        Balance slack for the *streaming* phase (the in-memory phase uses
        the paper's adapted bound ``|E \\ E_h2h| / k``).
    lam, eps:
        HDRF scoring parameters for phase two.
    streaming:
        ``"hdrf"`` (the paper's choice), ``"greedy"`` (the alternative
        Section 3.3 mentions: "the streaming phase of HEP could also
        employ other stateful streaming edge partitioning algorithms,
        such as Greedy"), or ``"random"`` — the latter turns HEP into
        the NE++-side half of Section 5.4's ablation.
    informed:
        With ``False``, phase two starts from *empty* streaming state
        instead of the NE++ hand-over — the ablation isolating the value
        of Section 3.3's informed streaming (loads still carry over so
        the balance constraint stays sound).
    spill_dir:
        When set (and streaming is HDRF), the h2h edges are written to a
        disk-backed :class:`~repro.stream.spill.SpillFile` in this
        directory and phase two reads them back in bounded chunks — the
        paper's "external memory edge file" made literal.
    buffer_size:
        Buffered scoring window for the HDRF streaming phase
        (:mod:`repro.stream.buffered`); ``None`` keeps the classic
        per-edge stream order.
    chunk_size:
        Spill read-back chunk size (only meaningful with ``spill_dir``).
    """

    def __init__(
        self,
        tau: float = 10.0,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
        streaming: str = "hdrf",
        informed: bool = True,
        seed: int = 0,
        spill_dir: str | None = None,
        buffer_size: int | None = None,
        chunk_size: int = 1 << 16,
    ) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if streaming not in ("hdrf", "greedy", "random"):
            raise ConfigurationError(f"unknown streaming strategy {streaming!r}")
        if (spill_dir is not None or buffer_size is not None) and streaming != "hdrf":
            raise ConfigurationError(
                "spill_dir/buffer_size require the HDRF streaming phase"
            )
        self.tau = tau
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.streaming = streaming
        self.informed = informed
        self.seed = seed
        self.spill_dir = spill_dir
        self.buffer_size = buffer_size
        self.chunk_size = chunk_size
        self.last_breakdown: HepPhaseBreakdown | None = None
        label = "inf" if np.isinf(tau) else f"{tau:g}"
        self.name = f"HEP-{label}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Run both HEP phases: NE++ then informed HDRF over h2h edges."""
        self._require_k(graph, k)
        phase_one = run_ne_plus_plus(graph, k, tau=self.tau)
        parts = self._stream_h2h(graph, k, phase_one)
        self.last_breakdown = HepPhaseBreakdown(
            num_edges=graph.num_edges,
            num_h2h_edges=phase_one.h2h.num_edges,
            num_inmemory_edges=phase_one.num_inmemory_edges,
            cleanup_removed_fraction=phase_one.stats.cleanup_removed_fraction,
            spilled_edges=phase_one.stats.spilled_edges,
        )
        return PartitionAssignment(graph, k, parts)

    def _stream_h2h(
        self, graph: Graph, k: int, phase_one: NePlusPlusResult
    ) -> np.ndarray:
        """Phase two: stream the h2h edge file through informed scoring."""
        parts = phase_one.parts
        h2h = phase_one.h2h
        if h2h.num_edges == 0:
            return parts
        capacity = phase_two_capacity(graph.num_edges, k, self.alpha, phase_one.loads)
        if self.streaming == "hdrf":
            if self.informed:
                state = StreamingState.informed(
                    graph,
                    k,
                    capacity,
                    replicas=phase_one.secondary,
                    loads=phase_one.loads,
                )
            else:
                # Uninformed ablation: forget the replica state but keep
                # the loads (the capacity constraint must see them).
                state = StreamingState.informed(
                    graph,
                    k,
                    capacity,
                    replicas=np.zeros_like(phase_one.secondary),
                    loads=phase_one.loads,
                )
            self._hdrf_phase(state, h2h, parts)
        elif self.streaming == "greedy":
            state = StreamingState.informed(
                graph, k, capacity,
                replicas=phase_one.secondary,
                loads=phase_one.loads,
            )
            self._greedy_stream(graph, state, h2h, parts)
        else:
            random_stream(
                h2h.num_edges,
                h2h.eids,
                parts,
                k,
                capacity,
                loads=phase_one.loads.copy(),
                seed=self.seed,
            )
        return parts

    def _hdrf_phase(self, state: StreamingState, h2h, parts: np.ndarray) -> None:
        """HDRF streaming, optionally disk-spilled and/or buffered."""
        if self.spill_dir is None and self.buffer_size is None:
            hdrf_stream(
                state, h2h.pairs, h2h.eids, parts, lam=self.lam, eps=self.eps
            )
            return
        from repro.stream.buffered import stream_chunks_through_hdrf
        from repro.stream.spill import SpillFile

        if self.spill_dir is not None:
            with SpillFile(dir=self.spill_dir) as spill:
                spill.append(h2h.pairs, h2h.eids)
                stream_chunks_through_hdrf(
                    state,
                    spill.chunks(self.chunk_size),
                    parts,
                    lam=self.lam,
                    eps=self.eps,
                    buffer_size=self.buffer_size,
                )
        else:
            stream_chunks_through_hdrf(
                state,
                [(h2h.pairs, h2h.eids)],
                parts,
                lam=self.lam,
                eps=self.eps,
                buffer_size=self.buffer_size,
            )

    @staticmethod
    def _greedy_stream(graph, state: StreamingState, h2h, parts: np.ndarray) -> None:
        """PowerGraph-greedy placement over the h2h stream (informed).

        The per-edge ``remaining`` degree bookkeeping of the original
        loop is batched: ``remaining[x]`` at edge ``i`` equals ``d(x)``
        minus the number of times ``x`` appeared in edges ``0..i-1``, so
        one stable occurrence-rank pass over the flattened endpoint
        stream precomputes every lookup.
        """
        if h2h.num_edges == 0:
            return
        flat = h2h.pairs.ravel()
        prior = _grouped_positions(flat, np.zeros(graph.num_vertices, dtype=np.int64))
        remaining = graph.degrees[flat] - prior
        rem_u, rem_v = remaining[0::2], remaining[1::2]
        pairs, eids = h2h.pairs, h2h.eids
        for i in range(h2h.num_edges):
            u = int(pairs[i, 0])
            v = int(pairs[i, 1])
            p = greedy_choose(state, u, v, int(rem_u[i]), int(rem_v[i]))
            if p < 0:
                raise CapacityError("HEP/greedy: all partitions at capacity")
            state.place(u, v, p)
            parts[eids[i]] = p

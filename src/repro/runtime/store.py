"""Content-addressed artifact store for runtime results.

A cache entry is keyed by ``sha256(spec.content_hash() + input
digest)``: the spec hash covers every result-determining knob
(:meth:`~repro.runtime.spec.JobSpec.content_hash`), the input digest
covers the actual edge bytes (:func:`input_digest` — the file, every
shard a manifest references, an in-memory Graph's arrays, or a
dataset name with its scale environment).  Re-running an identical
job therefore loads the saved assignment bit for bit, with zero
partitioning stages executed; changing any semantic knob *or* the
input content misses.

Entries are directories under the store root (sharded by the key's
first two hex chars, like git objects): ``parts.npy`` + ``loads.npy``
hold the assignment, ``meta.json`` the canonical spec, metrics,
phase breakdown, and worker report.  Writes go to a temp directory
first and land via :func:`os.replace`, so concurrent or interrupted
runs never expose a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core.hep import HepPhaseBreakdown
from repro.runtime.result import PartitionResult
from repro.runtime.spec import JobSpec

__all__ = ["ArtifactStore", "input_digest"]

_LOG = logging.getLogger("repro.runtime.store")

#: bumped when the on-disk entry layout changes (old entries then miss)
STORE_FORMAT = 1

#: subdirectory of the store root that corrupt entries are moved into
QUARANTINE_DIR = "quarantine"

_HASH_CHUNK = 1 << 20


def _update_with_file(digest, path: Path) -> None:
    """Fold a file's bytes into ``digest`` in bounded chunks."""
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_HASH_CHUNK)
            if not block:
                break
            digest.update(block)


def input_digest(spec: JobSpec, source) -> str | None:
    """Sha256 of the job's input *content*, or ``None`` if unhashable.

    ``path`` inputs digest the file — and, for shard manifests, every
    shard file it references, so editing any shard invalidates the
    entry.  ``dataset`` inputs digest the name plus the ``REPRO_SCALE``
    environment (the generators are deterministic given those).
    ``graph`` inputs digest the edge array bytes.  Opaque sources
    (already-open streams) are not content-addressable.
    """
    kind = spec.input.kind
    digest = hashlib.sha256()
    if kind == "graph":
        digest.update(b"graph:")
        digest.update(str(source.num_vertices).encode("utf-8"))
        digest.update(np.ascontiguousarray(source.edges).tobytes())
        return digest.hexdigest()
    if kind == "dataset":
        scale = os.environ.get("REPRO_SCALE", "")
        digest.update(
            f"dataset:{spec.input.path}:scale={scale}".encode("utf-8")
        )
        return digest.hexdigest()
    if kind != "path":
        return None
    path = Path(spec.input.path)
    if not path.exists():
        return None
    digest.update(b"path:")
    _update_with_file(digest, path)
    from repro.stream.shard import is_manifest_path, read_shard_manifest

    if is_manifest_path(path):
        manifest = read_shard_manifest(path)
        for shard in manifest.shard_paths:
            _update_with_file(digest, shard)
    return digest.hexdigest()


def _report_to_dict(report) -> dict | None:
    """Serialize a MultiWorkerReport (timings included) to plain JSON."""
    if report is None:
        return None
    timings = report.timings
    return {
        "workers": report.workers,
        "batch": report.batch,
        "supersteps": report.supersteps,
        "edges_streamed": report.edges_streamed,
        "fast_supersteps": report.fast_supersteps,
        "slow_supersteps": report.slow_supersteps,
        "timings": None if timings is None else {
            "busy_s": list(timings.busy_s),
            "wait_s": list(timings.wait_s),
            "send_s": list(timings.send_s),
            "coordinator_recv_s": timings.coordinator_recv_s,
            "coordinator_merge_s": timings.coordinator_merge_s,
            "coordinator_send_s": timings.coordinator_send_s,
        },
    }


def _report_from_dict(data: dict | None):
    """Rebuild a MultiWorkerReport from its JSON form."""
    if data is None:
        return None
    from repro.stream.workers import MultiWorkerReport, WorkerTimings

    timings = data.get("timings")
    return MultiWorkerReport(
        workers=data["workers"],
        batch=data["batch"],
        supersteps=data["supersteps"],
        edges_streamed=data["edges_streamed"],
        fast_supersteps=data["fast_supersteps"],
        slow_supersteps=data["slow_supersteps"],
        timings=None if timings is None else WorkerTimings(
            busy_s=tuple(timings["busy_s"]),
            wait_s=tuple(timings["wait_s"]),
            send_s=tuple(timings["send_s"]),
            coordinator_recv_s=timings["coordinator_recv_s"],
            coordinator_merge_s=timings["coordinator_merge_s"],
            coordinator_send_s=timings["coordinator_send_s"],
        ),
    )


def _breakdown_to_dict(breakdown) -> dict | None:
    """Serialize a HepPhaseBreakdown to plain JSON."""
    if breakdown is None:
        return None
    return {
        "num_edges": breakdown.num_edges,
        "num_h2h_edges": breakdown.num_h2h_edges,
        "num_inmemory_edges": breakdown.num_inmemory_edges,
        "cleanup_removed_fraction": breakdown.cleanup_removed_fraction,
        "spilled_edges": breakdown.spilled_edges,
    }


def _breakdown_from_dict(data: dict | None) -> HepPhaseBreakdown | None:
    """Rebuild a HepPhaseBreakdown from its JSON form."""
    if data is None:
        return None
    return HepPhaseBreakdown(**data)


class ArtifactStore:
    """Directory-backed, content-addressed cache of partition results.

    ``hits``/``misses`` count lookups; the correctness tests assert a
    second identical run recomputes nothing (its result's
    ``stages_executed`` stays empty and ``hits`` goes to 1).

    The store is safe for concurrent writers: entries land via a single
    atomic directory rename, a concurrently-created identical entry is
    treated as a benign win (content addressing makes both writers'
    payloads byte-equal), and a torn entry left by a crashed writer is
    quarantined on first read instead of raised.
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def cache_key(self, spec: JobSpec, digest: str) -> str:
        """Combine the spec hash and the input digest into the entry key."""
        payload = f"{spec.content_hash()}:{digest}:fmt{STORE_FORMAT}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _entry_dir(self, key: str) -> Path:
        """Directory an entry with ``key`` lives in (git-style sharding)."""
        return self.root / key[:2] / key

    def entry_path(self, key: str) -> Path:
        """Public path of the entry dir for ``key`` (read-side consumers)."""
        return self._entry_dir(key)

    def _quarantine(self, entry: Path, key: str, exc: Exception) -> None:
        """Move a torn entry dir aside so it never shadows a clean write.

        A crashed writer can only leave a bad entry if the rename in
        :meth:`put` landed a directory whose files were later truncated
        (e.g. by a dying filesystem); rather than re-reading the same
        garbage on every lookup, the entry moves to
        ``root/quarantine/<key>-<n>`` for post-mortem inspection and the
        key becomes writable again.
        """
        dest_root = self.root / QUARANTINE_DIR
        try:
            dest_root.mkdir(parents=True, exist_ok=True)
            suffix = 0
            while True:
                dest = dest_root / f"{key}-{suffix}"
                if not dest.exists():
                    break
                suffix += 1
            os.replace(entry, dest)
        except OSError:
            # Another process quarantined (or repaired) it first; either
            # way the entry is no longer ours to move.
            return
        self.quarantined += 1
        _LOG.warning(
            "quarantined corrupt cache entry %s -> %s (%s: %s)",
            entry, dest, type(exc).__name__, exc,
        )

    def get(self, key: str, spec: JobSpec) -> PartitionResult | None:
        """Load the cached result for ``key``, or ``None`` on a miss.

        A corrupt or truncated entry (half-written ``meta.json``,
        torn ``.npy``) is logged, quarantined under
        ``root/quarantine/``, and counted as a miss — never raised.
        """
        entry = self._entry_dir(key)
        meta_path = entry / "meta.json"
        if not meta_path.exists():
            self.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("format") != STORE_FORMAT:
                # A valid entry written by a different layout version:
                # plain miss, not corruption — leave it in place.
                self.misses += 1
                return None
            parts = np.load(entry / "parts.npy")
            loads = np.load(entry / "loads.npy")
            result = PartitionResult(
                spec=spec,
                algorithm=meta["algorithm"],
                parts=parts,
                k=meta["k"],
                num_vertices=meta["num_vertices"],
                num_edges=meta["num_edges"],
                chunk_size=meta["chunk_size"],
                loads=loads,
                replication_factor=meta["replication_factor"],
                edge_balance=meta["edge_balance"],
                runtime_s=0.0,
                passes=meta["passes"],
                tau=meta["tau"],
                breakdown=_breakdown_from_dict(meta["breakdown"]),
                spill_bytes=meta["spill_bytes"],
                buffer_size=meta["buffer_size"],
                projected_memory_bytes=meta["projected_memory_bytes"],
                report=_report_from_dict(meta["report"]),
                job_hash=meta["job_hash"],
                cache_hit=True,
                stages_executed=(),
            )
        except (OSError, ValueError, KeyError, EOFError, TypeError) as exc:
            self.misses += 1
            self._quarantine(entry, key, exc)
            return None
        self.hits += 1
        return result

    def read_meta(self, key: str) -> dict | None:
        """Return the raw ``meta.json`` dict for ``key``, or ``None``.

        Read-side consumers (the serve layer's artifact cache) use this
        to recover the stored spec and quality summary without
        reconstructing a full :class:`PartitionResult`.
        """
        meta_path = self._entry_dir(key) / "meta.json"
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if meta.get("format") != STORE_FORMAT:
            return None
        return meta

    def put(self, key: str, result: PartitionResult, digest: str) -> Path:
        """Persist ``result`` under ``key`` (atomic directory rename).

        Safe under concurrent writers racing on the same key: both
        stage into private temp directories, and whichever
        ``os.replace`` lands first wins.  Because the key is
        content-addressed the loser's payload is byte-identical, so
        losing the rename is a benign outcome — the losing staging dir
        is cleaned up and the surviving entry returned.
        """
        entry = self._entry_dir(key)
        if (entry / "meta.json").exists():
            # Entry already present (an earlier run, or a concurrent
            # writer that finished before we staged anything).
            return entry
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(prefix=".staging-", dir=entry.parent)
        )
        try:
            np.save(staging / "parts.npy", result.parts)
            np.save(staging / "loads.npy", result.loads)
            meta = {
                "format": STORE_FORMAT,
                "job_hash": result.job_hash,
                "input_digest": digest,
                "spec": result.spec.to_dict(),
                "algorithm": result.algorithm,
                "k": result.k,
                "num_vertices": result.num_vertices,
                "num_edges": result.num_edges,
                "chunk_size": result.chunk_size,
                "passes": result.passes,
                "tau": result.tau,
                "spill_bytes": result.spill_bytes,
                "buffer_size": result.buffer_size,
                "projected_memory_bytes": result.projected_memory_bytes,
                "replication_factor": result.replication_factor,
                "edge_balance": result.edge_balance,
                "runtime_s": result.runtime_s,
                "breakdown": _breakdown_to_dict(result.breakdown),
                "report": _report_to_dict(result.report),
            }
            (staging / "meta.json").write_text(
                json.dumps(meta, indent=2, sort_keys=True),
                encoding="utf-8",
            )
            try:
                os.replace(staging, entry)
            except OSError as exc:
                # os.replace only renames onto an *empty* directory, so
                # a concurrent writer landing first makes this raise
                # (ENOTEMPTY/EEXIST).  Same key, same content: their
                # entry is as good as ours — benign win for them.
                if not (entry / "meta.json").exists():
                    raise exc
        finally:
            if staging.exists() and staging != entry:
                shutil.rmtree(staging, ignore_errors=True)
        return entry

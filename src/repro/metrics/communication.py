"""Static communication-volume metrics.

The replication factor is a *normalized* quality measure; distributed
systems also care about the raw quantities it normalizes away:

* **communication volume** — replicas beyond the master copy, i.e. the
  number of vertex-state synchronizations one superstep with all
  vertices active would trigger (``sum_v (r(v) - 1)``),
* **cut vertices** — how many vertices are replicated at all,
* per-partition **boundary vertices** — the replicas each machine must
  exchange, whose spread is Table 5's vertex-balance metric.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.replication import replicas_per_vertex
from repro.partition.base import PartitionAssignment

__all__ = [
    "communication_volume",
    "num_cut_vertices",
    "boundary_vertices_per_partition",
]


def communication_volume(assignment: PartitionAssignment) -> int:
    """Total replicas beyond one per covered vertex."""
    replicas = replicas_per_vertex(assignment)
    covered = replicas > 0
    return int((replicas[covered] - 1).sum())


def num_cut_vertices(assignment: PartitionAssignment) -> int:
    """Number of vertices replicated on two or more partitions."""
    return int((replicas_per_vertex(assignment) > 1).sum())


def boundary_vertices_per_partition(assignment: PartitionAssignment) -> np.ndarray:
    """Per-partition count of *replicated* covered vertices.

    A vertex covered by exactly one partition is internal to it and never
    synchronized; everything else is boundary traffic for each holder.
    """
    cover = assignment.cover_matrix()
    replicated = cover.sum(axis=0) > 1
    return (cover & replicated).sum(axis=1).astype(np.int64)

"""Restreaming edge partitioning (multi-pass HDRF).

Nishimura & Ugander's *restreaming* model (discussed in the paper's
related work, Section 6) makes additional passes over the same edge
stream: later passes see the full state left by earlier ones, so early
uninformed placements get revised.  This module applies the idea to the
HDRF scorer as an extension beyond the paper's single-pass baselines —
HEP attacks the same uninformed-assignment problem with its in-memory
phase instead, which makes the two approaches directly comparable on
quality-vs-passes.

Implementation notes: replica state must support *removal* when an edge
moves, so instead of the boolean replica matrix this partitioner keeps a
per-(partition, vertex) incidence counter — a vertex stops being
replicated on a partition when its last incident edge leaves.

The per-edge revision loop lives in :func:`restream_block` so the
in-memory partitioner and the out-of-core driver
(:mod:`repro.stream.driver`, which re-reads an
:class:`~repro.stream.reader.EdgeChunkSource` once per pass) share one
code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.scoring import NEG_INF

__all__ = ["RestreamingHdrfPartitioner", "restream_block"]


def restream_block(
    pairs: np.ndarray,
    eids: np.ndarray,
    incidence: np.ndarray,
    loads: np.ndarray,
    degrees: np.ndarray,
    parts: np.ndarray,
    capacity: int,
    lam: float = 1.1,
    eps: float = 1.0,
) -> None:
    """Revise the assignment of a block of edges against shared state.

    For every edge the current placement (if any) is tentatively lifted
    out of ``incidence``/``loads``, the HDRF-style score is re-evaluated,
    and the edge lands on the best open partition (falling back to its
    old one when everything else is full).  Mutates ``incidence``,
    ``loads`` and ``parts`` in place; feeding the full edge list is one
    restreaming pass, feeding successive chunks of a re-read edge stream
    is the same pass out-of-core.
    """
    for i in range(pairs.shape[0]):
        u = int(pairs[i, 0])
        v = int(pairs[i, 1])
        e = int(eids[i])
        old = int(parts[e])
        if old >= 0:
            # Tentatively lift the edge out so scoring is unbiased.
            incidence[old, u] -= 1
            incidence[old, v] -= 1
            loads[old] -= 1
        p = _choose(incidence, loads, degrees, u, v, capacity, lam, eps)
        if p < 0:
            # No open partition (can only happen transiently while
            # the lifted edge frees one slot): put it back.
            if old < 0:
                raise CapacityError("restreaming: no open partition")
            p = old
        incidence[p, u] += 1
        incidence[p, v] += 1
        loads[p] += 1
        parts[e] = p


def _choose(
    incidence: np.ndarray,
    loads: np.ndarray,
    degrees: np.ndarray,
    u: int,
    v: int,
    capacity: int,
    lam: float,
    eps: float,
) -> int:
    du = degrees[u]
    dv = degrees[v]
    total = du + dv
    theta_u = du / total if total else 0.5
    theta_v = 1.0 - theta_u
    rep_u = incidence[:, u] > 0
    rep_v = incidence[:, v] > 0
    score = rep_u * (2.0 - theta_u) + rep_v * (2.0 - theta_v)
    maxload = loads.max()
    minload = loads.min()
    score = score + lam * (maxload - loads) / (eps + maxload - minload)
    score = np.where(loads < capacity, score, NEG_INF)
    p = int(np.argmax(score))
    if score[p] == NEG_INF:
        return -1
    return p


class RestreamingHdrfPartitioner(Partitioner):
    """HDRF with ``passes`` refinement passes over the edge stream."""

    def __init__(
        self,
        passes: int = 3,
        lam: float = 1.1,
        eps: float = 1.0,
        alpha: float = 1.0,
    ) -> None:
        if passes < 1:
            raise ConfigurationError(f"passes must be >= 1, got {passes}")
        self.passes = passes
        self.lam = lam
        self.eps = eps
        self.alpha = alpha
        self.name = f"ReHDRF-{passes}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Run ``passes`` revision sweeps over the edge list in place."""
        self._require_k(graph, k)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        n = graph.num_vertices
        m = graph.num_edges

        #: incidence[p, v] — edges of v currently assigned to p
        incidence = np.zeros((k, n), dtype=np.int32)
        loads = np.zeros(k, dtype=np.int64)
        parts = np.full(m, -1, dtype=np.int32)

        eids = np.arange(m, dtype=np.int64)
        for _ in range(self.passes):
            restream_block(
                graph.edges,
                eids,
                incidence,
                loads,
                graph.degrees,
                parts,
                capacity,
                self.lam,
                self.eps,
            )
        return PartitionAssignment(graph, k, parts)

"""Numbers the paper reports, embedded for paper-vs-measured comparison.

Absolute values are *not* expected to match — the paper measures C++ on
10^8–10^10-edge graphs over a 64-core server and a 32-machine Spark
cluster, this reproduction measures Python on ~10^5-edge synthetic
stand-ins.  What must match is the *shape*: orderings, ratios, and
crossovers.  EXPERIMENTS.md records both sides for every artifact.
"""

from __future__ import annotations

__all__ = [
    "TABLE4_PARTITION_TIME_S",
    "TABLE4_REPLICATION_FACTOR",
    "TABLE4_PAGERANK_S",
    "TABLE4_BFS_S",
    "TABLE4_CC_S",
    "TABLE5_VERTEX_BALANCE",
    "TABLE6_PAGING",
    "TABLE2_PRECOMPUTE_S",
    "FIGURE8_ANCHORS",
    "SHAPES",
]

# -- Table 4 (paper): partitioning time and processing times, k = 32 ---------

TABLE4_PARTITION_TIME_S = {
    # partitioner: {graph: seconds}
    "HEP-100": {"OK": 38, "IT": 101, "TW": 885},
    "HEP-10": {"OK": 37, "IT": 114, "TW": 779},
    "HEP-1": {"OK": 45, "IT": 272, "TW": 1091},
    "NE": {"OK": 88, "IT": 467, "TW": 3553},
    "SNE": {"OK": 110, "IT": 2488, "TW": 3149},
    "HDRF": {"OK": 52, "IT": 441, "TW": 758},
    "DBH": {"OK": 6, "IT": 31, "TW": 63},
}

TABLE4_REPLICATION_FACTOR = {
    "HEP-100": {"OK": 2.51, "IT": 1.06, "TW": 1.95},
    "HEP-10": {"OK": 2.86, "IT": 1.10, "TW": 1.99},
    "HEP-1": {"OK": 4.52, "IT": 1.25, "TW": 2.17},
    "NE": {"OK": 2.50, "IT": 1.04, "TW": 1.92},
    "SNE": {"OK": 4.57, "IT": 1.31, "TW": 2.80},
    "HDRF": {"OK": 10.78, "IT": 2.18, "TW": 3.61},
    "DBH": {"OK": 12.41, "IT": 5.04, "TW": 3.76},
}

TABLE4_PAGERANK_S = {
    "HEP-100": {"OK": 122, "IT": 628, "TW": 1239},
    "HEP-10": {"OK": 127, "IT": 570, "TW": 1242},
    "HEP-1": {"OK": 144, "IT": 538, "TW": 1495},
    "NE": {"OK": 117, "IT": 702, "TW": 1263},
    "SNE": {"OK": 148, "IT": 729, "TW": 1608},
    "HDRF": {"OK": 159, "IT": 617, "TW": 1440},
    "DBH": {"OK": 184, "IT": 932, "TW": 1381},
}

TABLE4_BFS_S = {
    "HEP-100": {"OK": 489, "IT": 2675, "TW": 10396},
    "HEP-10": {"OK": 503, "IT": 2508, "TW": 10544},
    "HEP-1": {"OK": 589, "IT": 2521, "TW": 11246},
    "NE": {"OK": 498, "IT": 2732, "TW": 10999},
    "SNE": {"OK": 572, "IT": 2732, "TW": 12083},
    "HDRF": {"OK": 585, "IT": 2815, "TW": 11953},
    "DBH": {"OK": 633, "IT": 3342, "TW": 11187},
}

TABLE4_CC_S = {
    "HEP-100": {"OK": 38, "IT": 244, "TW": 382},
    "HEP-10": {"OK": 38, "IT": 243, "TW": 382},
    "HEP-1": {"OK": 40, "IT": 236, "TW": 400},
    "NE": {"OK": 36, "IT": 250, "TW": 388},
    "SNE": {"OK": 45, "IT": 307, "TW": 458},
    "HDRF": {"OK": 42, "IT": 246, "TW": 433},
    "DBH": {"OK": 45, "IT": 279, "TW": 415},
}

# -- Table 5 (paper): vertex balancing (std / avg replicas per partition) ----

TABLE5_VERTEX_BALANCE = {
    "HEP-100": {"OK": 0.184, "IT": 0.425, "TW": 0.320},
    "HEP-10": {"OK": 0.168, "IT": 0.376, "TW": 0.222},
    "HEP-1": {"OK": 0.124, "IT": 0.196, "TW": 0.216},
}

# -- Table 6 (paper): paged NE++ on OK, k = 32 --------------------------------

TABLE6_PAGING = {
    # memory limit MB: (runtime seconds, hard page faults)
    1000: (42, 61_000),
    900: (65, 156_000),
    800: (116, 365_000),
    700: (205, 688_000),
    600: (374, 1_320_000),
    500: (587, 2_130_000),
    400: (1736, 5_790_000),
}

# -- Table 2 (paper): tau precompute run-time ---------------------------------

TABLE2_PRECOMPUTE_S = {
    "OK": 1, "IT": 7, "TW": 41, "FR": 45, "UK": 24, "GSH": 260, "WDC": 868,
}

# -- Figure 8 anchors (read off the plots / text) ------------------------------

FIGURE8_ANCHORS = {
    # (graph, k): {partitioner: replication factor}
    ("TW", 32): {"HEP-100": 1.99, "METIS": 5.68},
    ("OK", 32): {"NE": 2.50, "HDRF": 10.78, "DBH": 12.41},
}

# -- qualitative shapes, one line per artifact ---------------------------------

SHAPES = {
    "figure2": "RF grows with vertex degree for HDRF and NE; the low-degree"
               " buckets hold most vertices",
    "figure5": "normalized degree of S\\C vertices far exceeds that of cored"
               " vertices (cored ~1, remaining-secondary several times higher)",
    "figure7": "clean-up removes a minority of column entries; web graphs"
               " less than social graphs",
    "figure8": "RF: NE <= HEP-100 <= HEP-10 <= HEP-1 < streaming;"
               " memory: HEP-1 near streaming, in-memory 10x higher;"
               " runtime: DBH/Grid << HEP <= HDRF < NE < METIS",
    "figure9": "NE++ faster/smaller than NE on the same edges; HDRF phase"
               " beats random phase more as tau drops; h2h share grows as"
               " tau drops",
    "table1": "stateless streaming ~|E|; stateful streaming ~|E|*k;"
              " NE/NE++/HEP ~|E|(log|V|+k)",
    "table4": "HEP best total time for long jobs; DBH wins short jobs (CC);"
              " on the web graph low-tau HEP wins processing via balance",
    "table5": "vertex balance (std/avg) improves as tau decreases",
    "table6": "faults and runtime explode as the limit drops below the"
              " working set; HEP-1 at the same memory has none",
}

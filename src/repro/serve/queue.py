"""Bounded job queue, lifecycle states, and the background runner.

The :class:`JobManager` is the service's heart: clients submit a JSON
payload naming an edge file/manifest (or dataset stand-in), an
algorithm, ``k``, and any :class:`~repro.runtime.spec.JobSpec` knob;
the manager freezes it into a spec, derives the job id from the
store's content-addressed cache key (spec hash + input digest), and
enqueues it on a bounded :class:`asyncio.Queue`.  One background
runner drains the queue and executes each job with
:func:`~repro.runtime.api.run_job` on a single worker thread — pools
and shared memory stay per-run, exactly as in the CLI — while a
:class:`~repro.obs.bridge.SpanEventBridge` streams the run's trace
spans into the job's :class:`~repro.serve.events.EventLog` as progress
events.

Because the job id *is* the cache key, deduplication is free: an
identical spec submitted while the first is queued or running attaches
to the same :class:`Job` (one execution, shared event stream), and an
identical spec submitted after completion answers from the finished
record (whose artifact the :class:`~repro.runtime.store.ArtifactStore`
already holds).  Cancellation flips a :class:`threading.Event` the
runtime checks between planned stages — a cancelled run persists no
artifact, so a resubmit recomputes cleanly.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import JobCancelledError, ReproError
from repro.obs.bridge import SpanEventBridge, progress_event
from repro.obs.tracer import set_tracer
from repro.runtime.api import run_job, validate_spec
from repro.runtime.spec import JobSpec, make_job
from repro.runtime.store import ArtifactStore, input_digest
from repro.serve.events import EventLog

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "SubmitError",
]


class JobState:
    """Lifecycle states a job moves through (stringly, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: states no runner will touch again
    TERMINAL = (SUCCEEDED, FAILED, CANCELLED)


class SubmitError(ReproError):
    """A submit payload is invalid (unknown key, bad spec, missing input)."""


class QueueFullError(ReproError):
    """The bounded job queue is at capacity; retry after a job drains."""


#: payload keys forwarded to :func:`~repro.runtime.spec.make_job`
_SPEC_KEYS = frozenset({
    "chunk_size", "order", "seed", "prefetch", "mmap", "algo_params",
    "alpha", "tau", "memory_budget", "tau_grid", "id_bytes",
    "buffer_size", "spill_dir", "spill_compression", "workers", "batch",
    "metrics_workers", "shared_memory", "mp_context", "timeout",
})


@dataclass
class Job:
    """One submitted partitioning job and everything clients ask about."""

    id: str
    key: str
    spec: JobSpec
    source: str
    events: EventLog
    state: str = JobState.QUEUED
    submits: int = 1
    error: str | None = None
    summary: dict[str, Any] | None = None
    created_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> dict[str, Any]:
        """The job's status document (the ``GET /jobs/{id}`` body)."""
        doc: dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "content_hash": self.spec.content_hash(),
            "state": self.state,
            "source": self.source,
            "algo": self.spec.algo,
            "k": self.spec.k,
            "workers": self.spec.workers,
            "submits": self.submits,
            "events": len(self.events),
            "created_at": self.created_at,
        }
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.error is not None:
            doc["error"] = self.error
        if self.summary is not None:
            doc["result"] = self.summary
        return doc


def _summarize(result) -> dict[str, Any]:
    """Shrink a :class:`~repro.runtime.result.PartitionResult` to JSON."""
    return {
        "algorithm": result.algorithm,
        "k": result.k,
        "num_vertices": result.num_vertices,
        "num_edges": result.num_edges,
        "replication_factor": result.replication_factor,
        "edge_balance": result.edge_balance,
        "runtime_s": result.runtime_s,
        "tau": result.tau,
        "passes": result.passes,
        "loads": [int(x) for x in result.loads],
        "cache_hit": result.cache_hit,
        "stages_executed": list(result.stages_executed),
        "job_hash": result.job_hash,
    }


class JobManager:
    """Owns the job table, the bounded queue, and the runner thread."""

    def __init__(
        self,
        store: ArtifactStore,
        queue_size: int = 16,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        """Bind the manager to ``store`` and size the pending queue."""
        self.store = store
        self.jobs: dict[str, Job] = {}
        self._loop = loop or asyncio.get_event_loop()
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=queue_size)
        self._runner: asyncio.Task | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-runner"
        )
        self._draining = False
        self.executions = 0

    # -- submit/dedup --------------------------------------------------------

    def _build_spec(self, payload: dict[str, Any]) -> tuple[JobSpec, str]:
        """Freeze a submit payload into a (spec, source) pair or raise."""
        if not isinstance(payload, dict):
            raise SubmitError("submit body must be a JSON object")
        try:
            source = payload["source"]
            algo = payload.get("algo", "HDRF")
            k = payload["k"]
        except KeyError as exc:
            raise SubmitError(f"submit payload missing {exc.args[0]!r}")
        unknown = (
            set(payload) - _SPEC_KEYS - {"source", "algo", "k"}
        )
        if unknown:
            raise SubmitError(
                f"unknown submit key(s): {', '.join(sorted(unknown))}"
            )
        if not isinstance(source, str):
            raise SubmitError("source must be a path or dataset name string")
        options = {key: payload[key] for key in _SPEC_KEYS if key in payload}
        algo_params = options.pop("algo_params", ())
        try:
            spec = make_job(algo, source, int(k), algo_params=algo_params,
                            **options)
            validate_spec(spec)
        except (ReproError, TypeError, ValueError) as exc:
            raise SubmitError(f"invalid job spec: {exc}") from exc
        return spec, source

    async def submit(self, payload: dict[str, Any]) -> tuple[Job, bool]:
        """Submit a job; returns ``(job, created)``.

        ``created`` is ``False`` when the submit deduplicated onto an
        existing in-flight or completed job with the same cache key.
        A job that previously failed or was cancelled is resubmitted
        fresh under the same id (clean recompute).
        """
        spec, source = self._build_spec(payload)
        digest = await self._loop.run_in_executor(
            None, input_digest, spec, source
        )
        if digest is None:
            raise SubmitError(f"{source}: no such edge file or manifest")
        key = self.store.cache_key(spec, digest)
        job_id = key[:16]
        existing = self.jobs.get(job_id)
        if existing is not None and (
            existing.state not in (JobState.FAILED, JobState.CANCELLED)
        ):
            existing.submits += 1
            existing.events.append({
                "event": "dedup", "submits": existing.submits,
                "state": existing.state,
            })
            return existing, False
        if self._draining:
            raise QueueFullError("service is shutting down")
        job = Job(
            id=job_id, key=key, spec=spec, source=source,
            events=EventLog(self._loop),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} pending)"
            ) from None
        self.jobs[job_id] = job
        job.events.append({"event": "state", "state": JobState.QUEUED})
        return job, True

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the background runner task."""
        if self._runner is None:
            self._runner = self._loop.create_task(self._run_forever())

    async def _run_forever(self) -> None:
        while True:
            job = await self._queue.get()
            if job.state != JobState.QUEUED:
                continue  # cancelled while pending
            job.state = JobState.RUNNING
            job.events.append({"event": "state", "state": JobState.RUNNING})
            try:
                await self._loop.run_in_executor(
                    self._executor, self._execute, job
                )
            except asyncio.CancelledError:
                raise
            finally:
                job.events.close()

    def _execute(self, job: Job) -> None:
        """Run one job on the runner thread (never raises)."""
        def forward(record: dict[str, Any]) -> None:
            """Hop a trace span onto the loop as a progress event."""
            event = progress_event(record)
            if event is not None:
                job.events.append_threadsafe(event)

        bridge = SpanEventBridge(forward)
        previous = set_tracer(bridge)
        try:
            result = run_job(
                job.spec, job.source, store=self.store,
                cancel=job.cancel_event,
            )
        except JobCancelledError as exc:
            job.state = JobState.CANCELLED
            job.error = str(exc)
            job.events.append_threadsafe(
                {"event": "state", "state": JobState.CANCELLED}
            )
        except BaseException as exc:  # noqa: BLE001 — runner must survive
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            job.events.append_threadsafe(
                {"event": "state", "state": JobState.FAILED,
                 "error": job.error}
            )
        else:
            self.executions += 1
            job.summary = _summarize(result)
            job.state = JobState.SUCCEEDED
            job.events.append_threadsafe({
                "event": "state", "state": JobState.SUCCEEDED,
                "cache_hit": result.cache_hit,
                "replication_factor": result.replication_factor,
                "edge_balance": result.edge_balance,
            })
        finally:
            job.finished_at = time.time()
            set_tracer(previous)

    async def cancel(self, job_id: str) -> Job | None:
        """Cancel a queued or running job; ``None`` for unknown ids.

        A queued job flips straight to ``cancelled``; a running job's
        event is set and the runtime raises at the next stage boundary
        (the state flips when the runner observes it).
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state == JobState.QUEUED:
            job.state = JobState.CANCELLED
            job.error = "cancelled while queued"
            job.events.append(
                {"event": "state", "state": JobState.CANCELLED}
            )
            job.events.close()
        elif job.state == JobState.RUNNING:
            job.cancel_event.set()
        return job

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, cancel pending, stop the runner.

        Queued jobs flip to ``cancelled``; a running job's cancel event
        is set so the runtime stops at the next stage boundary; the
        runner thread is joined before returning, which also tears down
        any warm pool the run held (``executor.finish`` runs inside
        ``run_job``).
        """
        self._draining = True
        for job in self.jobs.values():
            if job.state == JobState.QUEUED:
                await self.cancel(job.id)
            elif job.state == JobState.RUNNING:
                job.cancel_event.set()
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None
        await self._loop.run_in_executor(None, self._executor.shutdown)

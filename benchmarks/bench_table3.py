"""Bench: regenerate Table 3 (dataset corpus and stand-in statistics)."""

from repro.experiments import table3


def bench_table3_datasets(benchmark, record_experiment):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    record_experiment(result)
    assert len(result.rows) == 10  # the full Table 3 corpus
    social_skews = [
        float(r["skew(p99/med)"]) for r in result.rows if r["type"] == "Social"
    ]
    assert all(s > 5 for s in social_skews), "social stand-ins must be heavy-tailed"

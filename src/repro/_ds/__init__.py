"""Low-level data structures used by the in-memory partitioning phase.

The paper's Section 4.2 enumerates the structures an efficient HEP
implementation needs: dense bitsets for the core set ``C`` and secondary
sets ``S_i``, and a binary min-heap with a vertex-id lookup table so that
``d_ext`` updates are ``O(log |V|)``.  These are implemented here once and
reused by NE, NE++, SNE and DNE.
"""

from repro._ds.bitset import Bitset, PackedBitset
from repro._ds.indexed_heap import IndexedMinHeap

__all__ = ["Bitset", "PackedBitset", "IndexedMinHeap"]

"""Persisting partitionings for downstream consumers.

A graph processing system ingests a partitioning either as a per-edge
assignment vector or as one edge-list file per partition (the format a
Spark/GraphX loader shards on).  Both are provided, with lossless
round-trips.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import Graph, write_binary_edgelist
from repro.partition.base import PartitionAssignment

__all__ = [
    "write_assignment",
    "read_assignment",
    "write_partition_edgelists",
]


def write_assignment(
    assignment: PartitionAssignment, path: str | os.PathLike
) -> None:
    """Write ``parts`` plus a JSON sidecar describing the run.

    The vector file has one ascii partition id per line, aligned with the
    canonical edge order; the ``.meta.json`` sidecar carries ``k``, edge
    and vertex counts so a reader can validate alignment.
    """
    path = Path(path)
    np.savetxt(path, assignment.parts, fmt="%d")
    sidecar = path.with_suffix(path.suffix + ".meta.json")
    sidecar.write_text(
        json.dumps(
            {
                "k": assignment.k,
                "num_edges": assignment.graph.num_edges,
                "num_vertices": assignment.graph.num_vertices,
                "graph_name": assignment.graph.name,
            },
            indent=2,
        ),
        encoding="ascii",
    )


def read_assignment(
    graph: Graph, path: str | os.PathLike
) -> PartitionAssignment:
    """Read an assignment written by :func:`write_assignment`, validating
    the sidecar against ``graph``."""
    path = Path(path)
    sidecar = path.with_suffix(path.suffix + ".meta.json")
    if not sidecar.exists():
        raise GraphFormatError(f"missing sidecar {sidecar}")
    meta = json.loads(sidecar.read_text(encoding="ascii"))
    if meta["num_edges"] != graph.num_edges:
        raise GraphFormatError(
            f"assignment was for {meta['num_edges']} edges, graph has "
            f"{graph.num_edges}"
        )
    if meta["num_vertices"] != graph.num_vertices:
        raise GraphFormatError("vertex universe mismatch")
    parts = np.loadtxt(path, dtype=np.int32).reshape(-1)
    return PartitionAssignment(graph, int(meta["k"]), parts)


def write_partition_edgelists(
    assignment: PartitionAssignment, directory: str | os.PathLike
) -> list[Path]:
    """Write one binary edge list per partition (``part-00000.bin`` ...).

    Returns the created paths.  Empty partitions still produce (empty)
    files so loaders can address shards positionally.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph = assignment.graph
    paths = []
    for p in range(assignment.k):
        shard = graph.subgraph_edges(assignment.parts == p, name=f"part-{p:05d}")
        path = directory / f"part-{p:05d}.bin"
        write_binary_edgelist(shard, path)
        paths.append(path)
    return paths

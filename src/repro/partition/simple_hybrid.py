"""Simple hybrid baseline (paper Section 5.4).

To show that HEP's gains come from its *specific* design (NE++ plus
informed HDRF) and not from hybrid partitioning per se, the paper builds
the obvious alternative: split the graph at the same ``tau`` threshold,
run plain NE on ``G_REST`` and *random* streaming on ``G_H2H``.  Figure 9
normalizes this baseline against HEP; this class is that baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edgelist import Graph
from repro.graph.pruned import split_edges
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.ne import NePartitioner
from repro.partition.random_stream import random_stream

__all__ = ["SimpleHybridPartitioner"]


class SimpleHybridPartitioner(Partitioner):
    """NE on the low-degree subgraph + random streaming on h2h edges."""

    def __init__(self, tau: float = 10.0, alpha: float = 1.0, seed: int = 0) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.alpha = alpha
        self.seed = seed
        self.name = f"NE+Rand-{tau:g}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """NE++ on the pruned graph, random streaming for h2h edges."""
        self._require_k(graph, k)
        split = split_edges(graph, self.tau)
        h2h_mask = split.h2h_mask
        rest_eids = np.flatnonzero(~h2h_mask)
        h2h_eids = np.flatnonzero(h2h_mask)

        parts = np.full(graph.num_edges, -1, dtype=np.int32)
        loads = np.zeros(k, dtype=np.int64)

        if rest_eids.size:
            rest_graph = graph.subgraph_edges(~h2h_mask, name=f"{graph.name}-rest")
            rest_assignment = NePartitioner(seed=self.seed).partition(rest_graph, k)
            parts[rest_eids] = rest_assignment.parts
            loads += rest_assignment.partition_sizes()

        if h2h_eids.size:
            capacity = capacity_bound(graph.num_edges, k, self.alpha)
            capacity = max(capacity, int(loads.max()) + 1)
            random_stream(
                int(h2h_eids.size),
                h2h_eids,
                parts,
                k,
                capacity,
                loads=loads,
                seed=self.seed,
            )
        return PartitionAssignment(graph, k, parts)

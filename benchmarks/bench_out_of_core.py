"""Bench: regenerate the out-of-core baseline comparison."""

from repro.experiments import out_of_core


def bench_out_of_core_baselines(benchmark, record_experiment):
    result = benchmark.pedantic(out_of_core.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # Natural-order streaming must reproduce the in-memory runs bit for
    # bit — the subsystem's defining property (HEP row included).
    assert all(r["identical"] for r in result.rows)

"""SNE: streaming neighborhood expansion (the NE paper's bounded-memory
variant, used as a streaming baseline in the HEP evaluation).

SNE keeps only a *sample buffer* of ``sample_factor * |E| / k`` edges in
memory (the paper's Appendix A uses sample size 2).  Partitions are
carved one at a time by running neighborhood expansion on the buffered
subgraph; assigned edges leave the buffer, which is then refilled from
the input stream.  Because each expansion only sees the buffered
fraction of the graph, its quality sits between pure streaming and
in-memory NE — exactly where Figure 8 places it.
"""

from __future__ import annotations

import numpy as np

from repro._ds import IndexedMinHeap
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound

__all__ = ["SnePartitioner"]


class SnePartitioner(Partitioner):
    """Chunked neighborhood expansion over a bounded edge buffer."""

    def __init__(self, sample_factor: float = 2.0, seed: int = 0) -> None:
        if sample_factor < 1.0:
            raise ValueError("sample_factor must be >= 1.0")
        self.sample_factor = sample_factor
        self.seed = seed
        self.name = "SNE"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Sampled neighborhood expansion over the whole edge set."""
        self._require_k(graph, k)
        run = _SneRun(graph, k, self.sample_factor, self.seed)
        return PartitionAssignment(graph, k, run.execute())


class _SneRun:
    def __init__(self, graph: Graph, k: int, sample_factor: float, seed: int):
        self.graph = graph
        self.k = k
        self.m = graph.num_edges
        self.capacity = capacity_bound(self.m, k)
        self.buffer_capacity = max(int(sample_factor * self.capacity), 4)
        self.parts = np.full(self.m, -1, dtype=np.int32)
        self.loads = np.zeros(k, dtype=np.int64)
        # Buffered subgraph: vertex -> {neighbor: edge id}.
        self.adj: dict[int, dict[int, int]] = {}
        self.buffered = 0
        self.cursor = 0  # position in the edge stream
        self.rng = np.random.default_rng(seed)

    # -- buffer management ------------------------------------------------------

    def _refill(self) -> None:
        edges = self.graph.edges
        while self.buffered < self.buffer_capacity and self.cursor < self.m:
            e = self.cursor
            self.cursor += 1
            u = int(edges[e, 0])
            v = int(edges[e, 1])
            self.adj.setdefault(u, {})[v] = e
            self.adj.setdefault(v, {})[u] = e
            self.buffered += 1

    def _drop_edge(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            nbrs = self.adj.get(a)
            if nbrs is not None and b in nbrs:
                del nbrs[b]
                if not nbrs:
                    del self.adj[a]
        self.buffered -= 1

    # -- driver ----------------------------------------------------------------

    def execute(self) -> np.ndarray:
        for i in range(self.k - 1):
            self._refill()
            self._expand_partition(i)
        self._assign_remainder()
        return self.parts

    def _expand_partition(self, i: int) -> None:
        """Neighborhood expansion over the buffered subgraph only."""
        in_core: set[int] = set()
        in_secondary: set[int] = set()
        heap = IndexedMinHeap()

        def buffered_degree(v: int) -> int:
            """Degree of v counting only buffered (not yet assigned) edges."""
            return len(self.adj.get(v, ()))

        def assign(u: int, v: int, eid: int) -> None:
            """Commit one edge to partition p."""
            self.parts[eid] = i
            self.loads[i] += 1
            self._drop_edge(u, v)

        def move_to_secondary(v: int) -> None:
            """Pull v into the current secondary set, buffering its edges."""
            in_secondary.add(v)
            dext = 0
            for w, eid in list(self.adj.get(v, {}).items()):
                if w in in_core or w in in_secondary:
                    assign(v, w, eid)
                    if w in heap:
                        heap.decrement(w)
                else:
                    dext += 1
            heap.push(v, dext)

        def move_to_core(v: int) -> None:
            """Promote v from the secondary set to the core."""
            in_core.add(v)
            heap.discard(v)
            for w in list(self.adj.get(v, {})):
                if w not in in_core and w not in in_secondary:
                    move_to_secondary(w)

        while self.loads[i] < self.capacity:
            self._refill()
            if not self.adj and self.cursor >= self.m:
                return
            if heap:
                v, _ = heap.pop_min()
                move_to_core(v)
            else:
                seed = self._pick_seed(in_core)
                if seed is None:
                    return
                move_to_core(seed)

    def _pick_seed(self, in_core: set[int]) -> int | None:
        """Lowest-buffered-degree vertex outside the core (the sample is
        small, so a scan is cheap and favors tight expansions)."""
        best = None
        best_deg = None
        for v, nbrs in self.adj.items():
            if v in in_core or not nbrs:
                continue
            d = len(nbrs)
            if best_deg is None or d < best_deg:
                best, best_deg = v, d
                if d == 1:
                    break
        return best

    def _assign_remainder(self) -> None:
        """Everything still unassigned goes to the remaining partitions in
        stream order, respecting the capacity bound."""
        i = self.k - 1
        for e in np.flatnonzero(self.parts < 0).tolist():
            while self.loads[i] >= self.capacity:
                i = (i + 1) % self.k
            self.parts[e] = i
            self.loads[i] += 1

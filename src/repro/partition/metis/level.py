"""Weighted level graphs for the multilevel partitioner.

Each coarsening level is an undirected graph with vertex weights (we
weight by degree of the original graph, per the paper's Appendix A
conversion recipe) and edge weights (collapsed multiplicities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["LevelGraph"]


@dataclass
class LevelGraph:
    """Adjacency-list graph with vertex and edge weights."""

    num_vertices: int
    vertex_weights: np.ndarray          # (n,) float64
    adj: list[dict[int, float]]         # neighbor -> edge weight

    @classmethod
    def from_graph(cls, graph: Graph, vertex_weights: np.ndarray | None = None
                   ) -> "LevelGraph":
        """Weighted adjacency-map view of an edge-list graph."""
        n = graph.num_vertices
        if vertex_weights is None:
            # Degree weighting makes vertex balance approximate edge balance
            # after the vertex->edge conversion (paper Appendix A).
            vertex_weights = np.maximum(graph.degrees.astype(np.float64), 1.0)
        adj: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v in graph.edges.tolist():
            adj[u][v] = adj[u].get(v, 0.0) + 1.0
            adj[v][u] = adj[v].get(u, 0.0) + 1.0
        return cls(n, np.asarray(vertex_weights, dtype=np.float64), adj)

    @property
    def total_weight(self) -> float:
        """Sum of all vertex weights at this level."""
        return float(self.vertex_weights.sum())

    def num_edges(self) -> int:
        """Number of distinct coarse edges at this level."""
        return sum(len(d) for d in self.adj) // 2

    def cut_weight(self, side: np.ndarray) -> float:
        """Total weight of edges crossing the bisection ``side``."""
        cut = 0.0
        for u in range(self.num_vertices):
            su = side[u]
            for v, w in self.adj[u].items():
                if v > u and side[v] != su:
                    cut += w
        return cut

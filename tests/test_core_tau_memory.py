"""Tests for tau selection (Section 4.4) and the memory models (4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory_model import (
    dne_memory_bytes,
    hep_memory_bytes,
    memory_model_for,
    metis_memory_bytes,
    ne_memory_bytes,
    ne_plus_plus_memory_bytes,
    pruned_column_entries,
    sne_memory_bytes,
    stateless_memory_bytes,
    streaming_memory_bytes,
)
from repro.core.tau import (
    DEFAULT_TAU_GRID,
    h2h_edge_fraction_curve,
    precompute_profile,
    select_tau,
)
from repro.errors import ConfigurationError
from repro.graph import CsrGraph, Graph, build_pruned_csr
from repro.graph.generators import chung_lu, erdos_renyi


@pytest.fixture(scope="module")
def graph() -> Graph:
    return chung_lu(800, mean_degree=12, exponent=2.2, seed=7, name="g")


class TestPrunedColumnEntries:
    def test_matches_actual_csr(self, graph):
        """The degree-only formula must equal the built CSR's column size."""
        for tau in (0.5, 1.0, 2.0, 10.0):
            csr = build_pruned_csr(graph, tau)
            assert pruned_column_entries(graph, tau) == csr.col.size

    def test_unpruned_is_2m(self, graph):
        assert pruned_column_entries(graph, 1e9) == 2 * graph.num_edges

    def test_monotone_in_tau(self, graph):
        sizes = [pruned_column_entries(graph, t) for t in (0.5, 1.0, 2.0, 5.0, 100.0)]
        assert sizes == sorted(sizes)


class TestHepMemoryModel:
    def test_paper_formula_components(self, graph):
        """Total = column + 6|V|b + |V|(k+1)/8 (+1 rounding guard)."""
        k, b = 8, 4
        expected = (
            pruned_column_entries(graph, 2.0) * b
            + 6 * graph.num_vertices * b
            + graph.num_vertices * (k + 1) // 8
            + 1
        )
        assert hep_memory_bytes(graph, 2.0, k, id_bytes=b) == expected

    def test_monotone_in_tau(self, graph):
        ms = [hep_memory_bytes(graph, t, 8) for t in (0.5, 1.0, 10.0, 100.0)]
        assert ms == sorted(ms)

    def test_k_increases_bitset_cost(self, graph):
        assert hep_memory_bytes(graph, 1.0, 256) > hep_memory_bytes(graph, 1.0, 4)

    def test_rejects_bad_k(self, graph):
        with pytest.raises(ConfigurationError):
            hep_memory_bytes(graph, 1.0, 0)


class TestComparativeModels:
    def test_paper_memory_ordering(self, graph):
        """Figure 8(c,f,i,l,o)'s ordering: streaming < HEP-1 < HEP-100 <=
        NE++ < NE < METIS/DNE."""
        k = 32
        stream = streaming_memory_bytes(graph, k)
        hep1 = hep_memory_bytes(graph, 1.0, k)
        hep100 = hep_memory_bytes(graph, 100.0, k)
        nepp = ne_plus_plus_memory_bytes(graph, k)
        ne = ne_memory_bytes(graph, k)
        assert stream < hep1 < hep100 <= nepp < ne
        assert ne < dne_memory_bytes(graph, k)
        assert ne < metis_memory_bytes(graph, k)

    def test_stateless_cheapest(self, graph):
        k = 32
        assert stateless_memory_bytes(graph, k) < streaming_memory_bytes(graph, k)

    def test_sne_below_ne(self, graph):
        assert sne_memory_bytes(graph, 32) < ne_memory_bytes(graph, 32)

    def test_dispatcher_names(self, graph):
        for name in ("HEP-10", "HEP-1", "NE", "NE++", "SNE", "DNE", "METIS",
                     "HDRF", "Greedy", "ADWISE", "DBH", "Grid", "Random"):
            assert memory_model_for(name, graph, 8) > 0

    def test_dispatcher_hep_inf(self, graph):
        assert memory_model_for("HEP-inf", graph, 8) == ne_plus_plus_memory_bytes(
            graph, 8
        )

    def test_dispatcher_unknown(self, graph):
        with pytest.raises(ConfigurationError):
            memory_model_for("FOO", graph, 8)


class TestTauSelection:
    def test_profile_has_all_taus(self, graph):
        profile = precompute_profile(graph, 8)
        assert profile.taus == DEFAULT_TAU_GRID
        assert len(profile.bytes_per_tau) == len(DEFAULT_TAU_GRID)
        assert profile.precompute_seconds >= 0
        assert len(profile.rows()) == len(DEFAULT_TAU_GRID)

    def test_select_max_tau_under_budget(self, graph):
        # A budget between HEP-1 and HEP-100 footprints must select an
        # intermediate tau, and the projection must respect the budget.
        lo = hep_memory_bytes(graph, min(DEFAULT_TAU_GRID), 8)
        hi = hep_memory_bytes(graph, max(DEFAULT_TAU_GRID), 8)
        budget = (lo + hi) // 2
        tau, projected = select_tau(graph, budget, 8)
        assert projected <= budget
        # Maximality: the next-larger grid tau must exceed the budget.
        larger = [t for t in DEFAULT_TAU_GRID if t > tau]
        if larger:
            assert hep_memory_bytes(graph, min(larger), 8) > budget

    def test_generous_budget_picks_largest_tau(self, graph):
        tau, _ = select_tau(graph, 10**12, 8)
        assert tau == max(DEFAULT_TAU_GRID)

    def test_impossible_budget_raises(self, graph):
        with pytest.raises(ConfigurationError):
            select_tau(graph, 10, 8)

    def test_empty_grid_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            precompute_profile(graph, 8, taus=())

    def test_h2h_fraction_curve_monotone(self, graph):
        curve = h2h_edge_fraction_curve(graph)
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions, reverse=True)
        assert all(0.0 <= f <= 1.0 for f in fractions)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(10, 80),
    m=st.integers(10, 200),
    tau=st.sampled_from([0.5, 1.0, 2.0, 5.0]),
    seed=st.integers(0, 5),
)
def test_column_formula_matches_csr_property(n, m, tau, seed):
    g = erdos_renyi(n, m, seed=seed)
    csr = build_pruned_csr(g, tau)
    assert pruned_column_entries(g, tau) == csr.col.size


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 60),
    m=st.integers(10, 150),
    seed=st.integers(0, 5),
    budget_frac=st.floats(0.2, 1.0),
)
def test_select_tau_respects_budget_property(n, m, seed, budget_frac):
    g = erdos_renyi(n, m, seed=seed)
    hi = hep_memory_bytes(g, max(DEFAULT_TAU_GRID), 8)
    lo = hep_memory_bytes(g, min(DEFAULT_TAU_GRID), 8)
    budget = int(lo + (hi - lo) * budget_frac)
    try:
        tau, projected = select_tau(g, budget, 8)
    except ConfigurationError:
        assert budget < lo
        return
    assert projected <= budget
    assert tau in DEFAULT_TAU_GRID

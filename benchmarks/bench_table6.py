"""Bench: regenerate Table 6 (paging vs the tau knob)."""

from repro.experiments import table6


def bench_table6_paging(benchmark, record_experiment):
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    record_experiment(result)
    paged = [r for r in result.rows if isinstance(r["hard_faults"], int)
             and r["runtime_s"] != "-"]
    faults = [int(r["hard_faults"]) for r in paged]
    # The blow-up shape: monotone fault growth, strong at the tight end.
    assert faults == sorted(faults), faults
    assert faults[-1] > 3 * max(faults[0], 1), faults

"""Seeded hypergraph generators for the extension's tests and benches."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hypergraph.container import Hypergraph

__all__ = ["powerlaw_hypergraph", "clustered_hypergraph"]


def powerlaw_hypergraph(
    num_vertices: int,
    num_hyperedges: int,
    mean_pins: float = 4.0,
    exponent: float = 2.2,
    seed: int = 0,
) -> Hypergraph:
    """Hyperedges with geometric pin counts, pins drawn from a power law.

    The vertex-degree distribution is heavy-tailed, mirroring the paper's
    rationale for treating high-degree vertices separately.
    """
    if num_vertices < 2 or num_hyperedges < 1:
        raise ConfigurationError("need >= 2 vertices and >= 1 hyperedge")
    if mean_pins < 2:
        raise ConfigurationError("mean_pins must be >= 2")
    rng = np.random.default_rng(seed)
    weights = (np.arange(num_vertices) + 1.0) ** (-1.0 / (exponent - 1.0))
    prob = weights / weights.sum()
    perm = rng.permutation(num_vertices)
    hyperedges: list[list[int]] = []
    while len(hyperedges) < num_hyperedges:
        size = 2 + rng.geometric(1.0 / (mean_pins - 1.0))
        size = min(size, num_vertices)
        pins = np.unique(rng.choice(num_vertices, size=size, p=prob))
        if pins.size >= 2:
            hyperedges.append(perm[pins].tolist())
    return Hypergraph.from_hyperedges(hyperedges, num_vertices=num_vertices)


def clustered_hypergraph(
    num_clusters: int,
    cluster_size: int,
    hyperedges_per_cluster: int,
    mean_pins: float = 4.0,
    crossover: float = 0.05,
    seed: int = 0,
) -> Hypergraph:
    """Community-structured hypergraph: most hyperedges stay inside one
    vertex cluster; ``crossover`` of them span two clusters.  The analogue
    of the web-graph stand-ins where locality rewards in-memory
    expansion."""
    if num_clusters < 1 or cluster_size < 2:
        raise ConfigurationError("need >= 1 cluster of size >= 2")
    rng = np.random.default_rng(seed)
    n = num_clusters * cluster_size
    hyperedges: list[list[int]] = []
    for c in range(num_clusters):
        base = c * cluster_size
        for _ in range(hyperedges_per_cluster):
            size = max(2, min(
                2 + rng.geometric(1.0 / (mean_pins - 1.0)), cluster_size
            ))
            pins = base + rng.choice(cluster_size, size=size, replace=False)
            if rng.random() < crossover:
                other = int(rng.integers(0, num_clusters)) * cluster_size
                pins = np.append(pins[:-1], other + rng.integers(0, cluster_size))
            unique = np.unique(pins)
            if unique.size >= 2:
                hyperedges.append(unique.tolist())
    return Hypergraph.from_hyperedges(hyperedges, num_vertices=n)

"""Bench: stream-order sensitivity of streaming partitioners vs HEP."""

from repro.experiments import stream_order


def bench_stream_order(benchmark, record_experiment):
    result = benchmark.pedantic(stream_order.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    assert any("HEP less order-sensitive than HDRF: True" in n
               for n in result.notes)

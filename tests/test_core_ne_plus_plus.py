"""Tests for NE++ — pruning, lazy removal, sweep, and the NE++/NE relation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ne_plus_plus import (
    NePlusPlusPartitioner,
    run_ne_plus_plus,
)
from repro.errors import ConfigurationError
from repro.graph import Graph
from repro.graph.generators import chung_lu, community_web, erdos_renyi, grid2d, ring, star
from repro.metrics import assert_valid, replication_factor
from repro.partition import RandomStreamPartitioner
from repro.partition.ne import NePartitioner


@pytest.fixture(scope="module")
def social_graph() -> Graph:
    return chung_lu(500, mean_degree=10, exponent=2.3, seed=11, name="soc")


class TestUnprunedNePlusPlus:
    """tau = inf: NE++ is a complete in-memory partitioner."""

    def test_valid_complete(self, social_graph):
        a = NePlusPlusPartitioner().partition(social_graph, 4)
        assert_valid(a, alpha=1.5)
        assert a.num_unassigned == 0

    def test_every_edge_exactly_once(self, social_graph):
        a = NePlusPlusPartitioner().partition(social_graph, 4)
        sizes = a.partition_sizes()
        assert sizes.sum() == social_graph.num_edges

    def test_deterministic(self, social_graph):
        a = NePlusPlusPartitioner().partition(social_graph, 4)
        b = NePlusPlusPartitioner().partition(social_graph, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_quality_comparable_to_ne(self, social_graph):
        """The paper: NE++ yields the same partitioning quality as NE.
        Seeds differ (sequential vs random) so require parity within 20%."""
        rf_nepp = replication_factor(
            NePlusPlusPartitioner().partition(social_graph, 8)
        )
        rf_ne = replication_factor(NePartitioner().partition(social_graph, 8))
        assert rf_nepp <= rf_ne * 1.2

    def test_beats_random(self, social_graph):
        rf = replication_factor(NePlusPlusPartitioner().partition(social_graph, 8))
        rf_rand = replication_factor(
            RandomStreamPartitioner().partition(social_graph, 8)
        )
        assert rf < rf_rand

    def test_grid_contiguity(self):
        a = NePlusPlusPartitioner().partition(grid2d(20, 20), 4)
        assert replication_factor(a) < 1.35

    def test_rejects_k1(self, social_graph):
        with pytest.raises(ConfigurationError):
            run_ne_plus_plus(social_graph, 1)

    def test_disconnected_components(self):
        r1 = ring(30).edges
        r2 = ring(30).edges + 30
        g = Graph.from_edges(np.vstack([r1, r2]), num_vertices=60)
        a = NePlusPlusPartitioner().partition(g, 4)
        assert_valid(a, alpha=1.5)


class TestPrunedPhase:
    """Finite tau: the in-memory phase must assign exactly the non-h2h
    edges and leave the h2h edges for streaming."""

    @pytest.mark.parametrize("tau", [0.5, 1.0, 2.0, 10.0])
    def test_inmemory_edges_assigned_h2h_left(self, social_graph, tau):
        result = run_ne_plus_plus(social_graph, 4, tau=tau)
        h2h_ids = set(result.h2h.eids.tolist())
        for e in range(social_graph.num_edges):
            if e in h2h_ids:
                assert result.parts[e] == -1, f"h2h edge {e} assigned in phase 1"
            else:
                assert result.parts[e] >= 0, f"in-memory edge {e} unassigned"

    def test_loads_match_assignments(self, social_graph):
        result = run_ne_plus_plus(social_graph, 4, tau=1.0)
        assigned = result.parts[result.parts >= 0]
        assert np.array_equal(
            result.loads, np.bincount(assigned, minlength=4).astype(np.int64)
        )

    def test_high_vertices_never_cored(self, social_graph):
        result = run_ne_plus_plus(social_graph, 4, tau=1.0)
        # Every edge incident to a high-degree vertex must be assigned from
        # the low side; cores must all be low-degree.  Secondary sets can
        # contain high vertices.
        high = result.high_mask
        # Reconstruct core set: a vertex whose *every* partition-coverage
        # came via expansion... simpler: check stats counters.
        assert result.stats.num_cored > 0
        # High-degree vertices keep no adjacency, so coring one would have
        # crashed; reaching here with valid loads is the structural check.
        assert high.sum() > 0

    def test_secondary_matrix_covers_assignments(self, social_graph):
        """Every endpoint of an edge assigned to p_i must be marked in
        S_i — the replica state handed to the streaming phase."""
        result = run_ne_plus_plus(social_graph, 4, tau=2.0)
        edges = social_graph.edges
        for e in np.flatnonzero(result.parts >= 0).tolist():
            p = result.parts[e]
            u, v = edges[e]
            assert result.secondary[p, u], f"edge {e}: endpoint {u} not in S_{p}"
            assert result.secondary[p, v], f"edge {e}: endpoint {v} not in S_{p}"

    def test_tau_monotone_h2h(self, social_graph):
        h2h_counts = [
            run_ne_plus_plus(social_graph, 4, tau=tau).h2h.num_edges
            for tau in (0.5, 1.0, 2.0, 5.0)
        ]
        assert h2h_counts == sorted(h2h_counts, reverse=True)

    def test_balanced_inmemory_loads(self, social_graph):
        """The adapted capacity bound distributes in-memory edges evenly."""
        result = run_ne_plus_plus(social_graph, 8, tau=2.0)
        cap = -(-result.num_inmemory_edges // 8)
        # Expansion partitions obey the bound up to one spill step.
        assert result.loads.max() <= cap * 1.3


class TestLazyRemoval:
    def test_cleanup_fraction_small(self, social_graph):
        """Figure 7: only part of the column array is ever touched by
        clean-up.  (The fraction shrinks with graph size — boundaries are
        surface-like — so the bound here is loose for a 500-vertex graph;
        the Figure 7 bench reports the measured values.)"""
        result = run_ne_plus_plus(social_graph, 32, tau=float("inf"))
        frac = result.stats.cleanup_removed_fraction
        assert 0.0 < frac < 0.8

    def test_cleanup_smaller_on_web_graphs(self):
        """Figure 7's shape: web-like community graphs remove less than
        social graphs because secondary sets stay tighter."""
        web = community_web(10, 80, intra_mean_degree=8, inter_fraction=0.01, seed=3)
        soc = chung_lu(800, mean_degree=10, exponent=2.1, seed=3)
        f_web = run_ne_plus_plus(web, 32).stats.cleanup_removed_fraction
        f_soc = run_ne_plus_plus(soc, 32).stats.cleanup_removed_fraction
        assert f_web < f_soc

    def test_stats_counters_populated(self, social_graph):
        result = run_ne_plus_plus(social_graph, 4, tau=2.0, record_degrees=True)
        s = result.stats
        assert s.initial_column_entries > 0
        assert s.num_seeds >= 1
        assert s.num_cored >= s.num_seeds
        assert s.core_degrees
        assert s.secondary_end_degrees

    def test_figure5_phenomenon_in_ne_plus_plus(self, social_graph):
        result = run_ne_plus_plus(social_graph, 8, record_degrees=True)
        mean = social_graph.mean_degree
        core = np.mean(result.stats.core_degrees) / mean
        sec = np.mean(result.stats.secondary_end_degrees) / mean
        assert sec > core


class TestTraceHook:
    def test_trace_records_walks(self, social_graph):
        walks: list[int] = []
        run_ne_plus_plus(social_graph, 4, tau=2.0, trace_walk=walks.append)
        assert len(walks) > social_graph.num_vertices / 4
        assert all(0 <= v < social_graph.num_vertices for v in walks)

    def test_trace_absent_same_result(self, social_graph):
        a = run_ne_plus_plus(social_graph, 4, tau=2.0)
        b = run_ne_plus_plus(social_graph, 4, tau=2.0, trace_walk=lambda v: None)
        assert np.array_equal(a.parts, b.parts)


class TestEdgeCases:
    def test_star_tau_prunes_hub(self):
        g = star(64)
        # Hub degree 63, mean ~1.97: tau=2 keeps threshold below 63.
        result = run_ne_plus_plus(g, 4, tau=2.0)
        assert result.high_mask[0]
        assert result.h2h.num_edges == 0  # leaves are low-degree
        assert (result.parts >= 0).all()

    def test_two_hubs_h2h(self):
        # Double star with a bridge between hubs: the bridge is h2h.
        edges = [(0, i) for i in range(2, 20)] + [(1, i) for i in range(20, 38)]
        edges.append((0, 1))
        g = Graph.from_edges(edges, num_vertices=38)
        result = run_ne_plus_plus(g, 2, tau=1.5)
        assert result.high_mask[0] and result.high_mask[1]
        assert result.h2h.num_edges == 1
        bridge = result.h2h.eids[0]
        assert result.parts[bridge] == -1
        others = np.delete(np.arange(g.num_edges), bridge)
        assert (result.parts[others] >= 0).all()

    def test_tiny_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        a = NePlusPlusPartitioner().partition(g, 2)
        assert (a.parts >= 0).all()

    def test_all_edges_h2h(self):
        # Clique of 4 with tau small: every vertex high-degree.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], num_vertices=4
        )
        result = run_ne_plus_plus(g, 2, tau=0.1)
        assert result.h2h.num_edges == 6
        assert (result.parts == -1).all()
        assert result.loads.sum() == 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(6, 40),
    m=st.integers(8, 120),
    k=st.sampled_from([2, 3, 4, 8]),
    tau=st.sampled_from([0.5, 1.0, 2.0, 10.0, float("inf")]),
    seed=st.integers(0, 4),
)
def test_ne_plus_plus_property(n, m, k, tau, seed):
    """Property: phase one assigns exactly the non-h2h edges, exactly once,
    with loads consistent and secondary sets covering assignments."""
    g = erdos_renyi(n, m, seed=seed)
    if g.num_edges < k:
        return
    result = run_ne_plus_plus(g, k, tau=tau)
    h2h_ids = set(result.h2h.eids.tolist())
    for e in range(g.num_edges):
        if e in h2h_ids:
            assert result.parts[e] == -1
        else:
            assert 0 <= result.parts[e] < k
    assigned = result.parts[result.parts >= 0]
    assert np.array_equal(
        result.loads, np.bincount(assigned, minlength=k).astype(np.int64)
    )
    edges = g.edges
    for e in np.flatnonzero(result.parts >= 0).tolist():
        p = result.parts[e]
        assert result.secondary[p, edges[e, 0]]
        assert result.secondary[p, edges[e, 1]]

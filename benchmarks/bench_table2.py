"""Bench: regenerate Table 2 (tau-precompute run-time)."""

from repro.experiments import table2


def bench_table2_tau_precompute(benchmark, record_experiment):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # The precompute must be negligible next to partitioning itself.
    assert all(float(r["ratio"]) < 0.5 for r in result.rows), result.rows

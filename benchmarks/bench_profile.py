"""Bench: phase-attributed profile of the multi-worker partition path.

Answers the question PR 6's observability work exists for: *where does
the wall-clock of a ``partition --workers N`` run actually go* — process
spawn, pickling, pipe traffic, compute, or coordinator merge?  Each
configuration runs under a collecting :class:`~repro.obs.tracer.Tracer`
and is reduced to per-phase fractions with
:func:`~repro.obs.summary.phase_breakdown`.

The measured rows land in ``results/BENCH_profile.json`` (schema checked
by ``tools/check_profile_schema.py`` /
:func:`~repro.obs.summary.validate_profile_record`).  The acceptance bar
is coverage, not speed: the 2-worker run must attribute >= 90% of its
wall-clock to the named phases — anything less means a hot path lost its
span.

Like every ``bench_*`` module here, functions use the ``bench_`` prefix
so the tier-1 test run (default ``python_functions = test*``) never
collects them.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_profile.py \
        -o python_functions=bench_
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.graph import datasets
from repro.obs.summary import (
    PROFILE_PHASES,
    phase_breakdown,
    validate_profile_record,
)
from repro.obs.tracer import Tracer, set_tracer
from repro.stream import MultiWorkerStreamingDriver, write_sharded_edges

_K = 8
_BATCH = 16
_SHARDS = 4
_WORKER_COUNTS = (1, 2)
_RESULTS = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """The WI stand-in exported as a 4-shard manifest."""
    graph = datasets.load("WI")
    out = tmp_path_factory.mktemp("bench-profile") / "wi.manifest.json"
    return write_sharded_edges(graph, out, num_shards=_SHARDS)


def _traced_run(manifest, workers: int) -> dict:
    """One traced partition run, reduced to a profile row."""
    tracer = Tracer(None)  # collect mode: spans buffered, no file
    previous = set_tracer(tracer)
    try:
        MultiWorkerStreamingDriver(
            workers=workers, batch=_BATCH
        ).partition(manifest.path, _K)
    finally:
        set_tracer(previous)
    breakdown = phase_breakdown(tracer.drain())
    return {
        "workers": workers,
        "wall_s": breakdown["wall_s"],
        "phases": breakdown["fractions"],
        "attributed": breakdown["attributed"],
    }


def bench_phase_profile(manifest, capsys):
    """Per-phase wall-clock attribution at 1 and 2 workers.

    Emits ``results/BENCH_profile.json``.  The 2-worker row must
    attribute >= 90% of its wall-clock across
    spawn/pickle/pipe/compute/merge — the coverage bar the span
    instrumentation is held to.
    """
    rows = [_traced_run(manifest, workers) for workers in _WORKER_COUNTS]
    record = {
        "bench": "profile",
        "graph": "WI",
        "edges": manifest.num_edges,
        "k": _K,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    validate_profile_record(record)
    _RESULTS.mkdir(exist_ok=True)
    out = _RESULTS / "BENCH_profile.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n[bench_profile] -> {out}")
        for row in rows:
            shares = "  ".join(
                f"{phase} {row['phases'][phase]:.3f}"
                for phase in (*PROFILE_PHASES, "other")
            )
            print(
                f"  {row['workers']} worker(s)  wall {row['wall_s']:.3f}s  "
                f"{shares}  attributed {row['attributed']:.1%}"
            )
    two_worker = next(r for r in rows if r["workers"] == 2)
    assert two_worker["attributed"] >= 0.9, (
        f"2-worker run attributed only {two_worker['attributed']:.1%} of "
        f"wall-clock to named phases; a hot path lost its span"
    )

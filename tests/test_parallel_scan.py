"""Tests for the scan layer: bugfixes, packed covers, parallel passes.

Three load-bearing properties:

* **masking** — ``chunked_quality`` must ignore ``UNASSIGNED`` (-1)
  edges instead of wrapping them into partition ``k - 1``,
* **packed covers** — the bit-packed (optionally column-blocked) cover
  reports exactly the metrics the dense sweep did, and
* **parallel ≡ sequential** — any worker count over any shard layout
  produces bit-identical :func:`scan_source` / :func:`chunked_quality`
  results, including partial assignments and empty shards.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import graphs, power_law_graphs

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph.edgelist import write_binary_edgelist
from repro.graph.generators import chung_lu
from repro.metrics import streamed_quality_report
from repro.stream import (
    OutOfCoreHep,
    PackedCover,
    StreamingPartitionerDriver,
    chunked_quality,
    open_edge_source,
    parallel_chunked_quality,
    parallel_scan_source,
    plan_cover_blocks,
    scan_quality,
    scan_source,
    scan_stats,
    supports_parallel_scan,
    write_sharded_edges,
)
from repro.stream.reader import EdgeChunk, EdgeChunkSource
from repro.stream.scan import SourceStats, cover_nbytes


@pytest.fixture(scope="module")
def graph():
    return chung_lu(350, mean_degree=7, exponent=2.1, seed=11, name="scan")


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("scan") / "g.manifest.json"
    return write_sharded_edges(graph, out, num_shards=4)


@pytest.fixture(scope="module")
def binary(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("scan-bin") / "g.bin"
    write_binary_edgelist(graph, out)
    return out


class _DeclaredSource(EdgeChunkSource):
    """In-memory chunk source with an arbitrary declared universe."""

    def __init__(self, pairs, declared):
        self.pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self.declared = declared
        self.chunk_size = 4

    def __iter__(self):
        for start in range(0, self.pairs.shape[0], self.chunk_size):
            block = self.pairs[start : start + self.chunk_size]
            yield EdgeChunk(
                pairs=block,
                eids=np.arange(start, start + block.shape[0], dtype=np.int64),
            )

    @property
    def num_vertices(self):
        return self.declared


def _brute_force_quality(graph, k, parts):
    """First-principles rf/balance over assigned edges only."""
    assigned = parts >= 0
    replicas = 0
    for p in range(k):
        sel = graph.edges[assigned & (parts == p)]
        replicas += np.unique(sel).size
    covered = int((graph.degrees > 0).sum())
    rf = replicas / covered if covered else 0.0
    sizes = np.bincount(parts[assigned], minlength=k)
    balance = sizes.max() / (graph.num_edges / k)
    return float(rf), float(balance)


class TestScanBugfixes:
    def test_unassigned_edges_are_masked(self, graph, binary):
        """Regression: -1 entries must not wrap into partition k - 1."""
        k = 4
        rng = np.random.default_rng(3)
        parts = rng.integers(0, k, size=graph.num_edges).astype(np.int32)
        parts[rng.random(graph.num_edges) < 0.4] = -1
        stats = scan_source(open_edge_source(binary, 64))
        rf, balance = chunked_quality(
            open_edge_source(binary, 64), stats, k, parts
        )
        expect_rf, expect_balance = _brute_force_quality(graph, k, parts)
        assert rf == pytest.approx(expect_rf, abs=0)
        assert balance == pytest.approx(expect_balance, abs=0)

    def test_all_unassigned_reports_zero(self, graph, binary):
        """With nothing assigned, nothing is replicated or loaded."""
        stats = scan_source(open_edge_source(binary, 64))
        parts = np.full(graph.num_edges, -1, dtype=np.int32)
        rf, balance = chunked_quality(
            open_edge_source(binary, 64), stats, 4, parts
        )
        assert rf == 0.0
        assert balance == 0.0

    def test_empty_source_quality(self, tmp_path):
        """Regression: an empty stream must not divide by zero."""
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        stats = scan_source(open_edge_source(path, 16))
        assert stats.num_edges == 0
        rf, balance = chunked_quality(
            open_edge_source(path, 16), stats, 4, np.empty(0, np.int32)
        )
        assert (rf, balance) == (0.0, 1.0)

    def test_declared_universe_too_small_raises(self):
        """Regression: declared < observed is corrupt, not ignorable."""
        src = _DeclaredSource([[0, 1], [1, 9]], declared=5)
        with pytest.raises(GraphFormatError, match="too small"):
            scan_source(src)

    def test_declared_universe_grows_degrees(self):
        """Pinned: declared > observed keeps trailing isolated vertices."""
        src = _DeclaredSource([[0, 1]], declared=7)
        stats = scan_source(src)
        assert stats.num_vertices == 7
        assert stats.degrees.shape == (7,)
        assert stats.degrees.sum() == 2

    def test_manifest_declaring_too_few_vertices_raises(
        self, graph, tmp_path
    ):
        manifest = write_sharded_edges(
            graph, tmp_path / "bad.manifest.json", num_shards=2
        )
        data = json.loads(manifest.path.read_text())
        data["num_vertices"] = 3
        manifest.path.write_text(json.dumps(data))
        with pytest.raises(GraphFormatError, match="too small"):
            scan_source(open_edge_source(manifest.path, 64))
        with pytest.raises(GraphFormatError, match="too small"):
            parallel_scan_source(manifest.path, 2, 64)


class TestPackedCover:
    def test_cover_memory_is_bits(self):
        cover = PackedCover(8, 0, 1000)
        assert cover.nbytes == 8 * 125  # k * ceil(n / 8): true bits
        assert cover.nbytes == cover_nbytes(1000, 8)

    def test_part_views_share_words(self):
        cover = PackedCover(2, 0, 16)
        parts = np.array([1], dtype=np.int32)
        cover.mark_assignment(
            parts, np.array([[3, 9]]), np.array([0], dtype=np.int64)
        )
        assert sorted(cover.part(1)) == [3, 9]
        assert cover.part(0).count() == 0
        assert cover.count() == 2
        with pytest.raises(IndexError):
            cover.part(2)

    def test_blocked_counts_match_full_cover(self, graph, binary):
        k = 4
        rng = np.random.default_rng(5)
        parts = rng.integers(-1, k, size=graph.num_edges).astype(np.int32)
        stats = scan_source(open_edge_source(binary, 64))
        full = chunked_quality(open_edge_source(binary, 64), stats, k, parts)
        for budget in (1, 16, 64, 10**9):
            blocked = chunked_quality(
                open_edge_source(binary, 64), stats, k, parts,
                memory_budget=budget,
            )
            assert blocked == full
            for lo, hi in plan_cover_blocks(stats.num_vertices, k, budget):
                assert cover_nbytes(hi - lo, k) <= max(budget, k)

    def test_plan_cover_blocks_shapes(self):
        assert plan_cover_blocks(0, 4) == []
        assert plan_cover_blocks(100, 4) == [(0, 100)]
        assert plan_cover_blocks(100, 4, memory_budget=10**9) == [(0, 100)]
        blocks = plan_cover_blocks(100, 4, memory_budget=8)
        assert blocks[0] == (0, 16)  # (8 // 4) bytes * 8 bits
        assert blocks[-1][1] == 100
        assert all(b[0] == a[1] for a, b in zip(blocks, blocks[1:]))
        with pytest.raises(ConfigurationError):
            plan_cover_blocks(10, 0)

    def test_plan_cover_blocks_caps_sweeps(self):
        """A pathological budget must not schedule thousands of re-reads."""
        from repro.stream.scan import MAX_COVER_SWEEPS

        blocks = plan_cover_blocks(10_000_000, 128, memory_budget=4096)
        assert len(blocks) <= MAX_COVER_SWEEPS
        assert blocks[0][0] == 0 and blocks[-1][1] == 10_000_000


class TestSupportsParallelScan:
    def test_paths(self, manifest, binary, tmp_path):
        assert supports_parallel_scan(manifest.path)
        assert supports_parallel_scan(str(binary))
        text = tmp_path / "g.txt"
        text.write_text("0 1\n")
        assert not supports_parallel_scan(text)
        assert not supports_parallel_scan(tmp_path / "missing.bin")
        assert not supports_parallel_scan("WI")

    def test_front_door_falls_back(self, graph):
        """In-memory sources use the sequential sweep whatever workers says."""
        src = open_edge_source(graph, 64)
        stats = scan_stats(graph, src, workers=4)
        seq = scan_source(open_edge_source(graph, 64))
        assert stats.num_vertices == seq.num_vertices
        assert np.array_equal(stats.degrees, seq.degrees)


@pytest.mark.slow
class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3, 6])
    def test_counting_pass_bit_identical(
        self, graph, manifest, binary, workers
    ):
        for source in (manifest.path, binary):
            seq = scan_source(open_edge_source(source, 64))
            if workers == 1:
                par = scan_stats(source, open_edge_source(source, 64), workers)
            else:
                par = parallel_scan_source(source, workers, 64)
            assert par.num_vertices == seq.num_vertices
            assert par.num_edges == seq.num_edges
            assert par.degrees.dtype == seq.degrees.dtype
            assert np.array_equal(par.degrees, seq.degrees)

    @pytest.mark.parametrize("workers,budget", [(2, None), (4, None), (3, 32)])
    def test_quality_pass_bit_identical(
        self, graph, manifest, binary, workers, budget
    ):
        k = 4
        rng = np.random.default_rng(workers)
        parts = rng.integers(-1, k, size=graph.num_edges).astype(np.int32)
        for source in (manifest.path, binary):
            stats = scan_source(open_edge_source(source, 64))
            seq = chunked_quality(
                open_edge_source(source, 64), stats, k, parts,
                memory_budget=budget,
            )
            par = parallel_chunked_quality(
                source, stats, k, parts, workers, 64, memory_budget=budget,
            )
            assert par == seq  # bit-identical floats, not approx

    def test_driver_metrics_workers_identical(self, binary):
        base = StreamingPartitionerDriver("HDRF", chunk_size=64)
        fan = StreamingPartitionerDriver(
            "HDRF", chunk_size=64, metrics_workers=2
        )
        a = base.partition(binary, 4)
        b = fan.partition(binary, 4)
        assert np.array_equal(a.parts, b.parts)
        assert a.replication_factor == b.replication_factor
        assert a.edge_balance == b.edge_balance

    def test_hep_metrics_workers_identical(self, binary):
        a = OutOfCoreHep(tau=1.0, chunk_size=64).partition(binary, 4)
        b = OutOfCoreHep(
            tau=1.0, chunk_size=64, metrics_workers=2
        ).partition(binary, 4)
        assert np.array_equal(a.parts, b.parts)
        assert a.replication_factor == b.replication_factor
        assert a.edge_balance == b.edge_balance

    def test_truncated_shard_surfaces_format_error(self, graph, tmp_path):
        manifest = write_sharded_edges(
            graph, tmp_path / "t.manifest.json", num_shards=3
        )
        shard = manifest.shard_paths[1]
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(GraphFormatError, match="shard"):
            parallel_scan_source(manifest.path, 2, 64)


class TestStreamedQualityReport:
    def test_matches_in_memory_metrics(self, graph, binary):
        result = StreamingPartitionerDriver("HDRF", chunk_size=64).partition(
            binary, 4
        )
        report = streamed_quality_report(binary, result.parts, 4, workers=2)
        assert report.replication_factor == result.replication_factor
        assert report.edge_balance == result.edge_balance
        assert report.num_edges == graph.num_edges
        assert report.num_unassigned == 0
        assert report.row()["RF"] == round(result.replication_factor, 4)

    def test_validation(self, binary):
        with pytest.raises(ConfigurationError, match="shape"):
            streamed_quality_report(binary, np.zeros(3, np.int32), 4)
        with pytest.raises(ConfigurationError, match="k="):
            stats = scan_source(open_edge_source(binary, 64))
            streamed_quality_report(
                binary, np.full(stats.num_edges, 7, np.int32), 4
            )


@pytest.mark.slow
@settings(max_examples=8, deadline=None)
@given(
    graph=power_law_graphs(max_vertices=60),
    workers=st.sampled_from([1, 2, 3, 5]),
    num_shards=st.integers(min_value=1, max_value=6),
    budget=st.sampled_from([None, 8, 64]),
    drop=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_parallel_scan_equivalence_property(
    graph, workers, num_shards, budget, drop, seed
):
    """Property: any shard layout x worker count x partial assignment —
    the parallel counting and metrics passes equal the sequential ones
    bit for bit (workers may own zero shards; floats compare with ==)."""
    k = 4
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, k, size=graph.num_edges).astype(np.int32)
    parts[rng.random(graph.num_edges) < drop] = -1
    with tempfile.TemporaryDirectory(prefix="pscan-prop-") as tmp:
        manifest = write_sharded_edges(
            graph, Path(tmp) / "g.manifest.json", num_shards=num_shards
        )
        seq_stats = scan_source(open_edge_source(manifest.path, 16))
        par_stats = scan_stats(
            manifest.path, open_edge_source(manifest.path, 16), workers, 16
        )
        assert par_stats.num_vertices == seq_stats.num_vertices
        assert par_stats.num_edges == seq_stats.num_edges
        assert np.array_equal(par_stats.degrees, seq_stats.degrees)
        seq_q = chunked_quality(
            open_edge_source(manifest.path, 16), seq_stats, k, parts,
            memory_budget=budget,
        )
        par_q = scan_quality(
            manifest.path, open_edge_source(manifest.path, 16), seq_stats,
            k, parts, workers, 16, memory_budget=budget,
        )
        assert par_q == seq_q

"""Bulk-synchronous parallel (BSP) streaming — parallel HEP's phase two.

The paper closes with "we aim to further improve the performance of HEP
by focusing on parallelism and distribution".  The in-memory phase is
hard to parallelize without becoming DNE (whose quality penalty Figure 8
shows); the streaming phase, however, parallelizes naturally in the BSP
model that distributed stream processors use:

* the h2h edge stream is split round-robin across ``workers``,
* each superstep, every worker scores and places one batch of its edges
  against a *shared immutable snapshot* of the replica/load state,
* a barrier merges the workers' deltas (replica marks OR-ed, loads
  summed) into the next snapshot.

Staleness is the price of parallelism: within a superstep, workers do
not see each other's placements.  ``batch = 1`` with one worker is
exactly sequential informed HDRF; growing ``workers * batch`` trades
replication factor for parallel throughput.  This module executes the
schedule deterministically in process (one OS process — the *semantics*
of parallel execution, not its wall-clock; DESIGN.md documents the
substitution) and reports the modeled speedup: sequential rounds divided
by BSP supersteps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ne_plus_plus import run_ne_plus_plus
from repro.errors import CapacityError, ConfigurationError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.state import StreamingState

__all__ = ["bsp_hdrf_stream", "ParallelHepPartitioner", "BspStreamReport"]


@dataclass(frozen=True)
class BspStreamReport:
    """What the BSP schedule did: its size and modeled parallel speedup."""

    workers: int
    batch: int
    supersteps: int
    edges_streamed: int

    @property
    def modeled_speedup(self) -> float:
        """Sequential edge-rounds over BSP supersteps (ideal network)."""
        if self.supersteps == 0:
            return 1.0
        return self.edges_streamed / (self.supersteps * self.batch)


def bsp_hdrf_stream(
    state: StreamingState,
    edges: np.ndarray,
    eids: np.ndarray,
    parts_out: np.ndarray,
    workers: int,
    batch: int = 8,
    lam: float = 1.1,
    eps: float = 1.0,
) -> BspStreamReport:
    """Stream ``edges`` through HDRF scoring under a BSP schedule.

    Mutates ``state`` and ``parts_out`` like
    :func:`repro.partition.hdrf.hdrf_stream`, but in supersteps of
    ``workers * batch`` edges scored against a frozen snapshot.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    m = int(edges.shape[0])
    # Round-robin ownership, as a distributed ingest layer would shard.
    streams = [np.arange(w, m, workers) for w in range(workers)]
    cursors = [0] * workers
    supersteps = 0

    while any(cursors[w] < streams[w].size for w in range(workers)):
        snapshot_replicas = state.replicas.copy()
        snapshot_loads = state.loads.copy()
        supersteps += 1
        for w in range(workers):
            take = streams[w][cursors[w] : cursors[w] + batch]
            cursors[w] += batch
            for i in take.tolist():
                u = int(edges[i, 0])
                v = int(edges[i, 1])
                p = _score_on_snapshot(
                    snapshot_replicas, snapshot_loads, state, u, v, lam, eps
                )
                if p < 0:
                    raise CapacityError("BSP stream: all partitions full")
                # Local delta applies to the live state; the snapshot stays
                # frozen until the barrier (= this loop's end).
                state.place(u, v, p)
                parts_out[eids[i]] = p
    return BspStreamReport(workers, batch, supersteps, m)


def _score_on_snapshot(
    replicas: np.ndarray,
    loads: np.ndarray,
    state: StreamingState,
    u: int,
    v: int,
    lam: float,
    eps: float,
) -> int:
    du = state.degrees[u]
    dv = state.degrees[v]
    total = du + dv
    theta_u = du / total if total else 0.5
    theta_v = 1.0 - theta_u
    score = replicas[:, u] * (2.0 - theta_u) + replicas[:, v] * (2.0 - theta_v)
    maxload = loads.max()
    minload = loads.min()
    score = score + lam * (maxload - loads) / (eps + maxload - minload)
    # The *capacity* check uses live loads: a real system enforces its
    # hard bound at the (serialized) partition owner, not the snapshot.
    score = np.where(state.loads < state.capacity, score, -np.inf)
    p = int(np.argmax(score))
    return -1 if score[p] == -np.inf else p


class ParallelHepPartitioner(Partitioner):
    """HEP with a BSP-parallel streaming phase.

    Phase one (NE++) is unchanged; phase two streams the h2h edges with
    ``workers`` BSP workers and per-superstep batches of ``batch``.
    ``workers=1, batch=1`` reproduces sequential HEP exactly.
    """

    def __init__(
        self,
        tau: float = 10.0,
        workers: int = 4,
        batch: int = 8,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
    ) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.tau = tau
        self.workers = workers
        self.batch = batch
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.last_report: BspStreamReport | None = None
        self.name = f"HEP-BSP-{tau:g}x{workers}"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        self._require_k(graph, k)
        phase_one = run_ne_plus_plus(graph, k, tau=self.tau)
        parts = phase_one.parts
        h2h = phase_one.h2h
        if h2h.num_edges:
            capacity = capacity_bound(graph.num_edges, k, self.alpha)
            capacity = max(capacity, int(phase_one.loads.max()) + 1)
            state = StreamingState.informed(
                graph, k, capacity,
                replicas=phase_one.secondary,
                loads=phase_one.loads,
            )
            self.last_report = bsp_hdrf_stream(
                state, h2h.pairs, h2h.eids, parts,
                workers=self.workers, batch=self.batch,
                lam=self.lam, eps=self.eps,
            )
        else:
            self.last_report = BspStreamReport(self.workers, self.batch, 0, 0)
        return PartitionAssignment(graph, k, parts)

"""Structural validity of an edge partitioning.

A valid edge partitioning (paper Section 2) assigns every edge to
exactly one partition and respects the balancing constraint.  These
checks are the backbone of the test suite's property tests: every
partitioner in the library must produce assignments that pass
:func:`assert_valid`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.partition.base import PartitionAssignment, capacity_bound

__all__ = ["assert_valid", "is_valid"]


def assert_valid(
    assignment: PartitionAssignment,
    alpha: float | None = None,
    require_complete: bool = True,
) -> None:
    """Raise :class:`ValidationError` describing the first violation found.

    With ``alpha`` given, partition sizes must stay within
    ``capacity_bound(m, k, alpha)`` — the hard constraint form the
    partitioners themselves enforce.
    """
    parts = assignment.parts
    k = assignment.k
    m = assignment.graph.num_edges

    if parts.shape != (m,):
        raise ValidationError(f"parts shape {parts.shape} != ({m},)")
    if require_complete and (parts < 0).any():
        missing = int((parts < 0).sum())
        raise ValidationError(f"{missing} of {m} edges unassigned")
    if parts.size and parts.max(initial=-1) >= k:
        raise ValidationError(f"partition id {int(parts.max())} out of range (k={k})")

    if alpha is not None and m:
        cap = capacity_bound(m, k, alpha)
        sizes = assignment.partition_sizes()
        worst = int(sizes.max())
        if worst > cap:
            raise ValidationError(
                f"partition size {worst} exceeds capacity {cap} "
                f"(m={m}, k={k}, alpha={alpha}); sizes={sizes.tolist()}"
            )

    # Cover consistency: every covered vertex must be an endpoint of an
    # assigned edge in that partition (cover_matrix construction makes
    # this true by construction; validate the reverse direction).
    if m and require_complete:
        cover = assignment.cover_matrix()
        u = assignment.graph.edges[:, 0]
        v = assignment.graph.edges[:, 1]
        ok = cover[parts, u].all() and cover[parts, v].all()
        if not ok:
            raise ValidationError("cover matrix misses an assigned endpoint")


def is_valid(
    assignment: PartitionAssignment,
    alpha: float | None = None,
    require_complete: bool = True,
) -> bool:
    """Boolean form of :func:`assert_valid`."""
    try:
        assert_valid(assignment, alpha=alpha, require_complete=require_complete)
    except ValidationError:
        return False
    return True

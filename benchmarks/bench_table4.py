"""Bench: regenerate Table 4 (simulated Spark/GraphX processing)."""

from repro.experiments import table4


def bench_table4_distributed_processing(benchmark, record_experiment):
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # Long jobs (PageRank) must be won by a low-RF partitioner everywhere.
    pr_notes = [n for n in result.notes if "fastest PageRank" in n]
    assert pr_notes and all("True" in n for n in pr_notes), pr_notes

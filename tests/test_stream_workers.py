"""Tests for repro.stream.workers: multi-process shard-parallel BSP.

The load-bearing property: a multi-process run is **bit-identical** to
the in-process ``bsp_hdrf_stream`` with the same workers/batch and the
same shard-derived streams — and at ``workers=1, batch=1`` both equal
sequential informed HDRF.  Everything else (planning, rebatching, wire
framing, reports, validation) is pinned by unit tests.
"""

import multiprocessing
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import bsp_schedules, power_law_graphs

from repro.errors import (
    ConfigurationError,
    PartitioningError,
    WorkerFailureError,
)
from repro.graph.edgelist import write_binary_edgelist
from repro.graph.generators import chung_lu
from repro.parallel import ParallelHepPartitioner, bsp_hdrf_stream
from repro.partition.base import capacity_bound
from repro.partition.state import StreamingState
from repro.stream import (
    MultiWorkerHep,
    MultiWorkerReport,
    MultiWorkerStreamingDriver,
    StreamingPartitionerDriver,
    WorkerPool,
    plan_worker_segments,
    write_sharded_edges,
)
from repro.stream.workers import (
    EdgeSegment,
    _iter_batches,
    _pack_message,
    _pack_triples,
    _unpack_message,
    _unpack_triples,
)


@pytest.fixture(scope="module")
def graph():
    return chung_lu(400, mean_degree=8, exponent=2.1, seed=23, name="mw")


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("mw") / "mw.manifest.json"
    return write_sharded_edges(graph, out, num_shards=4)


def _oracle_parts(graph, workers, batch, streams, k=8):
    capacity = capacity_bound(graph.num_edges, k, 1.0)
    state = StreamingState(
        graph.num_vertices, k, capacity, exact_degrees=graph.degrees
    )
    parts = np.full(graph.num_edges, -1, dtype=np.int32)
    report = bsp_hdrf_stream(
        state, graph.edges, np.arange(graph.num_edges), parts,
        workers, batch=batch, streams=streams,
    )
    return parts, state, report


class TestPlanning:
    def test_manifest_round_robin(self, manifest):
        segments, streams, m, n = plan_worker_segments(manifest.path, 3)
        assert m == manifest.num_edges
        assert n == manifest.num_vertices
        # 4 shards over 3 workers: worker 0 owns shards 0 and 3.
        assert [len(s) for s in segments] == [2, 1, 1]
        covered = np.sort(np.concatenate(streams))
        assert np.array_equal(covered, np.arange(m))
        # Worker 0's stream is shard 0 then shard 3 (manifest order).
        shard0 = manifest.shard_edges[0]
        assert streams[0][0] == 0
        assert streams[0][shard0] == sum(manifest.shard_edges[:3])

    def test_flat_file_contiguous(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        segments, streams, m, n = plan_worker_segments(path, 4)
        assert m == graph.num_edges
        assert n is None
        assert all(len(s) == 1 for s in segments)
        covered = np.concatenate(streams)
        assert np.array_equal(covered, np.arange(m))  # contiguous split
        assert segments[1][0].start_edge == streams[1][0]

    def test_more_workers_than_shards(self, manifest):
        segments, streams, _, _ = plan_worker_segments(manifest.path, 6)
        assert [len(s) for s in segments] == [1, 1, 1, 1, 0, 0]
        assert streams[5].size == 0

    def test_text_file_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(ConfigurationError, match="manifest"):
            plan_worker_segments(path, 2)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such"):
            plan_worker_segments(tmp_path / "nope.bin", 2)

    def test_workers_validated(self, manifest):
        with pytest.raises(ConfigurationError):
            plan_worker_segments(manifest.path, 0)


class TestRebatching:
    def test_batches_cross_segment_boundaries(self, manifest):
        segments, streams, _, _ = plan_worker_segments(manifest.path, 2)
        batches = list(_iter_batches(segments[0], batch=7, chunk_size=13))
        sizes = [us.shape[0] for us, vs, eids in batches]
        assert all(size == 7 for size in sizes[:-1])
        eids = np.concatenate([e for _, _, e in batches])
        assert np.array_equal(eids, streams[0])

    def test_stream_content_matches_shards(self, graph, manifest):
        segments, streams, _, _ = plan_worker_segments(manifest.path, 2)
        for segs, stream in zip(segments, streams):
            us = np.concatenate(
                [u for u, _, _ in _iter_batches(segs, 5, 16)]
            )
            vs = np.concatenate(
                [v for _, v, _ in _iter_batches(segs, 5, 16)]
            )
            assert np.array_equal(us, graph.edges[stream, 0])
            assert np.array_equal(vs, graph.edges[stream, 1])

    def test_unknown_segment_kind(self, tmp_path):
        seg = EdgeSegment(path=str(tmp_path / "x"), count=1, kind="nope")
        with pytest.raises(ConfigurationError):
            list(_iter_batches([seg], 4, 8))


class TestWireFormat:
    def test_message_roundtrip(self):
        a = np.arange(5, dtype=np.int64)
        blob = _pack_message(b"B", 5, _pack_triples(a, a + 1, a + 2))
        tag, count, payload = _unpack_message(blob)
        assert (tag, count) == (b"B", 5)
        x, y, z = _unpack_triples(payload, 5)
        assert np.array_equal(x, a)
        assert np.array_equal(y, a + 1)
        assert np.array_equal(z, a + 2)

    def test_corrupt_frame_rejected(self):
        blob = _pack_message(b"B", 3, b"\x00" * 72)
        with pytest.raises(WorkerFailureError, match="corrupt"):
            _unpack_message(blob[:-8])


class TestReport:
    def test_modeled_speedup(self):
        report = MultiWorkerReport(
            workers=4, batch=8, supersteps=10, edges_streamed=320,
            fast_supersteps=9, slow_supersteps=1,
        )
        assert report.modeled_speedup == pytest.approx(4.0)
        empty = MultiWorkerReport(2, 8, 0, 0, 0, 0)
        assert empty.modeled_speedup == 1.0


class TestValidation:
    def test_driver_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            MultiWorkerStreamingDriver(workers=0)
        with pytest.raises(ConfigurationError):
            MultiWorkerStreamingDriver(batch=0)

    def test_driver_rejects_k_one(self, manifest):
        with pytest.raises(ConfigurationError):
            MultiWorkerStreamingDriver(workers=2).partition(manifest.path, 1)

    def test_empty_stream_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(PartitioningError, match="empty"):
            MultiWorkerStreamingDriver(workers=2).partition(path, 4)

    def test_pool_requires_start(self, manifest):
        segments, _, _, _ = plan_worker_segments(manifest.path, 2)
        state = StreamingState(10, 4, 100, exact_degrees=np.zeros(10, np.int64))
        pool = WorkerPool(segments, state)
        with pytest.raises(ConfigurationError, match="before start"):
            pool.run(np.zeros(4, np.int32))

    def test_pool_validates_shape(self):
        state = StreamingState(10, 4, 100, exact_degrees=np.zeros(10, np.int64))
        with pytest.raises(ConfigurationError):
            WorkerPool([], state)
        with pytest.raises(ConfigurationError):
            WorkerPool([[]], state, batch=0)

    def test_hep_rejects_buffer_size(self):
        with pytest.raises(ConfigurationError, match="buffer_size"):
            MultiWorkerHep(workers=2, buffer_size=64)
        with pytest.raises(ConfigurationError):
            MultiWorkerHep(workers=0)


@pytest.mark.slow
class TestEquivalence:
    @pytest.mark.parametrize("workers,batch", [(1, 1), (1, 8), (2, 4), (4, 8)])
    def test_bit_identical_to_in_process_bsp(
        self, graph, manifest, workers, batch
    ):
        """The acceptance property, pinned on the fixture graph."""
        driver = MultiWorkerStreamingDriver(workers=workers, batch=batch)
        result = driver.partition(manifest.path, 8)
        _, streams, _, _ = plan_worker_segments(manifest.path, workers)
        oracle, state, report = _oracle_parts(graph, workers, batch, streams)
        assert np.array_equal(result.parts, oracle)
        assert np.array_equal(result.loads, state.loads)
        assert result.report.supersteps == report.supersteps
        assert result.report.edges_streamed == graph.num_edges
        assert result.num_unassigned == 0

    def test_single_worker_batch_one_is_sequential_hdrf(self, manifest):
        """workers=1, batch=1 must equal sequential informed HDRF."""
        result = MultiWorkerStreamingDriver(workers=1, batch=1).partition(
            manifest.path, 8
        )
        sequential = StreamingPartitionerDriver(
            "HDRF", exact_degrees=True
        ).partition(manifest.path, 8)
        assert np.array_equal(result.parts, sequential.parts)

    def test_deterministic_across_runs(self, manifest):
        a = MultiWorkerStreamingDriver(workers=4, batch=8).partition(
            manifest.path, 8
        )
        b = MultiWorkerStreamingDriver(workers=4, batch=8).partition(
            manifest.path, 8
        )
        assert np.array_equal(a.parts, b.parts)

    def test_flat_file_matches_contiguous_streams(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        result = MultiWorkerStreamingDriver(workers=3, batch=4).partition(
            path, 8
        )
        _, streams, _, _ = plan_worker_segments(path, 3)
        oracle, _, _ = _oracle_parts(graph, 3, 4, streams)
        assert np.array_equal(result.parts, oracle)

    def test_compressed_shards_identical(self, graph, tmp_path):
        plain = write_sharded_edges(
            graph, tmp_path / "p.manifest.json", num_shards=3
        )
        packed = write_sharded_edges(
            graph, tmp_path / "z.manifest.json", num_shards=3,
            compression="zlib",
        )
        a = MultiWorkerStreamingDriver(workers=2, batch=4).partition(
            plain.path, 8
        )
        b = MultiWorkerStreamingDriver(workers=2, batch=4).partition(
            packed.path, 8
        )
        assert np.array_equal(a.parts, b.parts)

    def test_no_orphan_processes_after_runs(self):
        assert multiprocessing.active_children() == []


@pytest.mark.slow
class TestMultiWorkerHep:
    @pytest.mark.parametrize("workers,batch", [(1, 1), (2, 8)])
    def test_bit_identical_to_parallel_hep(
        self, graph, tmp_path, workers, batch
    ):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        hep = MultiWorkerHep(workers=workers, batch=batch, tau=1.0)
        result = hep.partition(path, 8)
        oracle = ParallelHepPartitioner(
            tau=1.0, workers=workers, batch=batch
        ).partition(graph, 8)
        assert np.array_equal(result.parts, oracle.parts)
        assert result.num_unassigned == 0
        assert hep.last_report is not None
        assert hep.last_report.workers == workers

    def test_temp_segments_cleaned_up(self, graph, tmp_path):
        spill_dir = tmp_path / "spill"
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        hep = MultiWorkerHep(
            workers=2, tau=1.0, spill_dir=str(spill_dir)
        )
        hep.partition(path, 4)
        leftovers = list(spill_dir.glob("mw-h2h-*"))
        assert leftovers == []

    def test_no_h2h_edges_skips_pool(self, graph, tmp_path):
        path = tmp_path / "g.bin"
        write_binary_edgelist(graph, path)
        hep = MultiWorkerHep(workers=2, tau=1e9)
        result = hep.partition(path, 4)
        assert result.num_unassigned == 0
        assert hep.last_report is None


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(graph=power_law_graphs(max_vertices=60), schedule=bsp_schedules())
def test_multi_worker_equivalence_property(graph, schedule):
    """Property: any sharded export, any 1/2/4-worker schedule — the
    multi-process run equals the in-process BSP schedule bit for bit,
    and the assignment is complete."""
    workers, batch, num_shards = schedule
    k = 4
    with tempfile.TemporaryDirectory(prefix="mw-prop-") as tmp:
        manifest = write_sharded_edges(
            graph, Path(tmp) / "g.manifest.json", num_shards=num_shards
        )
        driver = MultiWorkerStreamingDriver(
            workers=workers, batch=batch, chunk_size=32
        )
        result = driver.partition(manifest.path, k)
        _, streams, _, _ = plan_worker_segments(manifest.path, workers)
    oracle, state, _ = _oracle_parts(graph, workers, batch, streams, k=k)
    assert np.array_equal(result.parts, oracle)
    assert np.array_equal(result.loads, state.loads)
    assert result.num_unassigned == 0
    assert result.parts.min() >= 0
    assert result.parts.max() < k
